//! Deterministic health tracking for workers and tenants.
//!
//! A [`Fleet`] watches a set of named members — simulated workers pulling
//! leases, or studies acting as tenants — and walks each one through a
//! four-state machine:
//!
//! ```text
//! Healthy ──missed heartbeat──▶ Suspect ──sign of life──▶ Healthy
//!    │                            │
//!    └──── failure streak ────────┴──▶ Quarantined ──parole──▶ Healthy
//!                                          │
//!                                          └─ too many quarantines ─▶ Retired
//! ```
//!
//! Every transition is a pure function of `(fleet seed, member name,
//! observation sequence, scheduler clock)`: the failure streak that trips
//! a quarantine and the parole duration are drawn from seeded golden-ratio
//! streams in the `FaultPlan` style (one salt per decision kind, keyed by
//! an FNV-1a hash of the member name and its quarantine count), so two
//! runs with the same seed quarantine the same member at the same instant.
//! Health is **execution-only** state — it gates which worker receives a
//! lease, never which candidate is proposed — so it can never change a
//! committed trace byte.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Golden-ratio multiplier shared by every seeded stream in the workspace.
const MIX: u64 = 0x9e37_79b9_7f4a_7c15;
/// Salt for the quarantine (probation) threshold draw.
const SALT_PROBATION: u64 = 0x4EA7_0001;
/// Salt for the parole-duration draw.
const SALT_PAROLE: u64 = 0x4EA7_0002;

/// Where a member stands in the supervision state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Answering heartbeats and completing work: eligible for leases.
    Healthy,
    /// Missed its heartbeat window. Still eligible (work in flight may
    /// just be slow), but one failure streak away from quarantine.
    Suspect,
    /// Tripped its seeded failure threshold: no fresh leases until its
    /// parole instant passes on the scheduler clock.
    Quarantined,
    /// Quarantined once too often: permanently out of the rotation.
    Retired,
}

impl HealthState {
    /// Stable lower-snake name for logs and reports.
    pub fn wire_name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Retired => "retired",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Knobs of the supervision state machine. Execution-only: none of these
/// participate in trace identity.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Scheduler-clock seconds without a sign of life before a `Healthy`
    /// member is marked `Suspect` by [`Fleet::sweep`].
    pub heartbeat_timeout_s: f64,
    /// Base consecutive-failure count that trips a quarantine.
    pub probation_failures: u32,
    /// Seeded extra failures tolerated on top of the base: the effective
    /// threshold is `probation_failures + draw(0..=probation_jitter)`,
    /// re-drawn per member per quarantine so thundering herds stagger.
    pub probation_jitter: u32,
    /// Base quarantine (parole) duration in scheduler-clock seconds.
    pub parole_s: f64,
    /// Seeded multiplicative jitter on the parole duration: the effective
    /// duration is `parole_s * (1 + parole_jitter_frac * unit)`.
    pub parole_jitter_frac: f64,
    /// Quarantine count at which a member is retired for good.
    pub retire_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            heartbeat_timeout_s: 900.0,
            probation_failures: 3,
            probation_jitter: 2,
            parole_s: 1800.0,
            parole_jitter_frac: 0.5,
            retire_after: 3,
        }
    }
}

/// Per-member supervision record.
#[derive(Debug, Clone)]
struct MemberRecord {
    state: HealthState,
    last_seen_s: f64,
    consecutive_failures: u32,
    quarantines: u32,
    parole_until_s: f64,
}

/// A deterministic supervisor over a set of named members.
///
/// Used twice by the server: once over simulated **workers** (gating
/// lease dispatch and hedge targets) and once over studies as **tenants**
/// (a tenant quarantine *is* the study's circuit breaker).
#[derive(Debug, Clone)]
pub struct Fleet {
    seed: u64,
    policy: HealthPolicy,
    members: BTreeMap<String, MemberRecord>,
}

impl Fleet {
    /// A fleet with no members yet; they register on first contact.
    pub fn new(seed: u64, policy: HealthPolicy) -> Self {
        Fleet {
            seed,
            policy,
            members: BTreeMap::new(),
        }
    }

    /// The policy this fleet enforces.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    fn record(&mut self, key: &str, now_s: f64) -> &mut MemberRecord {
        self.members
            .entry(key.to_string())
            .or_insert_with(|| MemberRecord {
                state: HealthState::Healthy,
                last_seen_s: now_s,
                consecutive_failures: 0,
                quarantines: 0,
                parole_until_s: 0.0,
            })
    }

    /// Register a member (idempotent); new members start `Healthy`.
    pub fn register(&mut self, key: &str, now_s: f64) {
        self.record(key, now_s);
    }

    /// A sign of life: refreshes the heartbeat window and clears
    /// suspicion. Quarantined and retired members stay put — only parole
    /// (or nothing) brings them back.
    pub fn heartbeat(&mut self, key: &str, now_s: f64) {
        let member = self.record(key, now_s);
        member.last_seen_s = now_s;
        if member.state == HealthState::Suspect {
            member.state = HealthState::Healthy;
        }
    }

    /// A completed unit of work: heartbeat plus a reset failure streak.
    pub fn observe_success(&mut self, key: &str, now_s: f64) {
        self.heartbeat(key, now_s);
        let member = self.record(key, now_s);
        member.consecutive_failures = 0;
    }

    /// A failed unit of work. Extends the streak and, once the seeded
    /// probation threshold is crossed, quarantines the member (or retires
    /// it if it has been quarantined `retire_after` times already).
    /// Returns the member's state after the observation.
    pub fn observe_failure(&mut self, key: &str, now_s: f64) -> HealthState {
        let seed = self.seed;
        let policy = self.policy.clone();
        let member = self.record(key, now_s);
        member.last_seen_s = now_s;
        if matches!(member.state, HealthState::Quarantined | HealthState::Retired) {
            return member.state;
        }
        member.consecutive_failures = member.consecutive_failures.saturating_add(1);
        let key_hash = fnv1a(key.as_bytes());
        let slack = (unit_draw(seed, SALT_PROBATION, key_hash, u64::from(member.quarantines))
            * f64::from(policy.probation_jitter + 1))
        .floor() as u32;
        let threshold = policy
            .probation_failures
            .saturating_add(slack.min(policy.probation_jitter));
        if member.consecutive_failures >= threshold.max(1) {
            member.quarantines = member.quarantines.saturating_add(1);
            member.consecutive_failures = 0;
            if member.quarantines > policy.retire_after {
                member.state = HealthState::Retired;
            } else {
                let unit = unit_draw(seed, SALT_PAROLE, key_hash, u64::from(member.quarantines));
                member.state = HealthState::Quarantined;
                member.parole_until_s = now_s + policy.parole_s * (1.0 + policy.parole_jitter_frac * unit);
            }
        }
        member.state
    }

    /// Advance the scheduler clock: `Healthy` members past their
    /// heartbeat window become `Suspect`, and quarantined members whose
    /// parole instant has passed return to `Healthy` with a clean streak.
    /// Returns the number of state transitions applied.
    pub fn sweep(&mut self, now_s: f64) -> usize {
        let timeout = self.policy.heartbeat_timeout_s;
        let mut transitions = 0;
        for member in self.members.values_mut() {
            match member.state {
                HealthState::Healthy if now_s - member.last_seen_s > timeout => {
                    member.state = HealthState::Suspect;
                    transitions += 1;
                }
                HealthState::Quarantined if now_s >= member.parole_until_s => {
                    member.state = HealthState::Healthy;
                    member.consecutive_failures = 0;
                    member.last_seen_s = now_s;
                    transitions += 1;
                }
                _ => {}
            }
        }
        transitions
    }

    /// The member's current state, if it has ever been seen.
    pub fn state(&self, key: &str) -> Option<HealthState> {
        self.members.get(key).map(|m| m.state)
    }

    /// When a quarantined member's parole instant passes. `None` unless
    /// currently quarantined.
    pub fn parole_until(&self, key: &str) -> Option<f64> {
        self.members
            .get(key)
            .filter(|m| m.state == HealthState::Quarantined)
            .map(|m| m.parole_until_s)
    }

    /// Whether this member may receive fresh work. Unknown members are
    /// trusted (they register on first contact); `Healthy` and `Suspect`
    /// are eligible; `Quarantined` and `Retired` never are.
    pub fn eligible(&self, key: &str) -> bool {
        match self.state(key) {
            None | Some(HealthState::Healthy) | Some(HealthState::Suspect) => true,
            Some(HealthState::Quarantined) | Some(HealthState::Retired) => false,
        }
    }

    /// Whether *any* registered member is eligible — or no member has
    /// registered at all (an empty fleet does not block dispatch).
    pub fn any_eligible(&self) -> bool {
        self.members.is_empty() || self.members.keys().any(|k| self.eligible(k))
    }

    /// Eligible members in deterministic (name) order.
    pub fn eligible_members(&self) -> Vec<&str> {
        self.members
            .keys()
            .filter(|k| self.eligible(k))
            .map(String::as_str)
            .collect()
    }

    /// `(healthy, suspect, quarantined, retired)` counts for summaries.
    pub fn census(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for member in self.members.values() {
            match member.state {
                HealthState::Healthy => counts.0 += 1,
                HealthState::Suspect => counts.1 += 1,
                HealthState::Quarantined => counts.2 += 1,
                HealthState::Retired => counts.3 += 1,
            }
        }
        counts
    }
}

/// FNV-1a over the member name, so string keys feed the u64 salt idiom.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One seeded uniform draw in `[0, 1)`, keyed by `(salt, key, epoch)`.
fn unit_draw(seed: u64, salt: u64, key_hash: u64, epoch: u64) -> f64 {
    let mut h = seed ^ salt;
    h = h.wrapping_mul(MIX).wrapping_add(key_hash);
    h = h.wrapping_mul(MIX).wrapping_add(epoch);
    StdRng::seed_from_u64(h).random_range(0.0..1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            heartbeat_timeout_s: 100.0,
            probation_failures: 2,
            probation_jitter: 1,
            parole_s: 50.0,
            parole_jitter_frac: 0.5,
            retire_after: 2,
        }
    }

    #[test]
    fn unknown_members_are_trusted_and_register_healthy() {
        let mut fleet = Fleet::new(7, policy());
        assert!(fleet.eligible("w0"));
        assert_eq!(fleet.state("w0"), None);
        fleet.heartbeat("w0", 0.0);
        assert_eq!(fleet.state("w0"), Some(HealthState::Healthy));
    }

    #[test]
    fn missed_heartbeats_suspect_and_signs_of_life_clear() {
        let mut fleet = Fleet::new(7, policy());
        fleet.heartbeat("w0", 0.0);
        assert_eq!(fleet.sweep(50.0), 0);
        assert_eq!(fleet.sweep(200.0), 1);
        assert_eq!(fleet.state("w0"), Some(HealthState::Suspect));
        assert!(fleet.eligible("w0"), "suspects stay eligible");
        fleet.heartbeat("w0", 210.0);
        assert_eq!(fleet.state("w0"), Some(HealthState::Healthy));
    }

    #[test]
    fn failure_streaks_quarantine_and_parole_releases() {
        let mut fleet = Fleet::new(7, policy());
        fleet.register("w0", 0.0);
        let mut state = HealthState::Healthy;
        let mut failures = 0;
        while state != HealthState::Quarantined {
            failures += 1;
            assert!(failures <= 3, "threshold is at most base + jitter = 3");
            state = fleet.observe_failure("w0", 10.0);
        }
        assert!(failures >= 2, "threshold is at least the base of 2");
        assert!(!fleet.eligible("w0"));
        let until = fleet.parole_until("w0").expect("quarantined");
        assert!(until > 10.0 + 50.0 - 1e-9 && until <= 10.0 + 75.0 + 1e-9);
        assert_eq!(fleet.sweep(until - 1.0), 0);
        assert_eq!(fleet.sweep(until), 1);
        assert_eq!(fleet.state("w0"), Some(HealthState::Healthy));
        assert!(fleet.eligible("w0"));
    }

    #[test]
    fn repeat_offenders_are_retired() {
        let mut fleet = Fleet::new(7, policy());
        fleet.register("w0", 0.0);
        let mut now = 0.0;
        let mut quarantines = 0;
        // retire_after = 2: the third quarantine-worthy streak retires.
        while fleet.state("w0") != Some(HealthState::Retired) {
            now += 1.0;
            let state = fleet.observe_failure("w0", now);
            if state == HealthState::Quarantined {
                quarantines += 1;
                let until = fleet.parole_until("w0").expect("quarantined");
                now = until;
                fleet.sweep(now);
            }
            assert!(now < 1e6, "must retire eventually");
        }
        assert_eq!(quarantines, 2);
        assert!(!fleet.eligible("w0"));
        // Retirement is permanent: no sweep or heartbeat resurrects it.
        fleet.sweep(now + 1e5);
        fleet.heartbeat("w0", now + 1e5);
        assert_eq!(fleet.state("w0"), Some(HealthState::Retired));
    }

    #[test]
    fn successes_reset_the_streak() {
        let mut fleet = Fleet::new(7, policy());
        fleet.register("w0", 0.0);
        for round in 0..20 {
            let state = fleet.observe_failure("w0", f64::from(round));
            assert_eq!(state, HealthState::Healthy, "streak never completes");
            fleet.observe_success("w0", f64::from(round) + 0.5);
        }
    }

    #[test]
    fn transitions_are_a_pure_function_of_seed_and_observations() {
        let run = |seed: u64| {
            let mut fleet = Fleet::new(seed, policy());
            let mut log = Vec::new();
            for step in 0..40u32 {
                let key = format!("w{}", step % 3);
                let state = fleet.observe_failure(&key, f64::from(step));
                log.push((key, state));
                if step % 7 == 0 {
                    fleet.sweep(f64::from(step) + 60.0);
                }
            }
            log
        };
        assert_eq!(run(11), run(11), "same seed, same trajectory");
        assert_ne!(
            run(11)
                .iter()
                .map(|(_, s)| *s)
                .collect::<Vec<_>>(),
            run(4242)
                .iter()
                .map(|(_, s)| *s)
                .collect::<Vec<_>>(),
            "different seeds stagger the thresholds"
        );
    }

    #[test]
    fn census_counts_every_state() {
        let mut fleet = Fleet::new(7, policy());
        fleet.register("a", 0.0);
        fleet.register("b", 0.0);
        assert_eq!(fleet.census(), (2, 0, 0, 0));
        fleet.sweep(1000.0);
        assert_eq!(fleet.census(), (0, 2, 0, 0));
    }
}
