//! **hyperpower-server** — a crash-safe multi-study ask–tell server.
//!
//! The core crate's [`hyperpower::Study`] turns one optimization run into
//! an explicit ask–tell state machine; this crate hosts *many* of them
//! behind a serving surface built for an unreliable world:
//!
//! * [`StudyServer`] — named concurrent studies; every `ask` hands out
//!   candidates under **leases** with scheduler-clock deadlines, every
//!   `tell` is **idempotent** (duplicates absorbed, late tells after a
//!   lease reclaim rejected with a typed error, state untouched);
//! * [`StudyJournal`] — durability as a **write-ahead journal** plus
//!   atomic **snapshots** on the checkpoint codec, with deterministic
//!   replay recovery: `kill -9` at any instant, including mid-write,
//!   resumes to the exact committed trace bytes;
//! * [`chaos`] — a deterministic chaos harness that kills workers, drops,
//!   duplicates, delays and reorders tells, crashes and tears journals —
//!   then proves every study's final trace is byte-identical to an
//!   uninterrupted run;
//! * graceful degradation — bounded per-study and server-wide outstanding
//!   work, shed-lowest-priority backpressure, per-tenant token-bucket
//!   admission and circuit breakers, and typed [`ServerError`] refusals
//!   instead of silent stalls;
//! * [`health`] — a deterministic worker/tenant supervision state machine
//!   (`Healthy → Suspect → Quarantined → Retired`) gating lease dispatch
//!   and driving hedged re-dispatch of overdue candidates;
//! * [`fsck`] — an offline integrity scanner over a store directory:
//!   every journal record and snapshot is CRC32-framed, and
//!   [`fsck_store`] reports (and optionally salvages, by truncating to
//!   the last valid frame) corrupt frames, torn tails, stale temp files
//!   and header mismatches.
//!
//! Nothing the server does can change a committed trace byte: run
//! identity lives entirely in each study's [`hyperpower::StudySpec`]
//! (journaled in its header); leases, queue bounds, priorities, snapshot
//! cadence and crash/recovery cycles are all execution-only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod error;
pub mod fsck;
pub mod health;
pub mod journal;
mod server;

pub use chaos::{
    run_chaos, run_chaos_with, write_mismatch_artifacts, ChaosOutcome, ChaosPlan, ChaosProfile,
    ChaosReport, SyntheticObjective,
};
pub use error::ServerError;
pub use fsck::{fsck_store, FsckReport, StudyFsck};
pub use health::{Fleet, HealthPolicy, HealthState};
pub use journal::{JournalHeader, RecoveredStudy, StudyJournal};
pub use server::{ServerConfig, StudyServer, StudySetup, TickReport};
