//! The deterministic chaos harness.
//!
//! [`run_chaos`] simulates a full serving deployment — several named
//! studies, a pool of workers, a scheduler clock — and attacks it with
//! every failure mode the server claims to survive: killed workers
//! (results dropped, leases left to expire), duplicated tells, reordered
//! (delayed) tells, and `kill -9` of the whole server process, including
//! crashes that tear the last journal record mid-write and strand a stale
//! snapshot temp file. After the dust settles it byte-compares every
//! study's final trace against an *uninterrupted* single-process reference
//! run of the identical spec.
//!
//! Everything is a pure function of `(chaos seed, worker count)`: fault
//! decisions come from [`ChaosPlan`] — seeded golden-ratio streams in the
//! `FaultPlan` style, one salt per decision kind — the simulated objective
//! is a pure function of the evaluation seed, and deliveries are processed
//! in a deterministic order. A failing seed therefore replays exactly,
//! locally and in CI (`HYPERPOWER_CHAOS_SEED`).

use std::path::{Path, PathBuf};

use hyperpower::driver::RunSetup;
use hyperpower::golden::{diff_text, encode_trace};
use hyperpower::space::Decoded;
use hyperpower::{
    run_optimization_with, Budget, Budgets, EarlyTermination, Error, EvaluationResult,
    ExecutorOptions, Method, Mode, Objective, RetryPolicy, SearchSpace, StudySpec, Trace,
};
use hyperpower_gpu_sim::{DeviceProfile, FaultProfile, Gpu, TrainingCostModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::journal::study_paths;
use crate::{ServerConfig, ServerError, StudyServer, StudySetup};

/// Golden-ratio mixing constant (the same stream construction the core
/// fault plan and lease jitter use; disjoint salts keep streams disjoint).
const MIX: u64 = 0x9e37_79b9_7f4a_7c15;

const SALT_DROP: u64 = 0xC4A0_0001;
const SALT_DUP: u64 = 0xC4A0_0002;
const SALT_DELAY: u64 = 0xC4A0_0003;
const SALT_CRASH: u64 = 0xC4A0_0004;
const SALT_TEAR: u64 = 0xC4A0_0005;
const SALT_TEAR_AT: u64 = 0xC4A0_0006;
const SALT_ROT: u64 = 0xC4A0_0007;
const SALT_ROT_AT: u64 = 0xC4A0_0008;
const SALT_SLOW: u64 = 0xC4A0_0009;
const SALT_SLOW_DELAY: u64 = 0xC4A0_000A;

/// Which failure family a chaos run leans on, atop the always-on baseline
/// faults (drops, duplicates, delays, crashes, torn journals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChaosProfile {
    /// The original kill/duplicate/reorder/crash storm.
    Baseline,
    /// Crashes additionally flip seeded bits inside journal bodies; the
    /// harness recovers through `fsck --salvage` and proves byte-exact
    /// reconvergence.
    BitRot,
    /// A seeded subset of workers delivers results rounds late, forcing
    /// hedged re-dispatch and worker quarantines.
    SlowWorker,
}

impl ChaosProfile {
    /// Stable CLI/CI name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosProfile::Baseline => "baseline",
            ChaosProfile::BitRot => "bit-rot",
            ChaosProfile::SlowWorker => "slow-worker",
        }
    }

    /// Parses a CLI/CI name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "baseline" => Some(ChaosProfile::Baseline),
            "bit-rot" => Some(ChaosProfile::BitRot),
            "slow-worker" => Some(ChaosProfile::SlowWorker),
            _ => None,
        }
    }
}

/// Deterministic fault decisions for one chaos run: every predicate is a
/// pure function of the plan seed and its arguments.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    seed: u64,
}

impl ChaosPlan {
    /// A plan over `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosPlan { seed }
    }

    fn unit(&self, salt: u64, a: u64, b: u64) -> f64 {
        use rand::RngExt;
        let mut h = self.seed ^ salt;
        h = h.wrapping_mul(MIX).wrapping_add(a);
        h = h.wrapping_mul(MIX).wrapping_add(b);
        StdRng::seed_from_u64(h).random_range(0.0..1.0)
    }

    /// The worker evaluating this lease dies: its result is never told and
    /// the lease is left to expire.
    pub fn drop_tell(&self, study: u64, lease_id: u64) -> bool {
        self.unit(SALT_DROP, study, lease_id) < 0.18
    }

    /// The delivery is duplicated (an at-least-once transport retry).
    pub fn duplicate_tell(&self, study: u64, lease_id: u64) -> bool {
        self.unit(SALT_DUP, study, lease_id) < 0.25
    }

    /// Extra scheduler rounds this delivery is delayed — delays reorder
    /// tells across leases (and can outlive the lease's deadline, turning
    /// the delivery into a typed late-tell rejection).
    pub fn delay_rounds(&self, study: u64, lease_id: u64) -> u64 {
        (self.unit(SALT_DELAY, study, lease_id) * 4.0) as u64
    }

    /// The whole server process is killed after this round.
    pub fn crash_after_round(&self, round: u64) -> bool {
        self.unit(SALT_CRASH, round, 0) < 0.10
    }

    /// Whether this crash tears the study's last journal record mid-write.
    pub fn tear_journal(&self, round: u64, study: u64) -> bool {
        self.unit(SALT_TEAR, round, study) < 0.5
    }

    /// Where inside the last record the tear lands: a fraction in `(0, 1]`
    /// of the record's bytes that survive.
    pub fn tear_keep_frac(&self, round: u64, study: u64) -> f64 {
        self.unit(SALT_TEAR_AT, round, study)
    }

    /// Whether this crash also rots a bit somewhere in the study's journal
    /// body (bit-rot profile only).
    pub fn rot_journal(&self, round: u64, study: u64) -> bool {
        self.unit(SALT_ROT, round, study) < 0.6
    }

    /// Which `(byte fraction, bit)` of the journal body the rot flips.
    pub fn rot_target(&self, round: u64, study: u64) -> (f64, u32) {
        let frac = self.unit(SALT_ROT_AT, round, study);
        let bit = (self.unit(SALT_ROT_AT, study, round) * 8.0) as u32 & 7;
        (frac, bit)
    }

    /// Whether this worker is chronically slow (slow-worker profile only).
    pub fn slow_worker(&self, worker: u64) -> bool {
        self.unit(SALT_SLOW, worker, 0) < 0.4
    }

    /// Extra delivery rounds a slow worker adds — always past the hedge
    /// deadline, so the duplicate race actually happens.
    pub fn slow_delay_rounds(&self, worker: u64, lease_id: u64) -> u64 {
        3 + (self.unit(SALT_SLOW_DELAY, worker, lease_id) * 3.0) as u64
    }
}

/// The chaos deployment's objective: error and training time are pure
/// functions of the evaluation seed (the fault-injection suite's stub),
/// so any worker — or the reference run — computes identical results.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntheticObjective;

impl Objective for SyntheticObjective {
    fn evaluate(
        &self,
        _decoded: &Decoded,
        _early: Option<&EarlyTermination>,
        seed: u64,
    ) -> hyperpower::Result<EvaluationResult> {
        Ok(EvaluationResult {
            error: 0.05 + 0.9 * ((seed % 997) as f64 / 997.0),
            diverged: false,
            terminated_early: false,
            train_secs: 400.0 + (seed % 13) as f64 * 25.0,
        })
    }

    fn full_epochs(&self) -> usize {
        10
    }
}

/// One study in the chaos deployment.
#[derive(Debug, Clone)]
struct ChaosStudy {
    name: &'static str,
    seed: u64,
    method: Method,
    budget: Budget,
    fault_profile: FaultProfile,
    priority: u32,
}

/// The fixed deployment every chaos run hosts: multiple studies with
/// distinct seeds, methods, budgets and fault profiles (one of them
/// retry-heavy), at different shedding priorities.
fn deployment() -> Vec<ChaosStudy> {
    vec![
        ChaosStudy {
            name: "alpha",
            seed: 0xA1FA_0001,
            method: Method::Rand,
            budget: Budget::Evaluations(6),
            fault_profile: FaultProfile::none(),
            priority: 2,
        },
        ChaosStudy {
            name: "beta",
            seed: 0xBE7A_0002,
            method: Method::RandWalk,
            budget: Budget::Evaluations(5),
            fault_profile: FaultProfile::flaky_sensor(),
            priority: 1,
        },
    ]
}

fn chaos_spec(st: &ChaosStudy) -> StudySpec {
    StudySpec {
        method: st.method,
        mode: Mode::HyperPower,
        budget: st.budget,
        seed: st.seed,
        budgets: Budgets::default(),
        cost: TrainingCostModel::default(),
        early_termination: Some(EarlyTermination::default()),
        fault_profile: st.fault_profile.clone(),
        retry: RetryPolicy::default(),
        drift: hyperpower::DriftConfig::default(),
    }
}

fn chaos_setup(st: &ChaosStudy) -> StudySetup {
    StudySetup {
        space: SearchSpace::mnist(),
        gpu: Gpu::new(DeviceProfile::gtx_1070(), st.seed),
        oracle: None,
        spec: chaos_spec(st),
        priority: st.priority,
    }
}

/// The uninterrupted single-process reference: the embedded executor loop
/// over the identical spec, space, GPU seed and objective.
fn reference_trace(st: &ChaosStudy) -> Result<Trace, Error> {
    let space = SearchSpace::mnist();
    let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), st.seed);
    let objective = SyntheticObjective;
    run_optimization_with(
        RunSetup {
            space: &space,
            objective: &objective,
            gpu: &mut gpu,
            budgets: Budgets::default(),
            oracle: None,
            early_termination: Some(EarlyTermination::default()),
            cost: TrainingCostModel::default(),
            method: st.method,
            mode: Mode::HyperPower,
            budget: st.budget,
            seed: st.seed,
            searcher_override: None,
        },
        &ExecutorOptions {
            workers: 1,
            simulated_gpus: 1,
            fault_profile: st.fault_profile.clone(),
            retry: RetryPolicy::default(),
            checkpoint: None,
            resume_from: None,
            drift: hyperpower::DriftConfig::default(),
        },
    )
}

/// Counters describing what one chaos run inflicted and absorbed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosReport {
    /// Scheduler rounds until every study finished.
    pub rounds: u64,
    /// Server processes killed (and recovered).
    pub crashes: usize,
    /// Journals torn mid-record by a crash.
    pub torn_journals: usize,
    /// Committed samples reconstructed across all recoveries.
    pub recovered_samples: usize,
    /// Results lost with their worker.
    pub dropped_tells: usize,
    /// Deliveries duplicated in flight.
    pub duplicated_tells: usize,
    /// Deliveries delayed (reordered) in flight.
    pub delayed_tells: usize,
    /// Late tells rejected with the typed lease-expiry error.
    pub expired_tells: usize,
    /// Leases reclaimed by deadline expiry.
    pub reclaimed_leases: usize,
    /// Asks refused by backpressure.
    pub overload_refusals: usize,
    /// Speculative duplicate leases issued by hedged re-dispatch.
    pub hedged_leases: u64,
    /// Sibling leases a first fulfilment superseded.
    pub superseded_leases: u64,
    /// Journal bodies bit-rotted by a crash (bit-rot profile).
    pub rotted_journals: usize,
    /// Studies recovered only after an `fsck --salvage` pass.
    pub salvaged_studies: usize,
    /// Workers quarantined or retired at the end of the run.
    pub unhealthy_workers: usize,
}

/// A study whose post-chaos trace differs from the uninterrupted
/// reference (the harness's failure evidence, ready for an artifact).
#[derive(Debug, Clone)]
pub struct TraceMismatch {
    /// Study name.
    pub study: String,
    /// Per-field differences from [`diff_text`].
    pub diffs: Vec<String>,
    /// Reference trace bytes.
    pub expected: String,
    /// Post-chaos trace bytes.
    pub actual: String,
}

/// The outcome of one chaos run: what was inflicted, and any study whose
/// trace bytes diverged (none, when the server honours its contract).
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Fault counters.
    pub report: ChaosReport,
    /// Studies whose final bytes diverged from the reference.
    pub mismatches: Vec<TraceMismatch>,
}

/// One in-flight result delivery.
struct Delivery {
    study: usize,
    lease_id: u64,
    result: EvaluationResult,
    due_round: u64,
    /// Index of the worker carrying the result (fleet attribution).
    worker: usize,
}

/// Scheduler-clock seconds per round. Together with the harness lease
/// policy (base TTL 240 s, factor 2, jitter ½) a dropped lease is
/// reclaimed after 2–3 rounds and re-issued with a grown deadline.
const ROUND_SECS: f64 = 120.0;

/// Hard stop: no legitimate run needs anywhere near this many rounds, so
/// hitting it means the serving loop wedged — which is itself a failure
/// the harness must surface, not spin on.
const MAX_ROUNDS: u64 = 5_000;

fn harness_config(root: &Path) -> ServerConfig {
    ServerConfig {
        root: root.to_path_buf(),
        max_studies: 8,
        max_outstanding_per_study: 16,
        max_outstanding_total: 32,
        lease_policy: RetryPolicy {
            max_retries: 0,
            backoff_base_s: 240.0,
            backoff_factor: 2.0,
            backoff_jitter_frac: 0.5,
        },
        snapshot_every_commits: 3,
        // One round of silence (plus jitter) and a candidate is hedged —
        // shorter than the lease TTL so the duplicate race actually runs
        // before reclamation would have re-pooled the candidate.
        hedge_after_s: 120.0,
        ..ServerConfig::default()
    }
}

/// Flips one seeded bit inside the journal's body (never the header
/// line), the way silent media corruption does. Returns whether a bit was
/// flipped (a rotated, body-less journal has nothing to rot).
fn rot_journal_body(
    root: &Path,
    name: &str,
    byte_frac: f64,
    bit: u32,
) -> Result<bool, Error> {
    let (journal_path, _) = study_paths(root, name);
    let describe = |what: &str, e: std::io::Error| {
        Error::Checkpoint(format!("{what} {}: {e}", journal_path.display()))
    };
    let mut bytes = std::fs::read(&journal_path).map_err(|e| describe("reading", e))?;
    let Some(header_end) = bytes.iter().position(|&b| b == b'\n') else {
        return Ok(false);
    };
    let body_len = bytes.len() - (header_end + 1);
    if body_len == 0 {
        return Ok(false);
    }
    let offset = header_end + 1 + ((byte_frac * body_len as f64) as usize).min(body_len - 1);
    bytes[offset] ^= 1 << (bit & 7);
    std::fs::write(&journal_path, bytes).map_err(|e| describe("writing", e))?;
    Ok(true)
}

/// Tears the study's journal the way a `kill -9` mid-`write` does: the
/// last record loses its tail (including the newline), leaving a torn
/// final line for recovery to drop. Returns whether a tear happened.
fn tear_journal_tail(root: &Path, name: &str, keep_frac: f64) -> Result<bool, Error> {
    let (journal_path, _) = study_paths(root, name);
    let describe = |what: &str, e: std::io::Error| {
        Error::Checkpoint(format!("{what} {}: {e}", journal_path.display()))
    };
    let bytes = std::fs::read(&journal_path).map_err(|e| describe("reading", e))?;
    // The record being torn is the last line; never tear the header.
    let Some(last_nl) = bytes.iter().rposition(|&b| b == b'\n') else {
        return Ok(false);
    };
    let Some(prev_nl) = bytes[..last_nl].iter().rposition(|&b| b == b'\n') else {
        return Ok(false);
    };
    let record_len = last_nl - prev_nl; // payload + its newline
    if record_len < 2 {
        return Ok(false);
    }
    let keep = 1 + (keep_frac * (record_len - 2) as f64) as usize;
    let new_len = (prev_nl + 1 + keep) as u64;
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&journal_path)
        .map_err(|e| describe("opening", e))?;
    file.set_len(new_len)
        .map_err(|e| describe("truncating", e))?;
    Ok(true)
}

/// Runs the full chaos scenario for `(seed, workers)` with durable state
/// under `root` (wiped first) and the baseline profile. See
/// [`run_chaos_with`].
///
/// # Errors
///
/// As [`run_chaos_with`].
pub fn run_chaos(seed: u64, workers: usize, root: &Path) -> Result<ChaosOutcome, ServerError> {
    run_chaos_with(seed, workers, root, ChaosProfile::Baseline)
}

/// Runs the full chaos scenario for `(seed, workers, profile)` with
/// durable state under `root` (wiped first), returning the fault counters
/// and any trace mismatches. See the module docs.
///
/// # Errors
///
/// [`ServerError`] on any *unexpected* failure — an error the contract
/// says must not happen (unknown leases, journal corruption that salvage
/// cannot repair, a wedged serving loop). Expected rejections (lease
/// expiry, overload) are absorbed into the report.
pub fn run_chaos_with(
    seed: u64,
    workers: usize,
    root: &Path,
    profile: ChaosProfile,
) -> Result<ChaosOutcome, ServerError> {
    std::fs::remove_dir_all(root).ok();
    let plan = ChaosPlan::new(seed);
    let studies = deployment();
    let objective = SyntheticObjective;
    let config = harness_config(root);
    let workers = workers.max(1);
    let worker_ids: Vec<String> = (0..workers).map(|w| format!("w{w}")).collect();
    let mut server = StudyServer::new(config.clone())?;
    for st in &studies {
        server.create_study(st.name, chaos_setup(st))?;
    }

    let mut report = ChaosReport::default();
    let mut pending: Vec<Delivery> = Vec::new();
    let mut now_s = 0.0;
    let mut round: u64 = 0;
    loop {
        let mut all_done = true;
        for st in &studies {
            if !server.is_finished(st.name)? {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        round += 1;
        if round > MAX_ROUNDS {
            return Err(ServerError::Core(Error::Checkpoint(format!(
                "chaos harness wedged: {MAX_ROUNDS} rounds without finishing (seed {seed}, workers {workers})"
            ))));
        }
        now_s += ROUND_SECS;
        let tick = server.tick_hedge(now_s);
        report.reclaimed_leases += tick.reclaimed;
        // Hedged duplicates go straight to the healthiest worker on hand
        // (an eligible non-slow one, when the profile marks some slow) and
        // land this round; whichever copy of the candidate fulfils first
        // commits, the sibling resolves as a duplicate.
        for (name, candidate) in tick.hedged {
            let Some(si) = studies.iter().position(|st| st.name == name) else {
                continue;
            };
            let w = hedge_worker(&plan, &server, &worker_ids, profile);
            let result = objective.evaluate(&candidate.decoded, None, candidate.eval_seed)?;
            pending.push(Delivery {
                study: si,
                lease_id: candidate.lease_id,
                result,
                due_round: round,
                worker: w,
            });
        }

        // Workers pick up new candidates, study by study; supervision
        // gates dispatch — a quarantined worker's ask yields no lease.
        for (si, st) in studies.iter().enumerate() {
            if server.is_finished(st.name)? {
                continue;
            }
            for (w, worker_id) in worker_ids.iter().enumerate() {
                let batch = match server.ask_worker(st.name, worker_id, 1, now_s) {
                    Ok(batch) => batch,
                    Err(
                        ServerError::Overloaded { .. }
                        | ServerError::Backpressure { .. }
                        | ServerError::CircuitOpen { .. },
                    ) => {
                        report.overload_refusals += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                for candidate in batch {
                    // Evaluation is pure, so "the worker computes" is just
                    // a function call; chaos decides the delivery's fate.
                    let result =
                        objective.evaluate(&candidate.decoded, None, candidate.eval_seed)?;
                    if plan.drop_tell(si as u64, candidate.lease_id) {
                        report.dropped_tells += 1;
                        server.note_worker_failure(worker_id, now_s);
                        continue;
                    }
                    let mut delay = plan.delay_rounds(si as u64, candidate.lease_id);
                    if profile == ChaosProfile::SlowWorker && plan.slow_worker(w as u64) {
                        delay += plan.slow_delay_rounds(w as u64, candidate.lease_id);
                    }
                    if delay > 0 {
                        report.delayed_tells += 1;
                    }
                    pending.push(Delivery {
                        study: si,
                        lease_id: candidate.lease_id,
                        result,
                        due_round: round + delay,
                        worker: w,
                    });
                    if plan.duplicate_tell(si as u64, candidate.lease_id) {
                        report.duplicated_tells += 1;
                        pending.push(Delivery {
                            study: si,
                            lease_id: candidate.lease_id,
                            result,
                            due_round: round + delay + 1,
                            worker: w,
                        });
                    }
                }
            }
        }

        // Deliver everything due, in a deterministic order.
        pending.sort_by_key(|d| (d.due_round, d.study, d.lease_id));
        let mut rest = Vec::with_capacity(pending.len());
        for delivery in pending {
            if delivery.due_round > round {
                rest.push(delivery);
                continue;
            }
            let name = studies[delivery.study].name;
            let worker_id = &worker_ids[delivery.worker];
            match server.tell(name, delivery.lease_id, &delivery.result) {
                Ok(_) => server.note_worker_success(worker_id, now_s),
                Err(ServerError::Core(Error::LeaseExpired { .. })) => {
                    // Delivered after its deadline passed and the lease
                    // was reclaimed: the typed rejection, state untouched.
                    // The lateness is the worker's — its streak grows.
                    report.expired_tells += 1;
                    server.note_worker_failure(worker_id, now_s);
                }
                Err(e) => return Err(e),
            }
        }
        pending = rest;

        // kill -9 of the whole server, possibly mid-write.
        if plan.crash_after_round(round) {
            report.crashes += 1;
            drop(server);
            pending.clear(); // in-flight results die with the process
            for (si, st) in studies.iter().enumerate() {
                if plan.tear_journal(round, si as u64)
                    && tear_journal_tail(root, st.name, plan.tear_keep_frac(round, si as u64))
                        .map_err(ServerError::Core)?
                {
                    report.torn_journals += 1;
                }
                // Silent media corruption on top of the crash: flip a
                // seeded bit somewhere in the journal body.
                if profile == ChaosProfile::BitRot && plan.rot_journal(round, si as u64) {
                    let (frac, bit) = plan.rot_target(round, si as u64);
                    if rot_journal_body(root, st.name, frac, bit).map_err(ServerError::Core)? {
                        report.rotted_journals += 1;
                    }
                }
                // A crash inside an atomic snapshot write strands a stale
                // temp file; recovery must sweep, never trust, it.
                let (_, snapshot_path) = study_paths(root, st.name);
                std::fs::write(
                    snapshot_path.with_extension("tmp"),
                    "{ \"schema\": \"hyperpower-checkpoint-v1\", torn",
                )
                .ok();
            }
            server = StudyServer::new(config.clone())?;
            for st in &studies {
                match server.open_study(st.name, chaos_setup(st)) {
                    Ok(n) => report.recovered_samples += n,
                    Err(ServerError::Core(Error::Checkpoint(_) | Error::ResumeMismatch(_))) => {
                        // Damage beyond the torn-tail window (bit-rot):
                        // run exactly what an operator would — `fsck
                        // --salvage` — then reopen. Salvage only discards
                        // unverifiable suffixes, and replay reconverges to
                        // the same bytes, so this must succeed.
                        let fsck =
                            crate::fsck::fsck_store(root, true).map_err(ServerError::Core)?;
                        if !fsck.recoverable() {
                            return Err(ServerError::Core(Error::Checkpoint(format!(
                                "fsck could not salvage the store:\n{fsck}"
                            ))));
                        }
                        report.salvaged_studies += 1;
                        report.recovered_samples += server.open_study(st.name, chaos_setup(st))?;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    report.rounds = round;
    for st in &studies {
        let (issued, superseded) = server.hedge_stats(st.name)?;
        report.hedged_leases += issued;
        report.superseded_leases += superseded;
    }
    let (_, _, quarantined, retired) = server.workers().census();
    report.unhealthy_workers = quarantined + retired;

    // The verdict: every study's bytes against the uninterrupted reference.
    let mut mismatches = Vec::new();
    for st in &studies {
        let actual = encode_trace(&server.trace(st.name)?);
        let expected = encode_trace(&reference_trace(st).map_err(ServerError::Core)?);
        let diffs = diff_text(&expected, &actual);
        if !diffs.is_empty() {
            mismatches.push(TraceMismatch {
                study: st.name.to_string(),
                diffs,
                expected,
                actual,
            });
        }
    }
    Ok(ChaosOutcome { report, mismatches })
}

/// Picks the worker to carry a hedged duplicate: the first eligible
/// worker that is not seeded-slow, falling back to the first eligible,
/// falling back to worker 0 (delivery still races the original).
fn hedge_worker(
    plan: &ChaosPlan,
    server: &StudyServer,
    worker_ids: &[String],
    profile: ChaosProfile,
) -> usize {
    let eligible: Vec<usize> = (0..worker_ids.len())
        .filter(|w| server.workers().eligible(&worker_ids[*w]))
        .collect();
    if profile == ChaosProfile::SlowWorker {
        if let Some(w) = eligible.iter().copied().find(|w| !plan.slow_worker(*w as u64)) {
            return w;
        }
    }
    eligible.first().copied().unwrap_or(0)
}

/// Writes one diff artifact per mismatching study under `dir` (created if
/// needed), returning the paths — the CI chaos matrix uploads these on
/// failure.
///
/// # Errors
///
/// [`Error::Checkpoint`] on I/O failures.
pub fn write_mismatch_artifacts(
    outcome: &ChaosOutcome,
    dir: &Path,
    label: &str,
) -> Result<Vec<PathBuf>, Error> {
    let mut paths = Vec::new();
    if outcome.mismatches.is_empty() {
        return Ok(paths);
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::Checkpoint(format!("creating {}: {e}", dir.display())))?;
    for m in &outcome.mismatches {
        let path = dir.join(format!("{label}-{}.diff", m.study));
        let mut body = String::new();
        body.push_str(&format!("study: {}\n\n== field diffs ==\n", m.study));
        for d in &m.diffs {
            body.push_str(d);
            body.push('\n');
        }
        body.push_str("\n== expected (uninterrupted reference) ==\n");
        body.push_str(&m.expected);
        body.push_str("\n== actual (post-chaos) ==\n");
        body.push_str(&m.actual);
        std::fs::write(&path, body)
            .map_err(|e| Error::Checkpoint(format!("writing {}: {e}", path.display())))?;
        paths.push(path);
    }
    Ok(paths)
}
