//! Per-study durability: a write-ahead journal plus atomic snapshots.
//!
//! Every observation a [`hyperpower::Study`] commits is made durable
//! **before** it reaches in-memory state the server would mind losing,
//! using two files per study under the server root:
//!
//! * `<name>.journal` — an append-only write-ahead log. Line 1 is the
//!   study's identity header (`H <crc> {…}`), then one line per record:
//!   `E <crc> {…}` for a raw objective evaluation (the checkpoint codec's
//!   eval form, keyed by eval seed) and `S <crc> {…}` for a committed
//!   sample ([`hyperpower::golden::encode_sample`] bytes, verbatim).
//!   `<crc>` is the CRC32 of the payload as eight lowercase hex digits
//!   ([`hyperpower::integrity`]): a flipped bit anywhere in a record is a
//!   detected *corrupt frame*, not silently-wrong state. Legacy v1 lines
//!   (payload immediately after the tag, no checksum) are still read.
//!   Appends happen *before* the corresponding snapshot-sink update — the
//!   WAL discipline — so the journal is never behind the snapshot.
//! * `<name>.snapshot` — a complete [`hyperpower::checkpoint`] file
//!   (schema `hyperpower-checkpoint-v2`, CRC32-framed as a whole by the
//!   checkpoint codec), written atomically (temp + rename) every
//!   `snapshot_every` commits by the PR 4 [`CheckpointSink`]. After each
//!   snapshot the journal **rotates**: it is atomically rewritten to just
//!   its header line, because everything it held is now inside the
//!   snapshot. The steady-state journal is therefore short — the tail
//!   since the last snapshot — while the snapshot bounds replay work.
//!
//! # Crash windows, enumerated
//!
//! A `kill -9` can land anywhere; every window leaves recoverable state:
//!
//! * **mid-append** — the journal's last line is torn (no trailing
//!   newline). [`StudyJournal::load`] drops the torn tail; the record was
//!   not yet acknowledged anywhere, so dropping it is the correct
//!   serialization.
//! * **mid-snapshot** — the snapshot write is atomic; a crash strands a
//!   stale `*.tmp` beside it, which the checkpoint codec sweeps on the
//!   next open. The journal still holds everything.
//! * **between snapshot and rotation** — the journal duplicates records
//!   the snapshot already holds. Recovery merges the two keyed by sample
//!   index and verifies overlapping records byte-for-byte.
//! * **mid-rotation** — the rotation rewrite is itself atomic
//!   (temp + rename, distinct temp suffix from the snapshot's); a crash
//!   strands `<name>.journal-tmp`, swept on the next open.
//!
//! Recovery never trusts the merged state blindly: the server replays the
//! study's deterministic schedule against the journaled evaluations and
//! byte-verifies the recomputed prefix against the recorded samples
//! (see `StudyServer::open_study`).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use hyperpower::checkpoint::{CheckpointConfig, CheckpointHeader, CheckpointSink, RunCheckpoint};
use hyperpower::golden::{self, Value};
use hyperpower::{Budget, Error, EvaluationResult, ObservationSink, Result, Sample};

/// Wire schema marker of the journal header line.
const JOURNAL_SCHEMA: &str = "hyperpower-study-journal-v2";

/// Frames a record payload for the wire: `<crc32 hex8> <payload>`.
pub(crate) fn frame_payload(payload: &str) -> String {
    format!("{} {payload}", hyperpower::integrity::crc32_hex(payload.as_bytes()))
}

/// Strips and verifies a record's integrity frame, returning the payload.
/// Legacy v1 records carry no frame — their payload starts immediately
/// with `{` — and pass through unverified (they predate the checksum).
pub(crate) fn unframe_payload(rest: &str) -> Result<&str> {
    if rest.starts_with('{') {
        return Ok(rest);
    }
    let (token, payload) = rest.split_once(' ').ok_or_else(|| {
        Error::Checkpoint(format!("corrupt frame: unterminated checksum token in {rest:?}"))
    })?;
    let expected = hyperpower::integrity::parse_crc32_hex(token).ok_or_else(|| {
        Error::Checkpoint(format!("corrupt frame: malformed checksum token {token:?}"))
    })?;
    let actual = hyperpower::integrity::crc32(payload.as_bytes());
    if actual != expected {
        return Err(Error::Checkpoint(format!(
            "corrupt frame: checksum mismatch (recorded {expected:08x}, computed {actual:08x})"
        )));
    }
    Ok(payload)
}

/// The identity a study journal is bound to: the study's name plus the
/// full run identity of the PR 4 checkpoint codec. Every trace-affecting
/// knob lives in `run`; server-level knobs (queue bounds, lease TTLs,
/// snapshot cadence) are execution-only and deliberately absent — they can
/// change across a restart without invalidating the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// The study's server-unique name.
    pub name: String,
    /// Run identity (seed, method, mode, budget, fault/retry/drift knobs).
    pub run: CheckpointHeader,
}

fn budget_fields(budget: Budget) -> (&'static str, f64) {
    match budget {
        Budget::Evaluations(n) => ("evaluations", n as f64),
        Budget::VirtualHours(h) => ("virtual_hours", h),
    }
}

/// Encodes the header as a single journal line (sans the `H ` tag). The
/// encoding is canonical, so header verification on resume is a literal
/// byte comparison.
pub fn encode_header_line(header: &JournalHeader) -> String {
    let run = &header.run;
    let (budget_kind, budget_value) = budget_fields(run.budget);
    format!(
        "{{\"schema\": \"{JOURNAL_SCHEMA}\", \"name\": \"{}\", \"seed\": \"{}\", \
         \"method\": \"{}\", \"mode\": \"{}\", \"budget\": {{\"kind\": \"{budget_kind}\", \
         \"value\": {budget_value:?}}}, \"simulated_gpus\": {}, \"fault_profile\": \"{}\", \
         \"max_retries\": {}, \"recalibrate\": {}, \"drift_threshold\": {:?}, \
         \"safety_margin\": {:?}}}",
        header.name,
        run.seed,
        run.method,
        run.mode,
        run.simulated_gpus,
        run.fault_profile,
        run.max_retries,
        run.recalibrate,
        run.drift_threshold,
        run.safety_margin,
    )
}

/// Encodes one evaluation record (sans the `E ` tag) — the same line form
/// the checkpoint codec embeds in its `evals` array, so both durability
/// layers speak one dialect.
fn encode_eval_line(eval_seed: u64, r: &EvaluationResult) -> String {
    format!(
        "{{\"seed\": \"{}\", \"error\": {:?}, \"diverged\": {}, \"terminated_early\": {}, \"train_secs\": {:?}}}",
        eval_seed, r.error, r.diverged, r.terminated_early, r.train_secs
    )
}

fn obj_get<'a>(members: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_num(members: &[(String, Value)], key: &str) -> Result<f64> {
    match obj_get(members, key) {
        Some(Value::Number(x)) => Ok(*x),
        _ => Err(Error::Checkpoint(format!(
            "journal record missing numeric field `{key}`"
        ))),
    }
}

fn get_bool(members: &[(String, Value)], key: &str) -> Result<bool> {
    match obj_get(members, key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(Error::Checkpoint(format!(
            "journal record missing boolean field `{key}`"
        ))),
    }
}

fn decode_eval_line(line: &str) -> Result<(u64, EvaluationResult)> {
    let value =
        golden::parse(line).map_err(|e| Error::Checkpoint(format!("journal eval line: {e}")))?;
    let Value::Object(members) = value else {
        return Err(Error::Checkpoint(
            "journal eval line is not an object".into(),
        ));
    };
    let seed = match obj_get(&members, "seed") {
        Some(Value::String(s)) => s
            .parse::<u64>()
            .map_err(|e| Error::Checkpoint(format!("journal eval seed: {e}")))?,
        _ => return Err(Error::Checkpoint("journal eval line missing `seed`".into())),
    };
    Ok((
        seed,
        EvaluationResult {
            error: get_num(&members, "error")?,
            diverged: get_bool(&members, "diverged")?,
            terminated_early: get_bool(&members, "terminated_early")?,
            train_secs: get_num(&members, "train_secs")?,
        },
    ))
}

/// The trace slot a journaled sample line occupies.
pub(crate) fn sample_index(value: &Value) -> Result<usize> {
    let Value::Object(members) = value else {
        return Err(Error::Checkpoint(
            "journal sample line is not an object".into(),
        ));
    };
    let index = get_num(members, "index")?;
    Ok(index as usize)
}

/// Durable state merged from a study's snapshot and journal tail, ready
/// for deterministic replay.
#[derive(Debug, Clone)]
pub struct RecoveredStudy {
    /// The journal's header line, verbatim (callers compare it against
    /// their expected canonical encoding).
    pub header_line: String,
    /// Every journaled raw evaluation, keyed by eval seed.
    pub evals: BTreeMap<u64, EvaluationResult>,
    /// The committed samples, as parsed golden-codec values, contiguous
    /// from trace slot 0.
    pub samples: Vec<Value>,
}

/// The write-ahead journal and snapshot writer of one hosted study.
///
/// Implements [`ObservationSink`], so a [`hyperpower::Study`] streams its
/// commits straight through it; see the module docs for the file formats
/// and crash-window analysis.
#[derive(Debug)]
pub struct StudyJournal {
    journal_path: PathBuf,
    file: std::fs::File,
    header_line: String,
    sink: CheckpointSink,
    snapshot_every: usize,
    commits_since_snapshot: usize,
    /// An append failure surfaced by the infallible `record_eval` hook is
    /// parked here and raised at the next fallible call.
    deferred: Option<Error>,
}

/// The two durable files of study `name` under `root`.
pub fn study_paths(root: &Path, name: &str) -> (PathBuf, PathBuf) {
    (
        root.join(format!("{name}.journal")),
        root.join(format!("{name}.snapshot")),
    )
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Checkpoint(format!("{what} {}: {e}", path.display()))
}

impl StudyJournal {
    /// Creates fresh durable state for one study: the journal is truncated
    /// to its header line and the snapshot sink is reset. Orphaned temp
    /// files from crashed predecessors (both the snapshot's `*.tmp` and
    /// the rotation's `*.journal-tmp`) are swept first.
    ///
    /// # Errors
    ///
    /// [`Error::Checkpoint`] on I/O failures.
    pub fn create(root: &Path, header: &JournalHeader, snapshot_every: usize) -> Result<Self> {
        std::fs::create_dir_all(root).map_err(|e| io_err("creating", root, e))?;
        let (journal_path, snapshot_path) = study_paths(root, &header.name);
        std::fs::remove_file(journal_path.with_extension("journal-tmp")).ok();
        let header_line = encode_header_line(header);
        std::fs::write(&journal_path, format!("H {}\n", frame_payload(&header_line)))
            .map_err(|e| io_err("writing", &journal_path, e))?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .map_err(|e| io_err("opening", &journal_path, e))?;
        // The inner sink never writes on its own cadence — `StudyJournal`
        // owns the snapshot schedule so it can rotate the journal at the
        // exact moment a snapshot lands.
        let sink = CheckpointSink::new(
            CheckpointConfig {
                path: snapshot_path,
                every_commits: usize::MAX,
            },
            &header.run,
        );
        Ok(StudyJournal {
            journal_path,
            file,
            header_line,
            sink,
            snapshot_every,
            commits_since_snapshot: 0,
            deferred: None,
        })
    }

    /// Loads the durable state of study `name`, or `None` when no journal
    /// exists. Merges the snapshot (if any) with the journal tail, keyed
    /// by sample index, byte-verifying overlapping records; drops a torn
    /// trailing journal line.
    ///
    /// # Errors
    ///
    /// [`Error::Checkpoint`] on I/O failures, non-tail corruption, or a
    /// snapshot/journal disagreement.
    pub fn load(root: &Path, name: &str) -> Result<Option<RecoveredStudy>> {
        let (journal_path, snapshot_path) = study_paths(root, name);
        std::fs::remove_file(journal_path.with_extension("journal-tmp")).ok();
        if !journal_path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&journal_path)
            .map_err(|e| io_err("reading", &journal_path, e))?;
        // A crash mid-append leaves a torn final line with no trailing
        // newline; every acknowledged record ends with one.
        let complete = match text.rfind('\n') {
            Some(last) => &text[..=last],
            None => "",
        };
        let mut lines = complete.lines();
        let Some(first) = lines.next() else {
            return Err(Error::Checkpoint(format!(
                "journal {} has no header line",
                journal_path.display()
            )));
        };
        let Some(header_rest) = first.strip_prefix("H ") else {
            return Err(Error::Checkpoint(format!(
                "journal {} does not start with a header record",
                journal_path.display()
            )));
        };
        let header_line = unframe_payload(header_rest)
            .map_err(|e| Error::Checkpoint(format!("journal {}: {e}", journal_path.display())))?;
        let mut evals = BTreeMap::new();
        let mut by_index: BTreeMap<usize, Value> = BTreeMap::new();
        if snapshot_path.exists() {
            let snapshot = RunCheckpoint::load(&snapshot_path)?;
            evals.extend(snapshot.evals);
            // Snapshots are complete from trace slot 0 by construction.
            for (index, value) in snapshot.samples.into_iter().enumerate() {
                by_index.insert(index, value);
            }
        }
        for line in lines {
            if let Some(rest) = line.strip_prefix("E ") {
                let payload = unframe_payload(rest).map_err(|e| {
                    Error::Checkpoint(format!("journal {}: {e}", journal_path.display()))
                })?;
                let (seed, result) = decode_eval_line(payload)?;
                evals.insert(seed, result);
            } else if let Some(rest) = line.strip_prefix("S ") {
                let payload = unframe_payload(rest).map_err(|e| {
                    Error::Checkpoint(format!("journal {}: {e}", journal_path.display()))
                })?;
                let value = golden::parse(payload)
                    .map_err(|e| Error::Checkpoint(format!("journal sample line: {e}")))?;
                let index = sample_index(&value)?;
                if let Some(existing) = by_index.get(&index) {
                    // The snapshot-to-rotation crash window duplicates
                    // records; they must agree byte-for-byte.
                    let disagreements = golden::diff(existing, &value);
                    if !disagreements.is_empty() {
                        return Err(Error::Checkpoint(format!(
                            "journal {} disagrees with snapshot at sample {index}: {}",
                            journal_path.display(),
                            disagreements.join("; ")
                        )));
                    }
                }
                by_index.insert(index, value);
            } else {
                return Err(Error::Checkpoint(format!(
                    "journal {} has an unknown record kind: {line:?}",
                    journal_path.display()
                )));
            }
        }
        // Committed state is the contiguous prefix; a gap means a record
        // vanished from the middle, which no crash window can produce.
        let mut merged = Vec::with_capacity(by_index.len());
        for (expect, (index, value)) in by_index.into_iter().enumerate() {
            if index != expect {
                return Err(Error::Checkpoint(format!(
                    "journal {} is missing sample {expect} (found {index})",
                    journal_path.display()
                )));
            }
            merged.push(value);
        }
        Ok(Some(RecoveredStudy {
            header_line: header_line.to_string(),
            evals,
            samples: merged,
        }))
    }

    /// The canonical header line this journal was created with.
    pub fn header_line(&self) -> &str {
        &self.header_line
    }

    /// Writes the snapshot now and rotates the journal down to its header
    /// line (everything journaled so far is inside the snapshot). Called
    /// on the snapshot cadence and when a study finishes.
    ///
    /// # Errors
    ///
    /// [`Error::Checkpoint`] on I/O failures (including one deferred from
    /// an earlier infallible append).
    pub fn flush(&mut self) -> Result<()> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        // Snapshot first: its atomic rename is the commit point. Only
        // after it lands is discarding the journal body safe.
        self.sink.flush()?;
        let tmp = self.journal_path.with_extension("journal-tmp");
        std::fs::write(&tmp, format!("H {}\n", frame_payload(&self.header_line)))
            .map_err(|e| io_err("writing", &tmp, e))?;
        std::fs::rename(&tmp, &self.journal_path)
            .map_err(|e| io_err("rotating", &self.journal_path, e))?;
        // The old handle points at the replaced inode; reopen.
        self.file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.journal_path)
            .map_err(|e| io_err("reopening", &self.journal_path, e))?;
        self.commits_since_snapshot = 0;
        Ok(())
    }

    fn append(&mut self, tag: char, line: &str) -> Result<()> {
        self.file
            .write_all(format!("{tag} {}\n", frame_payload(line)).as_bytes())
            .map_err(|e| io_err("appending to", &self.journal_path, e))
    }
}

impl ObservationSink for StudyJournal {
    fn record_eval(&mut self, eval_seed: u64, result: &EvaluationResult) {
        // WAL discipline: journal first, then the in-memory snapshot sink.
        // This hook is infallible by trait contract; an append failure is
        // parked and raised at the next fallible call.
        if self.deferred.is_none() {
            if let Err(e) = self.append('E', &encode_eval_line(eval_seed, result)) {
                self.deferred = Some(e);
            }
        }
        self.sink.record_eval(eval_seed, result);
    }

    fn record_commit(&mut self, sample: &Sample) -> Result<()> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        self.append('S', &golden::encode_sample(sample))?;
        self.sink.record_commit(sample)?;
        self.commits_since_snapshot += 1;
        if self.snapshot_every > 0 && self.commits_since_snapshot >= self.snapshot_every {
            self.flush()?;
        }
        Ok(())
    }
}
