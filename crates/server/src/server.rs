//! The multi-study ask–tell server.
//!
//! [`StudyServer`] hosts many concurrent named [`Study`]s, each with its
//! own search space, simulated GPU, and durable [`StudyJournal`]. The
//! server is a *state machine over state machines*: it adds exactly the
//! concerns a serving layer owes its callers —
//!
//! * **admission and naming** — studies are keyed by validated names
//!   (journal file stems); creating over live durable state is refused,
//!   [`StudyServer::open_study`] resumes it instead;
//! * **leases** — every ask hands out candidates under deadlines on the
//!   caller's scheduler clock; [`StudyServer::tick`] reclaims expired
//!   leases so lost workers never wedge a study;
//! * **idempotent tells** — duplicated and reordered deliveries are
//!   absorbed by the study's lease ledger; a tell on a reclaimed lease is
//!   rejected with the typed [`hyperpower::Error::LeaseExpired`] and
//!   changes nothing;
//! * **graceful degradation** — per-study and server-wide outstanding
//!   bounds; at the global bound the server sheds *all* leases of the
//!   lowest-priority study with work outstanding (trace-neutral: shed
//!   candidates are simply re-issued later) before refusing the request
//!   with the typed [`ServerError::Overloaded`];
//! * **crash safety** — every commit is journaled before it is
//!   acknowledged; [`StudyServer::open_study`] rebuilds a killed study by
//!   deterministic replay against its journaled evaluations and
//!   byte-verifies the recomputed prefix against the recorded samples;
//! * **fleet supervision** — a deterministic [`Fleet`] health machine per
//!   worker and per study-as-tenant (`Healthy → Suspect → Quarantined →
//!   Retired`); quarantined workers never receive a fresh lease
//!   ([`StudyServer::ask_worker`] returns an empty batch);
//! * **hedged re-dispatch** — [`StudyServer::tick_hedge`] re-issues any
//!   candidate whose sole lease has outlived its seeded hedge deadline as
//!   a speculative duplicate for a healthy worker; the first fulfilment
//!   commits at the single existing commit point and the loser resolves
//!   as [`TellOutcome::Duplicate`]. Hedging is trace-neutral by
//!   construction: the candidate's `eval_seed` was fixed at planning
//!   time, so *who* evaluates it cannot change the committed bytes;
//! * **tenant backpressure** — a per-study token bucket charged against
//!   the scheduler clock ([`ServerError::Backpressure`]) and a per-study
//!   circuit breaker that opens after a seeded run of consecutive
//!   journal/tell failures ([`ServerError::CircuitOpen`]). Both are typed
//!   refusals; neither ever panics or touches study state.

use std::collections::BTreeMap;
use std::path::PathBuf;

use hyperpower::checkpoint::CheckpointHeader;
use hyperpower::golden;
use hyperpower::{
    ConstraintOracle, Error, LeasedCandidate, RetryPolicy, SearchSpace, Study, StudySpec,
    TellOutcome, Trace,
};
use hyperpower_gpu_sim::Gpu;

use crate::health::{Fleet, HealthPolicy, HealthState};
use crate::journal::{encode_header_line, JournalHeader, RecoveredStudy, StudyJournal};
use crate::ServerError;

/// Execution-level serving knobs. None of these can change a committed
/// trace byte — run identity lives entirely in each study's [`StudySpec`]
/// (journaled via its header) — so every field is free to differ across a
/// server restart.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Directory holding every study's journal and snapshot.
    pub root: PathBuf,
    /// Maximum hosted studies.
    pub max_studies: usize,
    /// Maximum outstanding leases per study; asks beyond it are refused
    /// with [`ServerError::Overloaded`].
    pub max_outstanding_per_study: usize,
    /// Maximum outstanding leases server-wide; at the bound the server
    /// sheds the lowest-priority study's leases before refusing.
    pub max_outstanding_total: usize,
    /// Lease-deadline policy: `backoff_secs(attempt, jitter)` is the TTL
    /// of issuance `attempt`, so re-issued leases get geometrically more
    /// time (the PR 4 retry/backoff machinery, repurposed).
    pub lease_policy: RetryPolicy,
    /// Snapshot (and journal-rotation) cadence in commits; `0` snapshots
    /// only when a study finishes.
    pub snapshot_every_commits: usize,
    /// Base of the hedge-deadline curve, in scheduler-clock seconds: a
    /// candidate whose *single* outstanding lease is older than
    /// `backoff_secs(attempt, jitter)` on this base (factor and jitter
    /// borrowed from `lease_policy`) gets a speculative duplicate lease
    /// from [`StudyServer::tick_hedge`]. `0` disables hedging.
    pub hedge_after_s: f64,
    /// Tokens per scheduler-clock second each study (tenant) accrues for
    /// `ask`/`tell` admission; `0` disables the bucket (unlimited).
    pub tenant_rate_per_s: f64,
    /// Token-bucket capacity per tenant (burst allowance).
    pub tenant_burst: f64,
    /// Base run of consecutive journal/tell failures that opens a study's
    /// circuit breaker (the seeded jitter on top comes from `health`);
    /// `0` disables the breaker. Lease-lifecycle rejections
    /// ([`hyperpower::Error::LeaseExpired`], `UnknownLease`) are caller
    /// faults and never count.
    pub breaker_threshold: u32,
    /// Base scheduler-clock seconds an open breaker stays open before its
    /// seeded parole instant.
    pub breaker_cooldown_s: f64,
    /// Seed of the supervision streams (probation thresholds, parole
    /// durations). Execution-only, like everything else here.
    pub supervision_seed: u64,
    /// The worker/tenant health state machine's knobs.
    pub health: HealthPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            root: PathBuf::from("target/study-server"),
            max_studies: 64,
            max_outstanding_per_study: 16,
            max_outstanding_total: 64,
            lease_policy: RetryPolicy {
                max_retries: 0,
                backoff_base_s: 600.0,
                backoff_factor: 2.0,
                backoff_jitter_frac: 0.5,
            },
            snapshot_every_commits: 8,
            hedge_after_s: 900.0,
            tenant_rate_per_s: 0.0,
            tenant_burst: 8.0,
            breaker_threshold: 8,
            breaker_cooldown_s: 1800.0,
            supervision_seed: 0,
            health: HealthPolicy::default(),
        }
    }
}

/// Everything a hosted study needs besides its name: the evaluation
/// context the core [`Study`] deliberately does not own.
#[derive(Debug)]
pub struct StudySetup {
    /// The search space candidates are proposed from.
    pub space: SearchSpace,
    /// The study's simulated GPU (sensor streams are per-study state).
    pub gpu: Gpu,
    /// The profiling-time constraint oracle, when the method screens.
    pub oracle: Option<ConstraintOracle>,
    /// Run identity and schedule.
    pub spec: StudySpec,
    /// Shedding priority: under global overload the *lowest* priority
    /// study loses its leases first.
    pub priority: u32,
}

#[derive(Debug)]
struct StudyEntry {
    study: Study,
    space: SearchSpace,
    gpu: Gpu,
    journal: StudyJournal,
    priority: u32,
    /// Token-bucket admission state (tenant backpressure).
    tokens: f64,
    refill_s: f64,
}

/// What one [`StudyServer::tick_hedge`] pass did: expired-lease
/// reclamations, fleet state transitions, and the speculative duplicate
/// leases it issued — `(study name, candidate)` pairs the caller must
/// dispatch to an eligible worker.
#[derive(Debug, Default)]
pub struct TickReport {
    /// Leases whose deadline passed and were reclaimed.
    pub reclaimed: usize,
    /// Worker/tenant health-state transitions applied by the sweep.
    pub fleet_transitions: usize,
    /// Speculative duplicate leases issued for overdue candidates.
    pub hedged: Vec<(String, LeasedCandidate)>,
}

/// A crash-safe server hosting many concurrent named studies. See the
/// module docs for the contract.
#[derive(Debug)]
pub struct StudyServer {
    config: ServerConfig,
    studies: BTreeMap<String, StudyEntry>,
    /// Supervision over simulated workers (lease dispatch gating).
    workers: Fleet,
    /// Supervision over studies as tenants: a tenant quarantine *is* the
    /// study's open circuit breaker.
    tenants: Fleet,
    /// High-water mark of every scheduler-clock instant the server has
    /// seen; `tell` (which carries no clock) charges admission here.
    clock_s: f64,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// The journal header a study setup implies (simulated_gpus is 1: a study
/// is the single-schedule machine; batch-parallel variants are hosted as
/// separate studies).
fn journal_header(name: &str, spec: &StudySpec) -> JournalHeader {
    JournalHeader {
        name: name.to_string(),
        run: CheckpointHeader {
            seed: spec.seed,
            method: spec.method.to_string(),
            mode: spec.mode.to_string(),
            budget: spec.budget,
            simulated_gpus: 1,
            fault_profile: spec.fault_profile.name.clone(),
            max_retries: spec.retry.max_retries,
            recalibrate: spec.drift.recalibrate,
            drift_threshold: spec.drift.drift_threshold,
            safety_margin: spec.drift.safety_margin,
        },
    }
}

impl StudyServer {
    /// Creates a server over `config.root` (created if absent). Hosts no
    /// studies yet; durable state on disk is untouched until a study of
    /// that name is created or opened.
    ///
    /// # Errors
    ///
    /// [`ServerError::Core`] when the root directory cannot be created.
    pub fn new(config: ServerConfig) -> Result<Self, ServerError> {
        std::fs::create_dir_all(&config.root).map_err(|e| {
            ServerError::Core(Error::Checkpoint(format!(
                "creating {}: {e}",
                config.root.display()
            )))
        })?;
        // Tenant supervision reuses the health machine with the breaker's
        // knobs: probation = consecutive journal/tell failures, parole =
        // breaker cooldown. Tenants are never timed out or retired — a
        // study must always be able to come back.
        let tenant_policy = HealthPolicy {
            heartbeat_timeout_s: f64::INFINITY,
            probation_failures: config.breaker_threshold.max(1),
            probation_jitter: config.health.probation_jitter,
            parole_s: config.breaker_cooldown_s,
            parole_jitter_frac: config.health.parole_jitter_frac,
            retire_after: u32::MAX,
        };
        let workers = Fleet::new(config.supervision_seed, config.health.clone());
        let tenants = Fleet::new(config.supervision_seed, tenant_policy);
        Ok(StudyServer {
            config,
            studies: BTreeMap::new(),
            workers,
            tenants,
            clock_s: 0.0,
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Names of every hosted study, in order.
    pub fn study_names(&self) -> Vec<String> {
        self.studies.keys().cloned().collect()
    }

    /// Outstanding leases across all hosted studies.
    pub fn outstanding_total(&self) -> usize {
        self.studies
            .values()
            .map(|e| e.study.outstanding_leases())
            .sum()
    }

    /// Creates a brand-new study. Refuses names with live durable state on
    /// disk ([`StudyServer::open_study`] resumes those) so an admission
    /// race can never truncate a journal.
    ///
    /// # Errors
    ///
    /// [`ServerError::InvalidStudyName`], [`ServerError::StudyExists`],
    /// [`ServerError::Overloaded`] (at `max_studies`), or journal I/O
    /// failures.
    pub fn create_study(&mut self, name: &str, setup: StudySetup) -> Result<(), ServerError> {
        self.admit(name)?;
        let (journal_path, _) = crate::journal::study_paths(&self.config.root, name);
        if journal_path.exists() {
            return Err(ServerError::StudyExists(name.to_string()));
        }
        self.install(name, setup, None)?;
        Ok(())
    }

    /// Creates the study if no durable state exists, otherwise resumes it
    /// from its journal and snapshot: the study's deterministic schedule
    /// is replayed against the journaled evaluations, the recomputed
    /// prefix is byte-verified against every recorded sample, and the
    /// durable files are rewritten fresh. Returns the number of committed
    /// samples recovered.
    ///
    /// # Errors
    ///
    /// Everything [`StudyServer::create_study`] raises, plus
    /// [`hyperpower::Error::ResumeMismatch`] (via [`ServerError::Core`])
    /// when the journal belongs to a different run identity or replay
    /// disagrees with the recorded bytes.
    pub fn open_study(&mut self, name: &str, setup: StudySetup) -> Result<usize, ServerError> {
        self.admit(name)?;
        let recovered = StudyJournal::load(&self.config.root, name)?;
        let Some(recovered) = recovered else {
            self.install(name, setup, None)?;
            return Ok(0);
        };
        let expected = encode_header_line(&journal_header(name, &setup.spec));
        // A legacy unframed journal carries the v1 schema marker but the
        // same canonical identity encoding otherwise; accept it.
        let expected_v1 =
            expected.replace("hyperpower-study-journal-v2", "hyperpower-study-journal-v1");
        if recovered.header_line != expected && recovered.header_line != expected_v1 {
            return Err(ServerError::Core(Error::ResumeMismatch(format!(
                "journal for study {name:?} was written by a different run: journal header {}, expected {}",
                recovered.header_line, expected
            ))));
        }
        let committed = recovered.samples.len();
        self.install(name, setup, Some(recovered))?;
        Ok(committed)
    }

    /// Admission checks shared by create and open.
    fn admit(&self, name: &str) -> Result<(), ServerError> {
        if !valid_name(name) {
            return Err(ServerError::InvalidStudyName(name.to_string()));
        }
        if self.studies.contains_key(name) {
            return Err(ServerError::StudyExists(name.to_string()));
        }
        if self.studies.len() >= self.config.max_studies {
            return Err(ServerError::Overloaded {
                study: name.to_string(),
                outstanding: self.studies.len(),
                limit: self.config.max_studies,
            });
        }
        Ok(())
    }

    /// Builds the entry, replaying recovered state when given.
    fn install(
        &mut self,
        name: &str,
        setup: StudySetup,
        recovered: Option<RecoveredStudy>,
    ) -> Result<(), ServerError> {
        let StudySetup {
            space,
            mut gpu,
            oracle,
            spec,
            priority,
        } = setup;
        let header = journal_header(name, &spec);
        let mut journal = StudyJournal::create(
            &self.config.root,
            &header,
            self.config.snapshot_every_commits,
        )?;
        let mut study =
            Study::new(spec, oracle.as_ref(), None).with_lease_policy(self.config.lease_policy);
        if let Some(recovered) = recovered {
            replay(&mut study, &space, &mut gpu, &mut journal, &recovered)?;
        }
        self.tenants.register(name, self.clock_s);
        self.studies.insert(
            name.to_string(),
            StudyEntry {
                study,
                space,
                gpu,
                journal,
                priority,
                tokens: self.config.tenant_burst,
                refill_s: self.clock_s,
            },
        );
        Ok(())
    }

    fn entry_mut(&mut self, name: &str) -> Result<&mut StudyEntry, ServerError> {
        self.studies
            .get_mut(name)
            .ok_or_else(|| ServerError::StudyNotFound(name.to_string()))
    }

    fn entry(&self, name: &str) -> Result<&StudyEntry, ServerError> {
        self.studies
            .get(name)
            .ok_or_else(|| ServerError::StudyNotFound(name.to_string()))
    }

    /// Tenant admission shared by `ask` and `tell`: the circuit breaker
    /// first (an open breaker refuses outright until its parole instant),
    /// then the token bucket. Pure flow control — refusals change no
    /// study state (the token, once granted, is spent even if the request
    /// later fails: failures are the breaker's concern, not the bucket's).
    fn charge_admission(&mut self, name: &str, now_s: f64) -> Result<(), ServerError> {
        self.clock_s = self.clock_s.max(now_s);
        if !self.tenants.eligible(name) {
            match self.tenants.parole_until(name) {
                Some(until_s) if now_s >= until_s => {
                    // Parole instant passed: release before admitting.
                    self.tenants.sweep(now_s);
                }
                Some(until_s) => {
                    return Err(ServerError::CircuitOpen {
                        study: name.to_string(),
                        until_s,
                    })
                }
                None => {}
            }
        }
        let rate = self.config.tenant_rate_per_s;
        if rate > 0.0 {
            let burst = self.config.tenant_burst.max(1.0);
            let entry = self.entry_mut(name)?;
            entry.tokens = burst.min(entry.tokens + rate * (now_s - entry.refill_s).max(0.0));
            entry.refill_s = entry.refill_s.max(now_s);
            if entry.tokens < 1.0 {
                return Err(ServerError::Backpressure {
                    study: name.to_string(),
                    retry_after_s: (1.0 - entry.tokens) / rate,
                });
            }
            entry.tokens -= 1.0;
        }
        Ok(())
    }

    /// Feeds the circuit breaker from a `tell`/`ask` outcome: server-side
    /// failures (journal I/O, replay mismatches) extend the tenant's
    /// streak and eventually open the breaker; lease-lifecycle rejections
    /// are the *caller's* fault and reset nothing either way.
    fn note_tenant_outcome(&mut self, name: &str, error: Option<&ServerError>) {
        if self.config.breaker_threshold == 0 {
            return;
        }
        match error {
            None => self.tenants.observe_success(name, self.clock_s),
            Some(ServerError::Core(
                Error::LeaseExpired { .. } | Error::UnknownLease { .. },
            )) => {}
            Some(ServerError::Core(_)) => {
                self.tenants.observe_failure(name, self.clock_s);
            }
            Some(_) => {}
        }
    }

    /// Asks study `name` for up to `max` leased candidates, deadlines
    /// stamped relative to the scheduler clock `now_s`.
    ///
    /// Backpressure: an open circuit breaker or a dry token bucket is
    /// refused first ([`ServerError::CircuitOpen`] /
    /// [`ServerError::Backpressure`]); a study at its per-study
    /// outstanding bound is refused outright; at the server-wide bound the
    /// lowest-priority study with leases outstanding is shed first (its
    /// candidates return to its pool — trace-neutral), and only if the
    /// requester itself is that lowest-priority study is the request
    /// refused.
    ///
    /// # Errors
    ///
    /// [`ServerError::StudyNotFound`], [`ServerError::CircuitOpen`],
    /// [`ServerError::Backpressure`], [`ServerError::Overloaded`], or
    /// study/journal errors.
    pub fn ask(
        &mut self,
        name: &str,
        max: usize,
        now_s: f64,
    ) -> Result<Vec<LeasedCandidate>, ServerError> {
        let per_study = self.config.max_outstanding_per_study;
        let global = self.config.max_outstanding_total;
        let outstanding = self.entry(name)?.study.outstanding_leases();
        self.charge_admission(name, now_s)?;
        if outstanding >= per_study {
            return Err(ServerError::Overloaded {
                study: name.to_string(),
                outstanding,
                limit: per_study,
            });
        }
        // Server-wide valve: shed the lowest-priority study holding
        // leases until there is room, refusing only when the requester is
        // itself the lowest priority left. Victim selection is by
        // `(priority, name)` — lowest priority first, lexicographically
        // smallest name breaking ties — comparing names by reference so
        // the scan allocates nothing.
        while self.outstanding_total() >= global {
            let victim = self
                .studies
                .iter()
                .filter(|(_, e)| e.study.outstanding_leases() > 0)
                .min_by_key(|(victim_name, e)| (e.priority, victim_name.as_str()))
                .map(|(victim_name, e)| (victim_name.clone(), e.priority));
            let requester_priority = self.entry(name)?.priority;
            match victim {
                Some((victim_name, victim_priority))
                    if victim_name != name && victim_priority < requester_priority =>
                {
                    self.entry_mut(&victim_name)?.study.reclaim_all();
                }
                _ => {
                    return Err(ServerError::Overloaded {
                        study: name.to_string(),
                        outstanding: self.outstanding_total(),
                        limit: global,
                    })
                }
            }
        }
        let cap = max.min(per_study - outstanding);
        let result: Result<Vec<LeasedCandidate>, ServerError> = (|| {
            let entry = self.entry_mut(name)?;
            let batch = entry.study.ask(
                &entry.space,
                &mut entry.gpu,
                cap,
                now_s,
                Some(&mut entry.journal),
            )?;
            if entry.study.is_finished() {
                entry.journal.flush()?;
            }
            Ok(batch)
        })();
        self.note_tenant_outcome(name, result.as_ref().err());
        result
    }

    /// [`StudyServer::ask`] on behalf of a named worker: the worker's
    /// heartbeat is refreshed, and if supervision has quarantined or
    /// retired it the batch is empty — **a quarantined worker never
    /// receives a fresh lease**. An empty batch is not an error: the
    /// scheduler just moves on to the next worker.
    ///
    /// # Errors
    ///
    /// Everything [`StudyServer::ask`] raises.
    pub fn ask_worker(
        &mut self,
        name: &str,
        worker: &str,
        max: usize,
        now_s: f64,
    ) -> Result<Vec<LeasedCandidate>, ServerError> {
        self.clock_s = self.clock_s.max(now_s);
        self.workers.heartbeat(worker, now_s);
        if !self.workers.eligible(worker) {
            return Ok(Vec::new());
        }
        self.ask(name, max, now_s)
    }

    /// Tells study `name` the result for `lease_id`. Duplicates are
    /// absorbed ([`TellOutcome::Duplicate`]); tells for proposals the run
    /// outlived are absorbed ([`TellOutcome::Discarded`]); tells on
    /// reclaimed leases are rejected with the typed
    /// [`hyperpower::Error::LeaseExpired`], state untouched.
    ///
    /// Admission runs first (the breaker and, when enabled, the token
    /// bucket, charged at the server's clock high-water mark since a tell
    /// carries no clock); a journal/tell failure extends the tenant's
    /// breaker streak, while the lease-lifecycle rejections above are
    /// caller faults and never count.
    ///
    /// # Errors
    ///
    /// [`ServerError::StudyNotFound`], [`ServerError::CircuitOpen`],
    /// [`ServerError::Backpressure`], or study/journal errors (including
    /// the lease-lifecycle rejections above).
    pub fn tell(
        &mut self,
        name: &str,
        lease_id: u64,
        result: &hyperpower::EvaluationResult,
    ) -> Result<TellOutcome, ServerError> {
        self.entry(name)?;
        self.charge_admission(name, self.clock_s)?;
        let outcome: Result<TellOutcome, ServerError> = (|| {
            let entry = self.entry_mut(name)?;
            let outcome =
                entry
                    .study
                    .tell(&mut entry.gpu, lease_id, result, Some(&mut entry.journal))?;
            if entry.study.is_finished() {
                entry.journal.flush()?;
            }
            Ok(outcome)
        })();
        self.note_tenant_outcome(name, outcome.as_ref().err());
        outcome
    }

    /// Reclaims every lease whose deadline passed, across all studies,
    /// and sweeps both supervision fleets. Returns how many leases were
    /// reclaimed; their candidates will be re-issued by later asks.
    /// Issues no hedges — use [`StudyServer::tick_hedge`] when the caller
    /// can dispatch the speculative duplicates it returns.
    pub fn tick(&mut self, now_s: f64) -> usize {
        self.clock_s = self.clock_s.max(now_s);
        self.workers.sweep(now_s);
        self.tenants.sweep(now_s);
        self.studies
            .values_mut()
            .map(|e| e.study.reclaim_expired(now_s))
            .sum()
    }

    /// The full maintenance pass: reclaims expired leases, sweeps the
    /// worker and tenant fleets, and — when hedging is enabled and at
    /// least one worker is eligible — re-issues every candidate whose
    /// sole outstanding lease has outlived its seeded hedge deadline as a
    /// speculative duplicate. The caller dispatches the returned
    /// `(study, candidate)` pairs to eligible workers; whichever lease
    /// fulfils first commits, the sibling resolves as
    /// [`TellOutcome::Duplicate`]. Trace-neutral: the duplicate carries
    /// the same planning-time `eval_seed`, so committed bytes cannot
    /// depend on which copy wins.
    pub fn tick_hedge(&mut self, now_s: f64) -> TickReport {
        self.clock_s = self.clock_s.max(now_s);
        let mut report = TickReport {
            fleet_transitions: self.workers.sweep(now_s) + self.tenants.sweep(now_s),
            ..TickReport::default()
        };
        let hedge_policy = RetryPolicy {
            max_retries: 0,
            backoff_base_s: self.config.hedge_after_s,
            backoff_factor: self.config.lease_policy.backoff_factor,
            backoff_jitter_frac: self.config.lease_policy.backoff_jitter_frac,
        };
        let hedging = self.config.hedge_after_s > 0.0 && self.workers.any_eligible();
        for (name, entry) in &mut self.studies {
            report.reclaimed += entry.study.reclaim_expired(now_s);
            if hedging {
                for candidate in entry.study.hedge_overdue(now_s, &hedge_policy) {
                    report.hedged.push((name.clone(), candidate));
                }
            }
        }
        report
    }

    /// Refreshes a worker's heartbeat (registering it on first contact).
    pub fn worker_heartbeat(&mut self, worker: &str, now_s: f64) {
        self.clock_s = self.clock_s.max(now_s);
        self.workers.heartbeat(worker, now_s);
    }

    /// Records a unit of work a worker completed successfully.
    pub fn note_worker_success(&mut self, worker: &str, now_s: f64) {
        self.clock_s = self.clock_s.max(now_s);
        self.workers.observe_success(worker, now_s);
    }

    /// Records a worker failure (crash, stall, lost result). Returns the
    /// worker's health state after the observation — `Quarantined` or
    /// `Retired` means it gets no fresh leases.
    pub fn note_worker_failure(&mut self, worker: &str, now_s: f64) -> HealthState {
        self.clock_s = self.clock_s.max(now_s);
        self.workers.observe_failure(worker, now_s)
    }

    /// The worker's current health state, if it has ever been seen.
    pub fn worker_state(&self, worker: &str) -> Option<HealthState> {
        self.workers.state(worker)
    }

    /// The worker supervision fleet (read-only).
    pub fn workers(&self) -> &Fleet {
        &self.workers
    }

    /// The study's tenant health state (`Quarantined` means its circuit
    /// breaker is open), if the study is hosted.
    pub fn tenant_state(&self, name: &str) -> Option<HealthState> {
        self.tenants.state(name)
    }

    /// `(hedges issued, hedges superseded)` counters of study `name` —
    /// duplicates issued by [`StudyServer::tick_hedge`] and sibling
    /// leases resolved by a first fulfilment.
    ///
    /// # Errors
    ///
    /// [`ServerError::StudyNotFound`].
    pub fn hedge_stats(&self, name: &str) -> Result<(u64, u64), ServerError> {
        let entry = self.entry(name)?;
        Ok((entry.study.hedges_issued(), entry.study.hedges_superseded()))
    }

    /// Whether study `name` has finished its run.
    ///
    /// # Errors
    ///
    /// [`ServerError::StudyNotFound`].
    pub fn is_finished(&self, name: &str) -> Result<bool, ServerError> {
        Ok(self.entry(name)?.study.is_finished())
    }

    /// Committed samples of study `name`.
    ///
    /// # Errors
    ///
    /// [`ServerError::StudyNotFound`].
    pub fn committed(&self, name: &str) -> Result<usize, ServerError> {
        Ok(self.entry(name)?.study.committed())
    }

    /// A snapshot of study `name`'s committed trace.
    ///
    /// # Errors
    ///
    /// [`ServerError::StudyNotFound`].
    pub fn trace(&self, name: &str) -> Result<Trace, ServerError> {
        Ok(self.entry(name)?.study.trace())
    }
}

/// Replays a recovered study back to its recorded committed state: width-1
/// asks feed journaled evaluations back in, the journal files are rebuilt
/// live, and every recomputed sample is byte-verified against its recorded
/// bytes. Replay leases are reclaimed at the end so real workers get the
/// in-flight candidates re-issued.
fn replay(
    study: &mut Study,
    space: &SearchSpace,
    gpu: &mut Gpu,
    journal: &mut StudyJournal,
    recovered: &RecoveredStudy,
) -> Result<(), ServerError> {
    let target = recovered.samples.len();
    'drive: while !study.is_finished() && study.committed() < target {
        let batch = study.ask(space, gpu, 1, 0.0, Some(&mut *journal))?;
        if batch.is_empty() {
            break;
        }
        for candidate in batch {
            let Some(result) = recovered.evals.get(&candidate.eval_seed) else {
                // The journal records every evaluation before the commit
                // that consumes it, so running dry before `target` means
                // the journal lost non-tail records.
                break 'drive;
            };
            study.tell(gpu, candidate.lease_id, result, Some(&mut *journal))?;
        }
    }
    if study.committed() < target {
        return Err(ServerError::Core(Error::ResumeMismatch(format!(
            "replay reconstructed {} of {target} journaled samples — evaluations are missing from the journal",
            study.committed()
        ))));
    }
    // Byte-exact agreement between the recomputation and the record. The
    // replay may legitimately run past `target` (a block of screening
    // rejections commits in one drain); the excess is fresh progress, not
    // recovered state, so only the recorded prefix is compared.
    let trace = study.trace();
    let mut report = Vec::new();
    for (index, expected) in recovered.samples.iter().enumerate() {
        let line = golden::encode_sample(&trace.samples[index]);
        let actual = golden::parse(&line)
            .map_err(|e| Error::Checkpoint(format!("re-encoding sample {index}: {e}")))?;
        for d in golden::diff(expected, &actual) {
            report.push(format!("samples[{index}]{}", d.trim_start_matches('$')));
        }
    }
    if !report.is_empty() {
        return Err(ServerError::Core(Error::ResumeMismatch(report.join("; "))));
    }
    study.reclaim_all();
    Ok(())
}
