//! Offline integrity scanning — and salvage — of a study store.
//!
//! `hyperpower fsck` walks a server root directory and checks every
//! study's durable pair (`<name>.journal`, `<name>.snapshot`) without
//! opening the studies: each journal record's CRC32 frame is verified,
//! the snapshot is decoded through the checkpoint codec's own integrity
//! frame, and the two headers are cross-checked. Findings are typed as
//! [`StoreDefect`]s:
//!
//! * **corrupt frame** — a record whose checksum disagrees with its
//!   payload (bit-rot), or an undecodable snapshot;
//! * **truncated tail** — trailing bytes with no newline (a torn
//!   mid-append write);
//! * **stale tmp** — an orphaned `*.tmp` / `*.journal-tmp` from a crash
//!   mid-rename;
//! * **header mismatch** — snapshot and journal disagree about the run
//!   identity they claim to persist.
//!
//! With `salvage` on, the scanner repairs what determinism makes safe to
//! repair: the journal is truncated to its **last checksum-valid frame**
//! (everything after the first bad frame is suspect — appends are
//! strictly ordered), stale temp files are removed, and a defective
//! snapshot is dropped *only when* the journal still holds the complete
//! sample history from slot 0. Because a study's schedule is a pure
//! function of `(spec, journaled evaluations)`, replay from any valid
//! durable prefix reconverges to the exact committed bytes — salvage
//! never invents state, it only discards unacknowledged or unverifiable
//! suffixes. The chaos harness proves the round trip: flip seeded bits,
//! fsck --salvage, reopen, byte-compare against the uninterrupted
//! reference.

use std::fmt;
use std::path::{Path, PathBuf};

use hyperpower::checkpoint::RunCheckpoint;
use hyperpower::golden;
use hyperpower::{Error, Result, StoreDefect};

use crate::journal::{
    encode_header_line, sample_index, study_paths, unframe_payload, JournalHeader,
};

/// One study's integrity findings.
#[derive(Debug)]
pub struct StudyFsck {
    /// The study (journal file stem).
    pub name: String,
    /// Typed defects with human-readable locations.
    pub defects: Vec<(StoreDefect, String)>,
    /// Checksum-valid journal records (header included).
    pub valid_records: usize,
    /// Whether the remaining durable state can be reopened and replayed
    /// (after salvage, when salvage is on).
    pub recoverable: bool,
    /// What salvage did to this study's files, if anything.
    pub repairs: Vec<String>,
}

impl StudyFsck {
    /// No defects at all.
    pub fn clean(&self) -> bool {
        self.defects.is_empty()
    }
}

/// The whole store's integrity findings.
#[derive(Debug)]
pub struct FsckReport {
    /// The scanned server root.
    pub root: PathBuf,
    /// Per-study findings, in name order.
    pub studies: Vec<StudyFsck>,
    /// Orphaned temp files found (and removed, when salvaging).
    pub stale_tmps: Vec<PathBuf>,
    /// Whether this scan was allowed to repair.
    pub salvaged: bool,
}

impl FsckReport {
    /// True when every study is defect-free and no stale temps exist.
    pub fn clean(&self) -> bool {
        self.stale_tmps.is_empty() && self.studies.iter().all(StudyFsck::clean)
    }

    /// True when every study is (possibly after salvage) recoverable.
    pub fn recoverable(&self) -> bool {
        self.studies.iter().all(|s| s.recoverable)
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fsck {}", self.root.display())?;
        for tmp in &self.stale_tmps {
            let action = if self.salvaged { "removed" } else { "found" };
            writeln!(f, "  {}: {action} stale temp file", tmp.display())?;
        }
        for study in &self.studies {
            if study.clean() {
                writeln!(
                    f,
                    "  {}: ok ({} checksum-valid records)",
                    study.name, study.valid_records
                )?;
                continue;
            }
            for (defect, detail) in &study.defects {
                writeln!(f, "  {}: {defect}: {detail}", study.name)?;
            }
            for repair in &study.repairs {
                writeln!(f, "  {}: salvage: {repair}", study.name)?;
            }
            writeln!(
                f,
                "  {}: {} ({} checksum-valid records)",
                study.name,
                if study.recoverable {
                    "recoverable"
                } else {
                    "UNRECOVERABLE"
                },
                study.valid_records
            )?;
        }
        let verdict = if self.clean() {
            "clean"
        } else if self.recoverable() {
            "defects found, all studies recoverable"
        } else {
            "defects found, some studies UNRECOVERABLE"
        };
        write!(f, "  store: {verdict}")
    }
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Checkpoint(format!("{what} {}: {e}", path.display()))
}

/// Scans every study under `root`; with `salvage`, also repairs (see the
/// module docs for exactly what is — and is not — repaired).
///
/// # Errors
///
/// [`Error::Checkpoint`] only on I/O failures of the scan itself; store
/// corruption is a *finding*, never an error.
pub fn fsck_store(root: &Path, salvage: bool) -> Result<FsckReport> {
    let mut report = FsckReport {
        root: root.to_path_buf(),
        studies: Vec::new(),
        stale_tmps: Vec::new(),
        salvaged: salvage,
    };
    let mut names = Vec::new();
    let entries = std::fs::read_dir(root).map_err(|e| io_err("reading", root, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("reading", root, e))?;
        let path = entry.path();
        let file_name = entry.file_name().to_string_lossy().into_owned();
        if file_name.ends_with(".tmp") || file_name.ends_with(".journal-tmp") {
            report.stale_tmps.push(path.clone());
            if salvage {
                std::fs::remove_file(&path).map_err(|e| io_err("removing", &path, e))?;
            }
        } else if let Some(stem) = file_name.strip_suffix(".journal") {
            names.push(stem.to_string());
        }
    }
    names.sort();
    report.stale_tmps.sort();
    for name in names {
        report.studies.push(fsck_study(root, &name, salvage)?);
    }
    Ok(report)
}

/// A parsed pass over one journal: the byte length of the valid framed
/// prefix, the records inside it, and the first defect (if any).
struct JournalScan {
    valid_prefix_bytes: usize,
    valid_records: usize,
    header_payload: Option<String>,
    sample_indices: Vec<usize>,
    defect: Option<(StoreDefect, String)>,
}

fn scan_journal(path: &Path) -> Result<JournalScan> {
    let bytes = std::fs::read(path).map_err(|e| io_err("reading", path, e))?;
    let mut scan = JournalScan {
        valid_prefix_bytes: 0,
        valid_records: 0,
        header_payload: None,
        sample_indices: Vec::new(),
        defect: None,
    };
    let mut offset = 0usize;
    let mut line_no = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            // Torn mid-append tail: unacknowledged, safe to drop.
            scan.defect = Some((
                StoreDefect::TruncatedTail,
                format!("{} trailing bytes with no newline", bytes.len() - offset),
            ));
            break;
        };
        line_no += 1;
        let line_end = offset + nl + 1;
        let verdict = check_line(&bytes[offset..offset + nl], line_no, &mut scan);
        match verdict {
            Ok(()) => {
                scan.valid_prefix_bytes = line_end;
                scan.valid_records += 1;
            }
            Err(detail) => {
                // Appends are strictly ordered: everything past the first
                // bad frame is suspect and excluded from the valid prefix.
                scan.defect = Some((StoreDefect::CorruptFrame, detail));
                break;
            }
        }
        offset = line_end;
    }
    Ok(scan)
}

/// Verifies one journal line's tag and integrity frame, recording what it
/// holds. Returns a defect detail string on failure.
fn check_line(
    raw: &[u8],
    line_no: usize,
    scan: &mut JournalScan,
) -> std::result::Result<(), String> {
    let line = std::str::from_utf8(raw).map_err(|_| format!("line {line_no}: not UTF-8"))?;
    let (tag, rest) = match (line.strip_prefix("H "), line_no) {
        (Some(rest), 1) => ('H', rest),
        (None, 1) => return Err(format!("line 1: missing `H ` header record")),
        _ => match (line.strip_prefix("E "), line.strip_prefix("S ")) {
            (Some(rest), _) => ('E', rest),
            (_, Some(rest)) => ('S', rest),
            _ => return Err(format!("line {line_no}: unknown record kind")),
        },
    };
    let payload = unframe_payload(rest).map_err(|e| format!("line {line_no}: {e}"))?;
    match tag {
        'H' => scan.header_payload = Some(payload.to_string()),
        'S' => {
            let value = golden::parse(payload)
                .map_err(|e| format!("line {line_no}: undecodable sample: {e}"))?;
            let index =
                sample_index(&value).map_err(|e| format!("line {line_no}: {e}"))?;
            scan.sample_indices.push(index);
        }
        _ => {}
    }
    Ok(())
}

fn fsck_study(root: &Path, name: &str, salvage: bool) -> Result<StudyFsck> {
    let (journal_path, snapshot_path) = study_paths(root, name);
    let mut study = StudyFsck {
        name: name.to_string(),
        defects: Vec::new(),
        valid_records: 0,
        recoverable: true,
        repairs: Vec::new(),
    };
    let scan = scan_journal(&journal_path)?;
    study.valid_records = scan.valid_records;
    if let Some(defect) = scan.defect.clone() {
        study.defects.push(defect);
        if salvage {
            truncate_file(&journal_path, scan.valid_prefix_bytes)?;
            study.repairs.push(format!(
                "truncated journal to its last valid frame ({} bytes, {} records)",
                scan.valid_prefix_bytes, scan.valid_records
            ));
        }
    }
    // A journal whose header frame itself is gone cannot be reopened: the
    // header binds the durable state to a run identity, and fsck will not
    // guess one.
    if scan.header_payload.is_none() {
        study.recoverable = false;
        return Ok(study);
    }
    if snapshot_path.exists() {
        check_snapshot(&snapshot_path, &scan, salvage, &mut study)?;
    }
    Ok(study)
}

/// Decodes the snapshot through the checkpoint codec (which verifies its
/// own whole-file integrity frame) and cross-checks its header against
/// the journal's. A defective snapshot is only droppable when the journal
/// still holds every sample from slot 0 — otherwise committed history
/// lives nowhere else and the study is unrecoverable.
fn check_snapshot(
    snapshot_path: &Path,
    scan: &JournalScan,
    salvage: bool,
    study: &mut StudyFsck,
) -> Result<()> {
    let defect = match RunCheckpoint::load(snapshot_path) {
        Err(e) => Some((
            StoreDefect::CorruptFrame,
            format!("snapshot undecodable: {e}"),
        )),
        Ok(snapshot) => {
            let expected = encode_header_line(&JournalHeader {
                name: study.name.clone(),
                run: snapshot.header,
            });
            let journal_header = scan.header_payload.as_deref().unwrap_or_default();
            let legacy = expected
                .replace("hyperpower-study-journal-v2", "hyperpower-study-journal-v1");
            if journal_header == expected || journal_header == legacy {
                None
            } else {
                Some((
                    StoreDefect::HeaderMismatch,
                    "snapshot and journal disagree about the run identity".to_string(),
                ))
            }
        }
    };
    let Some(defect) = defect else {
        return Ok(());
    };
    study.defects.push(defect);
    // Conservative: a rotated (samples-free) journal cannot prove the
    // defective snapshot held nothing, so it does not count as coverage.
    let journal_covers_zero = {
        let mut sorted = scan.sample_indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        !sorted.is_empty() && sorted[0] == 0 && sorted.windows(2).all(|w| w[1] == w[0] + 1)
    };
    if !journal_covers_zero {
        study.recoverable = false;
        return Ok(());
    }
    if salvage {
        std::fs::remove_file(snapshot_path)
            .map_err(|e| io_err("removing", snapshot_path, e))?;
        study.repairs.push(
            "dropped the defective snapshot (journal holds the full history)".to_string(),
        );
    }
    Ok(())
}

fn truncate_file(path: &Path, len: usize) -> Result<()> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err("opening", path, e))?;
    file.set_len(len as u64)
        .map_err(|e| io_err("truncating", path, e))
}
