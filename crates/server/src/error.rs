//! Typed server-layer errors.
//!
//! The serving layer degrades gracefully, never opaquely: every refusal a
//! caller can hit has its own variant, and core study errors (including
//! the lease lifecycle's [`hyperpower::Error::LeaseExpired`]) pass through
//! unwrapped inside [`ServerError::Core`] so callers can match on them.

use std::fmt;

use hyperpower::Error;

/// Everything that can go wrong at the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// An error surfaced by the underlying study (proposal, decode,
    /// journal I/O, lease lifecycle).
    Core(Error),
    /// No study with this name is hosted by the server.
    StudyNotFound(String),
    /// A study with this name already exists (names are unique keys; use
    /// [`crate::StudyServer::open_study`] to resume one).
    StudyExists(String),
    /// Study names are path components of journal files: only ASCII
    /// alphanumerics, `_` and `-` are accepted.
    InvalidStudyName(String),
    /// The server refused to take on more work: the named study (or the
    /// server as a whole, for study admission) is at its bound and nothing
    /// lower-priority could be shed. The caller should tell results back
    /// (or let leases expire) and retry.
    Overloaded {
        /// The study whose request was refused.
        study: String,
        /// Outstanding units (leases, or hosted studies) at refusal time.
        outstanding: usize,
        /// The configured bound that was hit.
        limit: usize,
    },
    /// The tenant's token bucket ran dry: this study is calling `ask`/
    /// `tell` faster than its admitted rate. Pure flow control — no state
    /// changed; retry after `retry_after_s` of scheduler-clock time.
    Backpressure {
        /// The study whose request was refused.
        study: String,
        /// Scheduler-clock seconds until one token accrues.
        retry_after_s: f64,
    },
    /// The study's circuit breaker is open after a run of consecutive
    /// journal/tell failures (or a tenant quarantine): requests are
    /// refused outright until the breaker's parole instant passes on the
    /// scheduler clock.
    CircuitOpen {
        /// The study whose request was refused.
        study: String,
        /// Scheduler-clock instant the breaker half-opens again.
        until_s: f64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Core(e) => write!(f, "study error: {e}"),
            ServerError::StudyNotFound(name) => write!(f, "no study named {name:?}"),
            ServerError::StudyExists(name) => {
                write!(f, "study {name:?} already exists (open_study resumes it)")
            }
            ServerError::InvalidStudyName(name) => write!(
                f,
                "invalid study name {name:?}: use ASCII alphanumerics, '_' or '-'"
            ),
            ServerError::Overloaded {
                study,
                outstanding,
                limit,
            } => write!(
                f,
                "overloaded: study {study:?} refused at {outstanding}/{limit} outstanding — tell results back or let leases expire, then retry"
            ),
            ServerError::Backpressure {
                study,
                retry_after_s,
            } => write!(
                f,
                "backpressure: study {study:?} is over its admitted rate — retry in {retry_after_s:.0} virtual seconds"
            ),
            ServerError::CircuitOpen { study, until_s } => write!(
                f,
                "circuit open: study {study:?} tripped its breaker — refused until t={until_s:.0}s on the scheduler clock"
            ),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Error> for ServerError {
    fn from(e: Error) -> Self {
        ServerError::Core(e)
    }
}
