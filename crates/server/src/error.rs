//! Typed server-layer errors.
//!
//! The serving layer degrades gracefully, never opaquely: every refusal a
//! caller can hit has its own variant, and core study errors (including
//! the lease lifecycle's [`hyperpower::Error::LeaseExpired`]) pass through
//! unwrapped inside [`ServerError::Core`] so callers can match on them.

use std::fmt;

use hyperpower::Error;

/// Everything that can go wrong at the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// An error surfaced by the underlying study (proposal, decode,
    /// journal I/O, lease lifecycle).
    Core(Error),
    /// No study with this name is hosted by the server.
    StudyNotFound(String),
    /// A study with this name already exists (names are unique keys; use
    /// [`crate::StudyServer::open_study`] to resume one).
    StudyExists(String),
    /// Study names are path components of journal files: only ASCII
    /// alphanumerics, `_` and `-` are accepted.
    InvalidStudyName(String),
    /// The server refused to take on more work: the named study (or the
    /// server as a whole, for study admission) is at its bound and nothing
    /// lower-priority could be shed. The caller should tell results back
    /// (or let leases expire) and retry.
    Overloaded {
        /// The study whose request was refused.
        study: String,
        /// Outstanding units (leases, or hosted studies) at refusal time.
        outstanding: usize,
        /// The configured bound that was hit.
        limit: usize,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Core(e) => write!(f, "study error: {e}"),
            ServerError::StudyNotFound(name) => write!(f, "no study named {name:?}"),
            ServerError::StudyExists(name) => {
                write!(f, "study {name:?} already exists (open_study resumes it)")
            }
            ServerError::InvalidStudyName(name) => write!(
                f,
                "invalid study name {name:?}: use ASCII alphanumerics, '_' or '-'"
            ),
            ServerError::Overloaded {
                study,
                outstanding,
                limit,
            } => write!(
                f,
                "overloaded: study {study:?} refused at {outstanding}/{limit} outstanding — tell results back or let leases expire, then retry"
            ),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Error> for ServerError {
    fn from(e: Error) -> Self {
        ServerError::Core(e)
    }
}
