//! Serving-layer contract tests: lease lifecycle, idempotent tells,
//! backpressure, durability and byte-exact recovery.
//!
//! The chaos harness (`tests/chaos_matrix.rs`) attacks everything at
//! once; this suite isolates each promise:
//!
//! * serving a study through ask–tell — at any width, with duplicated or
//!   arbitrarily reordered deliveries — commits the exact bytes of the
//!   embedded executor loop (property-tested over delivery schedules);
//! * a tell on an expired lease is rejected with the typed
//!   [`hyperpower::Error::LeaseExpired`] and changes nothing;
//! * per-study and server-wide bounds refuse with typed
//!   [`ServerError::Overloaded`], shedding the lowest-priority study
//!   first at the global bound;
//! * `kill -9` (dropping the server, tearing the journal tail, stranding
//!   a stale snapshot temp) resumes to byte-identical state.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::PathBuf;

use hyperpower::driver::RunSetup;
use hyperpower::golden::encode_trace;
use hyperpower::{
    run_optimization_with, Budget, Budgets, DriftConfig, EarlyTermination, Error, EvaluationResult,
    ExecutorOptions, Method, Mode, Objective, RetryPolicy, SearchSpace, StudySpec, TellOutcome,
    Trace,
};
use hyperpower_gpu_sim::{DeviceProfile, FaultProfile, Gpu, TrainingCostModel};
use hyperpower_server::{
    fsck_store, HealthState, ServerConfig, ServerError, StudyServer, StudySetup,
    SyntheticObjective,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SEED: u64 = 0x5EED_05E6;

fn scratch_root(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/server-scratch")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spec(seed: u64, budget: Budget, profile: FaultProfile) -> StudySpec {
    StudySpec {
        method: Method::Rand,
        mode: Mode::HyperPower,
        budget,
        seed,
        budgets: Budgets::default(),
        cost: TrainingCostModel::default(),
        early_termination: Some(EarlyTermination::default()),
        fault_profile: profile,
        retry: RetryPolicy::default(),
        drift: DriftConfig::default(),
    }
}

fn setup(seed: u64, budget: Budget, priority: u32) -> StudySetup {
    StudySetup {
        space: SearchSpace::mnist(),
        gpu: Gpu::new(DeviceProfile::gtx_1070(), seed),
        oracle: None,
        spec: spec(seed, budget, FaultProfile::none()),
        priority,
    }
}

/// The uninterrupted embedded-loop reference for `setup(seed, budget, _)`.
fn reference(seed: u64, budget: Budget) -> Trace {
    let space = SearchSpace::mnist();
    let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), seed);
    let objective = SyntheticObjective;
    run_optimization_with(
        RunSetup {
            space: &space,
            objective: &objective,
            gpu: &mut gpu,
            budgets: Budgets::default(),
            oracle: None,
            early_termination: Some(EarlyTermination::default()),
            cost: TrainingCostModel::default(),
            method: Method::Rand,
            mode: Mode::HyperPower,
            budget,
            seed,
            searcher_override: None,
        },
        &ExecutorOptions::default(),
    )
    .expect("reference run")
}

fn eval(c: &hyperpower::LeasedCandidate) -> EvaluationResult {
    SyntheticObjective
        .evaluate(&c.decoded, None, c.eval_seed)
        .expect("synthetic objective")
}

/// Serves the study to completion, telling every result back promptly.
fn drive(server: &mut StudyServer, name: &str, width: usize) {
    let mut now = 0.0;
    for _ in 0..10_000 {
        if server.is_finished(name).expect("is_finished") {
            return;
        }
        now += 60.0;
        let batch = server.ask(name, width, now).expect("ask");
        for c in batch {
            server.tell(name, c.lease_id, &eval(&c)).expect("tell");
        }
    }
    panic!("drive wedged: study {name} never finished");
}

// ---------------------------------------------------------------------------
// Byte-exactness of plain serving
// ---------------------------------------------------------------------------

#[test]
fn served_study_matches_embedded_loop_at_any_width() {
    let expected = encode_trace(&reference(SEED, Budget::Evaluations(6)));
    for width in [1usize, 3, 8] {
        let root = scratch_root(&format!("plain-w{width}"));
        let mut server = StudyServer::new(ServerConfig {
            root,
            ..ServerConfig::default()
        })
        .expect("server");
        server
            .create_study("plain", setup(SEED, Budget::Evaluations(6), 1))
            .expect("create");
        drive(&mut server, "plain", width);
        let actual = encode_trace(&server.trace("plain").expect("trace"));
        assert_eq!(expected, actual, "width {width} changed the trace");
    }
}

// ---------------------------------------------------------------------------
// Idempotent tells: duplication and reordering (property)
// ---------------------------------------------------------------------------

/// Serves a study while duplicating and shuffling every round's
/// deliveries according to `schedule_seed`; the committed bytes must not
/// care.
fn drive_scrambled(server: &mut StudyServer, name: &str, schedule_seed: u64) {
    let mut rng = StdRng::seed_from_u64(schedule_seed);
    let mut draw = move || rng.random_range(0.0..1.0);
    let mut now = 0.0;
    for _ in 0..10_000 {
        if server.is_finished(name).expect("is_finished") {
            return;
        }
        now += 60.0;
        let batch = server.ask(name, 4, now).expect("ask");
        // Build the delivery list: every result at least once, some twice.
        let mut deliveries: Vec<(u64, EvaluationResult)> = Vec::new();
        for c in &batch {
            let r = eval(c);
            deliveries.push((c.lease_id, r));
            if draw() < 0.5 {
                deliveries.push((c.lease_id, r));
            }
        }
        // Fisher–Yates on float draws (the vendored rand subset).
        for i in (1..deliveries.len()).rev() {
            let j = (draw() * (i + 1) as f64) as usize;
            deliveries.swap(i, j.min(i));
        }
        let mut accepted = 0usize;
        let mut duplicates = 0usize;
        for (lease_id, r) in &deliveries {
            match server.tell(name, *lease_id, r).expect("tell") {
                TellOutcome::Accepted { .. } => accepted += 1,
                TellOutcome::Duplicate => duplicates += 1,
                TellOutcome::Discarded => {}
            }
        }
        assert_eq!(accepted, batch.len(), "each lease ingested exactly once");
        assert_eq!(duplicates, deliveries.len() - batch.len());
    }
    panic!("drive_scrambled wedged: study {name} never finished");
}

proptest! {
    /// Duplicated and arbitrarily reordered tells yield bit-identical
    /// traces for every delivery schedule.
    #[test]
    fn duplicated_and_reordered_tells_are_trace_neutral(schedule_seed in 0u64..1_000_000) {
        let expected = encode_trace(&reference(SEED, Budget::Evaluations(6)));
        let root = scratch_root(&format!("scramble-{schedule_seed}"));
        let mut server = StudyServer::new(ServerConfig { root: root.clone(), ..ServerConfig::default() })
            .expect("server");
        server
            .create_study("scramble", setup(SEED, Budget::Evaluations(6), 1))
            .expect("create");
        drive_scrambled(&mut server, "scramble", schedule_seed);
        let actual = encode_trace(&server.trace("scramble").expect("trace"));
        prop_assert_eq!(expected, actual);
        std::fs::remove_dir_all(&root).ok();
    }
}

// ---------------------------------------------------------------------------
// Lease expiry
// ---------------------------------------------------------------------------

#[test]
fn tell_on_expired_lease_is_rejected_and_state_untouched() {
    let root = scratch_root("expiry");
    let mut server = StudyServer::new(ServerConfig {
        root,
        lease_policy: RetryPolicy {
            max_retries: 0,
            backoff_base_s: 10.0,
            backoff_factor: 2.0,
            backoff_jitter_frac: 0.0,
        },
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("exp", setup(SEED, Budget::Evaluations(4), 1))
        .expect("create");

    let batch = server.ask("exp", 1, 0.0).expect("ask");
    assert_eq!(batch.len(), 1);
    let candidate = &batch[0];
    assert!(
        (candidate.deadline_s - 10.0).abs() < 1e-9,
        "TTL is the policy base"
    );

    // The worker dies; the deadline passes; the lease is reclaimed.
    assert_eq!(server.tick(100.0), 1);
    let before_bytes = encode_trace(&server.trace("exp").expect("trace"));
    let before_committed = server.committed("exp").expect("committed");

    let err = server
        .tell("exp", candidate.lease_id, &eval(candidate))
        .expect_err("late tell must be rejected");
    match err {
        ServerError::Core(Error::LeaseExpired { lease_id, query }) => {
            assert_eq!(lease_id, candidate.lease_id);
            assert_eq!(query, candidate.query);
        }
        other => panic!("expected LeaseExpired, got {other}"),
    }
    assert_eq!(
        before_bytes,
        encode_trace(&server.trace("exp").expect("trace")),
        "a rejected tell must not perturb a single byte"
    );
    assert_eq!(
        before_committed,
        server.committed("exp").expect("committed")
    );
    assert_eq!(server.outstanding_total(), 0);

    // The candidate is re-issued under a fresh lease with the attempt
    // bumped and a grown deadline; serving on yields the reference bytes.
    let reissued = server.ask("exp", 1, 100.0).expect("ask");
    assert_eq!(reissued.len(), 1);
    assert_eq!(reissued[0].query, candidate.query);
    assert_eq!(reissued[0].eval_seed, candidate.eval_seed);
    assert_eq!(reissued[0].attempt, 2);
    assert!(
        reissued[0].deadline_s > 100.0 + 10.0,
        "backoff grows the TTL"
    );
    server
        .tell("exp", reissued[0].lease_id, &eval(&reissued[0]))
        .expect("tell");
    drive(&mut server, "exp", 2);
    assert_eq!(
        encode_trace(&reference(SEED, Budget::Evaluations(4))),
        encode_trace(&server.trace("exp").expect("trace"))
    );
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

#[test]
fn per_study_bound_refuses_with_typed_overload() {
    let root = scratch_root("overload");
    let mut server = StudyServer::new(ServerConfig {
        root,
        max_outstanding_per_study: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("busy", setup(SEED, Budget::Evaluations(6), 1))
        .expect("create");

    let batch = server.ask("busy", 5, 0.0).expect("ask");
    assert_eq!(batch.len(), 2, "the ask is capped at the per-study bound");
    match server.ask("busy", 1, 0.0) {
        Err(ServerError::Overloaded {
            study,
            outstanding,
            limit,
        }) => {
            assert_eq!(study, "busy");
            assert_eq!(outstanding, 2);
            assert_eq!(limit, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Telling a result back drains the queue and lifts the refusal.
    server
        .tell("busy", batch[0].lease_id, &eval(&batch[0]))
        .expect("tell");
    assert!(server.ask("busy", 1, 0.0).is_ok());
}

#[test]
fn global_bound_sheds_lowest_priority_first() {
    let root = scratch_root("shed");
    let mut server = StudyServer::new(ServerConfig {
        root,
        max_outstanding_per_study: 8,
        max_outstanding_total: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("hi", setup(SEED, Budget::Evaluations(6), 5))
        .expect("create hi");
    server
        .create_study("lo", setup(SEED ^ 1, Budget::Evaluations(6), 1))
        .expect("create lo");

    let lo_batch = server.ask("lo", 2, 0.0).expect("lo ask");
    assert_eq!(lo_batch.len(), 2);
    assert_eq!(server.outstanding_total(), 2);

    // At the global bound the high-priority ask sheds `lo`'s leases.
    let hi_batch = server.ask("hi", 1, 0.0).expect("hi ask");
    assert_eq!(hi_batch.len(), 1);
    assert_eq!(server.committed("lo").expect("committed"), 0);

    // `lo`'s old leases are dead; its candidates re-issue later.
    match server.tell("lo", lo_batch[0].lease_id, &eval(&lo_batch[0])) {
        Err(ServerError::Core(Error::LeaseExpired { .. })) => {}
        other => panic!("expected LeaseExpired on shed lease, got {other:?}"),
    }

    // While hi's candidate is out on a lease, a refill ask plans nothing
    // new (block planning preserves worker-count invariance) — the batch
    // is empty, not an error.
    assert!(server.ask("hi", 4, 0.0).expect("hi refill").is_empty());

    // Fill the bound with high-priority work: the low-priority study has
    // nothing it may shed, so its ask is refused, typed.
    for c in hi_batch {
        server.tell("hi", c.lease_id, &eval(&c)).expect("tell hi");
    }
    let hi_pair = server.ask("hi", 2, 0.0).expect("hi pair");
    assert_eq!(hi_pair.len(), 2);
    assert_eq!(server.outstanding_total(), 2);
    match server.ask("lo", 1, 0.0) {
        Err(ServerError::Overloaded { study, .. }) => assert_eq!(study, "lo"),
        other => panic!("expected Overloaded for lo, got {other:?}"),
    }

    // Both studies still finish exactly once pressure drains.
    for c in hi_pair {
        server.tell("hi", c.lease_id, &eval(&c)).expect("tell hi");
    }
    drive(&mut server, "hi", 2);
    drive(&mut server, "lo", 2);
    assert_eq!(
        encode_trace(&reference(SEED, Budget::Evaluations(6))),
        encode_trace(&server.trace("hi").expect("trace hi"))
    );
    assert_eq!(
        encode_trace(&reference(SEED ^ 1, Budget::Evaluations(6))),
        encode_trace(&server.trace("lo").expect("trace lo"))
    );
}

// ---------------------------------------------------------------------------
// Naming and admission
// ---------------------------------------------------------------------------

#[test]
fn admission_errors_are_typed() {
    let root = scratch_root("admission");
    let mut server = StudyServer::new(ServerConfig {
        root,
        max_studies: 2,
        ..ServerConfig::default()
    })
    .expect("server");

    match server.create_study("../evil", setup(SEED, Budget::Evaluations(2), 1)) {
        Err(ServerError::InvalidStudyName(name)) => assert_eq!(name, "../evil"),
        other => panic!("expected InvalidStudyName, got {other:?}"),
    }
    match server.ask("ghost", 1, 0.0) {
        Err(ServerError::StudyNotFound(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected StudyNotFound, got {other:?}"),
    }
    server
        .create_study("a", setup(SEED, Budget::Evaluations(2), 1))
        .expect("create a");
    match server.create_study("a", setup(SEED, Budget::Evaluations(2), 1)) {
        Err(ServerError::StudyExists(name)) => assert_eq!(name, "a"),
        other => panic!("expected StudyExists, got {other:?}"),
    }
    server
        .create_study("b", setup(SEED, Budget::Evaluations(2), 1))
        .expect("create b");
    match server.create_study("c", setup(SEED, Budget::Evaluations(2), 1)) {
        Err(ServerError::Overloaded { limit, .. }) => assert_eq!(limit, 2),
        other => panic!("expected Overloaded at max_studies, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Durability: kill -9 and resume
// ---------------------------------------------------------------------------

#[test]
fn kill_and_resume_is_byte_exact_even_with_torn_tail_and_stale_tmp() {
    let expected = encode_trace(&reference(SEED, Budget::Evaluations(6)));
    let root = scratch_root("kill9");
    let config = ServerConfig {
        root: root.clone(),
        // A cadence longer than the partial run below, so the crash lands
        // in the window where the journal still carries live records.
        snapshot_every_commits: 4,
        ..ServerConfig::default()
    };
    let mut server = StudyServer::new(config.clone()).expect("server");
    server
        .create_study("crashy", setup(SEED, Budget::Evaluations(6), 1))
        .expect("create");

    // Serve part of the run, then "kill -9" the process.
    let mut now = 0.0;
    for _ in 0..3 {
        now += 60.0;
        let batch = server.ask("crashy", 1, now).expect("ask");
        for c in batch {
            server.tell("crashy", c.lease_id, &eval(&c)).expect("tell");
        }
    }
    let committed_before = server.committed("crashy").expect("committed");
    assert!(committed_before > 0, "the partial run committed something");
    drop(server);

    // The crash tore the journal mid-append and stranded a stale snapshot
    // temp file.
    let (journal_path, snapshot_path) = hyperpower_server::journal::study_paths(&root, "crashy");
    let bytes = std::fs::read(&journal_path).expect("journal bytes");
    if bytes.len() > 8 {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&journal_path)
            .expect("open journal");
        file.set_len(bytes.len() as u64 - 7).expect("tear journal");
    }
    std::fs::write(
        snapshot_path.with_extension("tmp"),
        "{ \"schema\": \"hyperpower-checkpoint-v1\", torn",
    )
    .expect("stale tmp");

    // Recover and finish; the bytes must equal the uninterrupted run.
    let mut server = StudyServer::new(config).expect("server 2");
    let recovered = server
        .open_study("crashy", setup(SEED, Budget::Evaluations(6), 1))
        .expect("open");
    assert!(
        recovered <= committed_before,
        "a tear can only lose the tail"
    );
    drive(&mut server, "crashy", 2);
    assert_eq!(
        expected,
        encode_trace(&server.trace("crashy").expect("trace"))
    );
    assert!(
        !snapshot_path.with_extension("tmp").exists(),
        "recovery sweeps the stale snapshot temp"
    );
}

#[test]
fn open_study_refuses_a_mismatched_spec() {
    let root = scratch_root("mismatch");
    let config = ServerConfig {
        root,
        ..ServerConfig::default()
    };
    let mut server = StudyServer::new(config.clone()).expect("server");
    server
        .create_study("pinned", setup(SEED, Budget::Evaluations(4), 1))
        .expect("create");
    let batch = server.ask("pinned", 1, 0.0).expect("ask");
    for c in batch {
        server.tell("pinned", c.lease_id, &eval(&c)).expect("tell");
    }
    drop(server);

    let mut server = StudyServer::new(config).expect("server 2");
    match server.open_study("pinned", setup(SEED ^ 99, Budget::Evaluations(4), 1)) {
        Err(ServerError::Core(Error::ResumeMismatch(msg))) => {
            assert!(msg.contains("different run"), "{msg}");
        }
        other => panic!("expected ResumeMismatch, got {other:?}"),
    }
    // create_study must also refuse: durable state exists on disk.
    match server.create_study("pinned", setup(SEED, Budget::Evaluations(4), 1)) {
        Err(ServerError::StudyExists(name)) => assert_eq!(name, "pinned"),
        other => panic!("expected StudyExists over durable state, got {other:?}"),
    }
}

#[test]
fn snapshot_rotation_keeps_the_journal_to_its_header() {
    let root = scratch_root("rotate");
    let mut server = StudyServer::new(ServerConfig {
        root: root.clone(),
        snapshot_every_commits: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("rot", setup(SEED, Budget::Evaluations(5), 1))
        .expect("create");
    drive(&mut server, "rot", 2);
    let committed = server.committed("rot").expect("committed");
    drop(server);

    let (journal_path, snapshot_path) = hyperpower_server::journal::study_paths(&root, "rot");
    let journal = std::fs::read_to_string(&journal_path).expect("journal");
    assert_eq!(
        journal.lines().count(),
        1,
        "a finished study's journal rotates down to its header line"
    );
    // v2 framing: `H <crc32 hex8> {payload}`.
    assert!(journal.starts_with("H "), "{journal}");
    let rest = journal.trim_start_matches("H ");
    let (crc, payload) = rest.split_once(' ').expect("framed header");
    assert_eq!(
        hyperpower::integrity::parse_crc32_hex(crc),
        Some(hyperpower::integrity::crc32(payload.trim_end().as_bytes())),
        "header frame checksum verifies"
    );
    assert!(payload.starts_with('{'), "{journal}");
    let snapshot =
        hyperpower::checkpoint::RunCheckpoint::load(&snapshot_path).expect("snapshot parses");
    assert_eq!(snapshot.samples.len(), committed);
}

// ---------------------------------------------------------------------------
// Supervision: quarantine gating and the shed tie-break
// ---------------------------------------------------------------------------

/// Pins the documented shed order: victims are chosen by `(priority,
/// name)` — lowest priority first, lexicographically smallest name
/// breaking ties — so equal-priority studies shed deterministically.
#[test]
fn shed_victim_tie_break_is_priority_then_name() {
    let root = scratch_root("tiebreak");
    let mut server = StudyServer::new(ServerConfig {
        root,
        max_outstanding_per_study: 8,
        max_outstanding_total: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("bb", setup(SEED ^ 2, Budget::Evaluations(6), 1))
        .expect("create bb");
    server
        .create_study("aa", setup(SEED ^ 1, Budget::Evaluations(6), 1))
        .expect("create aa");
    server
        .create_study("hi", setup(SEED, Budget::Evaluations(6), 5))
        .expect("create hi");

    let bb = server.ask("bb", 1, 0.0).expect("bb ask");
    let aa = server.ask("aa", 1, 0.0).expect("aa ask");
    assert_eq!(server.outstanding_total(), 2);

    // At the global bound, "aa" and "bb" tie on priority: the name
    // breaks the tie, so "aa" is shed and "bb" keeps its lease.
    let hi = server.ask("hi", 1, 0.0).expect("hi ask");
    assert_eq!(hi.len(), 1);
    match server.tell("aa", aa[0].lease_id, &eval(&aa[0])) {
        Err(ServerError::Core(Error::LeaseExpired { .. })) => {}
        other => panic!("aa must have been shed, got {other:?}"),
    }
    match server.tell("bb", bb[0].lease_id, &eval(&bb[0])) {
        Ok(TellOutcome::Accepted { .. }) => {}
        other => panic!("bb must have survived the tie-break, got {other:?}"),
    }
}

#[test]
fn a_quarantined_worker_never_receives_a_fresh_lease() {
    let root = scratch_root("quarantine");
    let mut server = StudyServer::new(ServerConfig {
        root,
        supervision_seed: 7,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("q", setup(SEED, Budget::Evaluations(6), 1))
        .expect("create");

    // A healthy worker gets work.
    let batch = server.ask_worker("q", "w0", 1, 60.0).expect("w0 ask");
    assert_eq!(batch.len(), 1);
    server
        .tell("q", batch[0].lease_id, &eval(&batch[0]))
        .expect("tell");

    // Fail w1 until supervision quarantines it (probation threshold plus
    // a bounded seeded slack).
    server.worker_heartbeat("w1", 60.0);
    let mut state = HealthState::Healthy;
    for _ in 0..16 {
        state = server.note_worker_failure("w1", 60.0);
        if state == HealthState::Quarantined {
            break;
        }
    }
    assert_eq!(state, HealthState::Quarantined);

    // Quarantined: an empty batch, not an error — and no fresh lease.
    let refused = server.ask_worker("q", "w1", 1, 120.0).expect("w1 ask");
    assert!(refused.is_empty(), "a quarantined worker got a lease");
    assert_eq!(server.worker_state("w1"), Some(HealthState::Quarantined));

    // A healthy sibling still receives the candidate.
    let sibling = server.ask_worker("q", "w2", 1, 120.0).expect("w2 ask");
    assert_eq!(sibling.len(), 1);
    server
        .tell("q", sibling[0].lease_id, &eval(&sibling[0]))
        .expect("tell sibling");

    // Past its seeded parole instant a sweep releases the worker.
    let parole = server.workers().parole_until("w1").expect("parole set");
    server.tick(parole + 1.0);
    assert_eq!(server.worker_state("w1"), Some(HealthState::Healthy));
    let back = server
        .ask_worker("q", "w1", 1, parole + 2.0)
        .expect("w1 parole ask");
    assert_eq!(back.len(), 1);
    server
        .tell("q", back[0].lease_id, &eval(&back[0]))
        .expect("tell paroled");

    // Supervision is execution-only: the served bytes are the reference.
    drive(&mut server, "q", 2);
    assert_eq!(
        encode_trace(&reference(SEED, Budget::Evaluations(6))),
        encode_trace(&server.trace("q").expect("trace"))
    );
}

// ---------------------------------------------------------------------------
// Hedged re-dispatch
// ---------------------------------------------------------------------------

/// Hedge-friendly config: leases effectively never expire (isolating the
/// hedge race from reclaim) and deadlines are jitter-free.
fn hedge_config(root: PathBuf, hedge_after_s: f64) -> ServerConfig {
    ServerConfig {
        root,
        lease_policy: RetryPolicy {
            max_retries: 0,
            backoff_base_s: 1.0e6,
            backoff_factor: 2.0,
            backoff_jitter_frac: 0.0,
        },
        hedge_after_s,
        ..ServerConfig::default()
    }
}

#[test]
fn hedged_duplicate_commits_once_and_is_trace_neutral() {
    let root = scratch_root("hedge-unit");
    let mut server = StudyServer::new(hedge_config(root, 100.0)).expect("server");
    server
        .create_study("h", setup(SEED, Budget::Evaluations(6), 1))
        .expect("create");

    let batch = server.ask("h", 1, 60.0).expect("ask");
    assert_eq!(batch.len(), 1);
    let original = &batch[0];

    // Before the hedge deadline (issue + 100 s) the tick hedges nothing.
    let report = server.tick_hedge(110.0);
    assert!(report.hedged.is_empty(), "hedged before the deadline");

    // Past it, the candidate is re-issued: same query, same eval_seed
    // (fixed at planning time — the trace-neutrality mechanism), a fresh
    // lease.
    let report = server.tick_hedge(200.0);
    assert_eq!(report.hedged.len(), 1);
    let (study, hedged) = &report.hedged[0];
    assert_eq!(study, "h");
    assert_eq!(hedged.query, original.query);
    assert_eq!(hedged.eval_seed, original.eval_seed);
    assert_ne!(hedged.lease_id, original.lease_id);

    // An item is hedged at most once while both leases are out.
    assert!(server.tick_hedge(300.0).hedged.is_empty());

    // First fulfilment commits; the loser resolves as a duplicate.
    match server.tell("h", hedged.lease_id, &eval(hedged)).expect("tell") {
        TellOutcome::Accepted { .. } => {}
        other => panic!("hedge winner must commit, got {other:?}"),
    }
    match server
        .tell("h", original.lease_id, &eval(original))
        .expect("tell loser")
    {
        TellOutcome::Duplicate => {}
        other => panic!("hedge loser must be a duplicate, got {other:?}"),
    }
    assert_eq!(server.hedge_stats("h").expect("stats"), (1, 1));

    drive(&mut server, "h", 2);
    assert_eq!(
        encode_trace(&reference(SEED, Budget::Evaluations(6))),
        encode_trace(&server.trace("h").expect("trace"))
    );
}

/// Serves a study under hedging while stalling a seeded subset of
/// deliveries long enough for `tick_hedge` to race a duplicate against
/// them; stalled originals are told late and must resolve as duplicates
/// (or commit first — either order is trace-neutral).
fn drive_hedged(server: &mut StudyServer, name: &str, width: usize, schedule_seed: u64) {
    let mut rng = StdRng::seed_from_u64(schedule_seed);
    let mut draw = move || rng.random_range(0.0..1.0);
    let mut now = 0.0;
    let mut stalled: Vec<(hyperpower::LeasedCandidate, u32)> = Vec::new();
    for round in 0..10_000u32 {
        now += 60.0;
        let report = server.tick_hedge(now);
        for (study, c) in report.hedged {
            server.tell(&study, c.lease_id, &eval(&c)).expect("hedged tell");
        }
        let mut due = Vec::new();
        stalled.retain(|(c, release)| {
            if *release <= round {
                due.push(c.clone());
                false
            } else {
                true
            }
        });
        for c in due {
            // Either the hedge already committed this candidate
            // (Duplicate), the run outlived it (Discarded), or the stall
            // released before the hedge fired (Accepted): all are legal.
            server.tell(name, c.lease_id, &eval(&c)).expect("late tell");
        }
        if server.is_finished(name).expect("is_finished") {
            if stalled.is_empty() {
                return;
            }
            continue;
        }
        let batch = match server.ask(name, width, now) {
            Ok(batch) => batch,
            Err(ServerError::Overloaded { .. }) => continue,
            Err(e) => panic!("ask: {e}"),
        };
        for c in batch {
            if draw() < 0.4 {
                let delay = 3 + (draw() * 4.0) as u32;
                stalled.push((c, round + delay));
            } else {
                server.tell(name, c.lease_id, &eval(&c)).expect("tell");
            }
        }
    }
    panic!("drive_hedged wedged: study {name} never finished");
}

proptest! {
    /// Any (hedge deadline, worker width, schedule seed) yields committed
    /// bytes identical to the unhedged embedded-loop reference, and every
    /// hedge the server issued was settled by a single commit.
    #[test]
    fn hedged_redispatch_is_trace_neutral(
        schedule_seed in 0u64..1_000_000,
        hedge_after in prop::sample::select(vec![90.0f64, 120.0, 240.0]),
        width in 1usize..4,
    ) {
        let expected = encode_trace(&reference(SEED, Budget::Evaluations(6)));
        let root = scratch_root(&format!("hedge-{schedule_seed}-{width}"));
        let mut server = StudyServer::new(hedge_config(root.clone(), hedge_after))
            .expect("server");
        server
            .create_study("hp", setup(SEED, Budget::Evaluations(6), 1))
            .expect("create");
        drive_hedged(&mut server, "hp", width, schedule_seed);
        let actual = encode_trace(&server.trace("hp").expect("trace"));
        prop_assert_eq!(expected, actual);
        let (issued, superseded) = server.hedge_stats("hp").expect("stats");
        prop_assert_eq!(issued, superseded, "every hedge race settles as one commit");
        std::fs::remove_dir_all(&root).ok();
    }
}

// ---------------------------------------------------------------------------
// Tenant backpressure: token bucket and circuit breaker
// ---------------------------------------------------------------------------

#[test]
fn sustained_overload_returns_only_typed_refusals() {
    let expected = encode_trace(&reference(SEED, Budget::Evaluations(6)));
    let root = scratch_root("soak");
    let mut server = StudyServer::new(ServerConfig {
        root,
        max_outstanding_per_study: 2,
        tenant_rate_per_s: 0.05,
        tenant_burst: 2.0,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("soak", setup(SEED, Budget::Evaluations(6), 1))
        .expect("create");

    // Hammer the tenant at 0.2 admissions/s against a 0.05/s refill:
    // most calls must be refused, every refusal must be typed, and the
    // study must still finish with the reference bytes.
    let mut now = 0.0;
    let mut refusals = 0usize;
    let mut pending: Vec<(u64, EvaluationResult)> = Vec::new();
    for _ in 0..4_000 {
        now += 5.0;
        // Advance the scheduler clock (tells are charged at its
        // high-water mark) and let overdue leases reclaim, as any real
        // serving loop would.
        server.tick(now);
        pending.retain(|(lease_id, result)| match server.tell("soak", *lease_id, result) {
            Ok(_) => false,
            Err(ServerError::Backpressure { retry_after_s, .. }) => {
                assert!(retry_after_s.is_finite() && retry_after_s > 0.0);
                refusals += 1;
                true
            }
            // A starved tell can outlive its lease; the candidate goes
            // back to the queue and a later ask re-issues it.
            Err(ServerError::Core(Error::LeaseExpired { .. })) => false,
            Err(e) => panic!("tell refused untypedly: {e}"),
        });
        if server.is_finished("soak").expect("is_finished") {
            if pending.is_empty() {
                break;
            }
            continue;
        }
        if !pending.is_empty() {
            // Don't let fresh asks burn the trickle of tokens the
            // stalled tells are waiting on.
            continue;
        }
        match server.ask("soak", 4, now) {
            Ok(batch) => {
                for c in batch {
                    pending.push((c.lease_id, eval(&c)));
                }
            }
            Err(ServerError::Backpressure { retry_after_s, .. }) => {
                assert!(retry_after_s.is_finite() && retry_after_s > 0.0);
                refusals += 1;
            }
            Err(ServerError::Overloaded { .. }) => refusals += 1,
            Err(e) => panic!("ask refused untypedly: {e}"),
        }
    }
    assert!(refusals > 0, "the soak never saw backpressure");
    assert!(server.is_finished("soak").expect("is_finished"));
    assert!(pending.is_empty(), "every result was eventually ingested");
    assert_eq!(
        expected,
        encode_trace(&server.trace("soak").expect("trace"))
    );
}

#[test]
fn breaker_opens_after_sustained_journal_failures() {
    let root = scratch_root("breaker");
    let mut server = StudyServer::new(ServerConfig {
        root: root.clone(),
        // Snapshot on every commit so tells hit the filesystem each time.
        snapshot_every_commits: 1,
        breaker_threshold: 3,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("br", setup(SEED, Budget::Evaluations(6), 1))
        .expect("create");
    let batch = server.ask("br", 1, 60.0).expect("ask");
    for c in batch {
        server.tell("br", c.lease_id, &eval(&c)).expect("tell");
    }

    // Yank the store out from under the server: every snapshot rotation
    // now fails, each failed tell extends the tenant's breaker streak,
    // and within the seeded threshold the circuit opens.
    std::fs::remove_dir_all(&root).expect("yank store");
    let mut saw_open = false;
    for i in 0..20u32 {
        let now = 120.0 + f64::from(i);
        match server.ask("br", 1, now) {
            Ok(batch) => {
                for c in batch {
                    match server.tell("br", c.lease_id, &eval(&c)) {
                        Err(ServerError::Core(_)) => {} // streak grows
                        Err(ServerError::CircuitOpen { .. }) => {}
                        Ok(_) => {}
                        Err(e) => panic!("unexpected tell error: {e}"),
                    }
                }
            }
            Err(ServerError::CircuitOpen { study, until_s }) => {
                assert_eq!(study, "br");
                assert!(until_s > now, "parole must be in the future");
                saw_open = true;
                break;
            }
            Err(ServerError::Core(_)) => {} // journal failure: streak grows
            Err(e) => panic!("unexpected ask error: {e}"),
        }
    }
    assert!(saw_open, "the breaker never opened");
    assert_eq!(server.tenant_state("br"), Some(HealthState::Quarantined));
}

// ---------------------------------------------------------------------------
// fsck: scan and salvage
// ---------------------------------------------------------------------------

#[test]
fn fsck_salvages_a_rotted_journal_back_to_replayable_bytes() {
    let expected = encode_trace(&reference(SEED, Budget::Evaluations(6)));
    let root = scratch_root("fsck-salvage");
    let config = ServerConfig {
        root: root.clone(),
        // No mid-run rotation: the journal keeps every record, so the
        // bit-flip below lands in live history.
        snapshot_every_commits: 100,
        ..ServerConfig::default()
    };
    let mut server = StudyServer::new(config.clone()).expect("server");
    server
        .create_study("rotted", setup(SEED, Budget::Evaluations(6), 1))
        .expect("create");
    let mut now = 0.0;
    for _ in 0..3 {
        now += 60.0;
        for c in server.ask("rotted", 1, now).expect("ask") {
            server.tell("rotted", c.lease_id, &eval(&c)).expect("tell");
        }
    }
    drop(server);

    // Bit-rot one byte of the first record after the header, and strand
    // a half-written temp file next to it.
    let (journal_path, _) = hyperpower_server::journal::study_paths(&root, "rotted");
    let mut bytes = std::fs::read(&journal_path).expect("journal bytes");
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("header line");
    bytes[header_end + 20] ^= 0x01;
    std::fs::write(&journal_path, &bytes).expect("rot journal");
    std::fs::write(journal_path.with_extension("journal-tmp"), "half-written").expect("tmp");

    // A plain scan reports the damage without touching anything.
    let scan = fsck_store(&root, false).expect("scan");
    assert!(!scan.clean(), "the rot must be detected:\n{scan}");
    assert!(scan.recoverable(), "a torn suffix is salvageable:\n{scan}");
    assert_eq!(std::fs::read(&journal_path).expect("journal"), bytes);

    // Salvage truncates to the last valid frame and sweeps the temp.
    let salvaged = fsck_store(&root, true).expect("salvage");
    assert!(salvaged.salvaged, "salvage must report repairs:\n{salvaged}");
    assert!(salvaged.recoverable());
    let rescan = fsck_store(&root, false).expect("rescan");
    assert!(rescan.clean(), "the salvaged store must scan clean:\n{rescan}");

    // Reopen (replaying the salvaged prefix) and finish: byte-identical.
    let mut server = StudyServer::new(config).expect("server 2");
    server
        .open_study("rotted", setup(SEED, Budget::Evaluations(6), 1))
        .expect("open salvaged");
    drive(&mut server, "rotted", 2);
    assert_eq!(
        expected,
        encode_trace(&server.trace("rotted").expect("trace"))
    );
}
