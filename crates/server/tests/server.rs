//! Serving-layer contract tests: lease lifecycle, idempotent tells,
//! backpressure, durability and byte-exact recovery.
//!
//! The chaos harness (`tests/chaos_matrix.rs`) attacks everything at
//! once; this suite isolates each promise:
//!
//! * serving a study through ask–tell — at any width, with duplicated or
//!   arbitrarily reordered deliveries — commits the exact bytes of the
//!   embedded executor loop (property-tested over delivery schedules);
//! * a tell on an expired lease is rejected with the typed
//!   [`hyperpower::Error::LeaseExpired`] and changes nothing;
//! * per-study and server-wide bounds refuse with typed
//!   [`ServerError::Overloaded`], shedding the lowest-priority study
//!   first at the global bound;
//! * `kill -9` (dropping the server, tearing the journal tail, stranding
//!   a stale snapshot temp) resumes to byte-identical state.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::PathBuf;

use hyperpower::driver::RunSetup;
use hyperpower::golden::encode_trace;
use hyperpower::{
    run_optimization_with, Budget, Budgets, DriftConfig, EarlyTermination, Error, EvaluationResult,
    ExecutorOptions, Method, Mode, Objective, RetryPolicy, SearchSpace, StudySpec, TellOutcome,
    Trace,
};
use hyperpower_gpu_sim::{DeviceProfile, FaultProfile, Gpu, TrainingCostModel};
use hyperpower_server::{ServerConfig, ServerError, StudyServer, StudySetup, SyntheticObjective};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SEED: u64 = 0x5EED_05E6;

fn scratch_root(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/server-scratch")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spec(seed: u64, budget: Budget, profile: FaultProfile) -> StudySpec {
    StudySpec {
        method: Method::Rand,
        mode: Mode::HyperPower,
        budget,
        seed,
        budgets: Budgets::default(),
        cost: TrainingCostModel::default(),
        early_termination: Some(EarlyTermination::default()),
        fault_profile: profile,
        retry: RetryPolicy::default(),
        drift: DriftConfig::default(),
    }
}

fn setup(seed: u64, budget: Budget, priority: u32) -> StudySetup {
    StudySetup {
        space: SearchSpace::mnist(),
        gpu: Gpu::new(DeviceProfile::gtx_1070(), seed),
        oracle: None,
        spec: spec(seed, budget, FaultProfile::none()),
        priority,
    }
}

/// The uninterrupted embedded-loop reference for `setup(seed, budget, _)`.
fn reference(seed: u64, budget: Budget) -> Trace {
    let space = SearchSpace::mnist();
    let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), seed);
    let objective = SyntheticObjective;
    run_optimization_with(
        RunSetup {
            space: &space,
            objective: &objective,
            gpu: &mut gpu,
            budgets: Budgets::default(),
            oracle: None,
            early_termination: Some(EarlyTermination::default()),
            cost: TrainingCostModel::default(),
            method: Method::Rand,
            mode: Mode::HyperPower,
            budget,
            seed,
            searcher_override: None,
        },
        &ExecutorOptions::default(),
    )
    .expect("reference run")
}

fn eval(c: &hyperpower::LeasedCandidate) -> EvaluationResult {
    SyntheticObjective
        .evaluate(&c.decoded, None, c.eval_seed)
        .expect("synthetic objective")
}

/// Serves the study to completion, telling every result back promptly.
fn drive(server: &mut StudyServer, name: &str, width: usize) {
    let mut now = 0.0;
    for _ in 0..10_000 {
        if server.is_finished(name).expect("is_finished") {
            return;
        }
        now += 60.0;
        let batch = server.ask(name, width, now).expect("ask");
        for c in batch {
            server.tell(name, c.lease_id, &eval(&c)).expect("tell");
        }
    }
    panic!("drive wedged: study {name} never finished");
}

// ---------------------------------------------------------------------------
// Byte-exactness of plain serving
// ---------------------------------------------------------------------------

#[test]
fn served_study_matches_embedded_loop_at_any_width() {
    let expected = encode_trace(&reference(SEED, Budget::Evaluations(6)));
    for width in [1usize, 3, 8] {
        let root = scratch_root(&format!("plain-w{width}"));
        let mut server = StudyServer::new(ServerConfig {
            root,
            ..ServerConfig::default()
        })
        .expect("server");
        server
            .create_study("plain", setup(SEED, Budget::Evaluations(6), 1))
            .expect("create");
        drive(&mut server, "plain", width);
        let actual = encode_trace(&server.trace("plain").expect("trace"));
        assert_eq!(expected, actual, "width {width} changed the trace");
    }
}

// ---------------------------------------------------------------------------
// Idempotent tells: duplication and reordering (property)
// ---------------------------------------------------------------------------

/// Serves a study while duplicating and shuffling every round's
/// deliveries according to `schedule_seed`; the committed bytes must not
/// care.
fn drive_scrambled(server: &mut StudyServer, name: &str, schedule_seed: u64) {
    let mut rng = StdRng::seed_from_u64(schedule_seed);
    let mut draw = move || rng.random_range(0.0..1.0);
    let mut now = 0.0;
    for _ in 0..10_000 {
        if server.is_finished(name).expect("is_finished") {
            return;
        }
        now += 60.0;
        let batch = server.ask(name, 4, now).expect("ask");
        // Build the delivery list: every result at least once, some twice.
        let mut deliveries: Vec<(u64, EvaluationResult)> = Vec::new();
        for c in &batch {
            let r = eval(c);
            deliveries.push((c.lease_id, r));
            if draw() < 0.5 {
                deliveries.push((c.lease_id, r));
            }
        }
        // Fisher–Yates on float draws (the vendored rand subset).
        for i in (1..deliveries.len()).rev() {
            let j = (draw() * (i + 1) as f64) as usize;
            deliveries.swap(i, j.min(i));
        }
        let mut accepted = 0usize;
        let mut duplicates = 0usize;
        for (lease_id, r) in &deliveries {
            match server.tell(name, *lease_id, r).expect("tell") {
                TellOutcome::Accepted { .. } => accepted += 1,
                TellOutcome::Duplicate => duplicates += 1,
                TellOutcome::Discarded => {}
            }
        }
        assert_eq!(accepted, batch.len(), "each lease ingested exactly once");
        assert_eq!(duplicates, deliveries.len() - batch.len());
    }
    panic!("drive_scrambled wedged: study {name} never finished");
}

proptest! {
    /// Duplicated and arbitrarily reordered tells yield bit-identical
    /// traces for every delivery schedule.
    #[test]
    fn duplicated_and_reordered_tells_are_trace_neutral(schedule_seed in 0u64..1_000_000) {
        let expected = encode_trace(&reference(SEED, Budget::Evaluations(6)));
        let root = scratch_root(&format!("scramble-{schedule_seed}"));
        let mut server = StudyServer::new(ServerConfig { root: root.clone(), ..ServerConfig::default() })
            .expect("server");
        server
            .create_study("scramble", setup(SEED, Budget::Evaluations(6), 1))
            .expect("create");
        drive_scrambled(&mut server, "scramble", schedule_seed);
        let actual = encode_trace(&server.trace("scramble").expect("trace"));
        prop_assert_eq!(expected, actual);
        std::fs::remove_dir_all(&root).ok();
    }
}

// ---------------------------------------------------------------------------
// Lease expiry
// ---------------------------------------------------------------------------

#[test]
fn tell_on_expired_lease_is_rejected_and_state_untouched() {
    let root = scratch_root("expiry");
    let mut server = StudyServer::new(ServerConfig {
        root,
        lease_policy: RetryPolicy {
            max_retries: 0,
            backoff_base_s: 10.0,
            backoff_factor: 2.0,
            backoff_jitter_frac: 0.0,
        },
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("exp", setup(SEED, Budget::Evaluations(4), 1))
        .expect("create");

    let batch = server.ask("exp", 1, 0.0).expect("ask");
    assert_eq!(batch.len(), 1);
    let candidate = &batch[0];
    assert!(
        (candidate.deadline_s - 10.0).abs() < 1e-9,
        "TTL is the policy base"
    );

    // The worker dies; the deadline passes; the lease is reclaimed.
    assert_eq!(server.tick(100.0), 1);
    let before_bytes = encode_trace(&server.trace("exp").expect("trace"));
    let before_committed = server.committed("exp").expect("committed");

    let err = server
        .tell("exp", candidate.lease_id, &eval(candidate))
        .expect_err("late tell must be rejected");
    match err {
        ServerError::Core(Error::LeaseExpired { lease_id, query }) => {
            assert_eq!(lease_id, candidate.lease_id);
            assert_eq!(query, candidate.query);
        }
        other => panic!("expected LeaseExpired, got {other}"),
    }
    assert_eq!(
        before_bytes,
        encode_trace(&server.trace("exp").expect("trace")),
        "a rejected tell must not perturb a single byte"
    );
    assert_eq!(
        before_committed,
        server.committed("exp").expect("committed")
    );
    assert_eq!(server.outstanding_total(), 0);

    // The candidate is re-issued under a fresh lease with the attempt
    // bumped and a grown deadline; serving on yields the reference bytes.
    let reissued = server.ask("exp", 1, 100.0).expect("ask");
    assert_eq!(reissued.len(), 1);
    assert_eq!(reissued[0].query, candidate.query);
    assert_eq!(reissued[0].eval_seed, candidate.eval_seed);
    assert_eq!(reissued[0].attempt, 2);
    assert!(
        reissued[0].deadline_s > 100.0 + 10.0,
        "backoff grows the TTL"
    );
    server
        .tell("exp", reissued[0].lease_id, &eval(&reissued[0]))
        .expect("tell");
    drive(&mut server, "exp", 2);
    assert_eq!(
        encode_trace(&reference(SEED, Budget::Evaluations(4))),
        encode_trace(&server.trace("exp").expect("trace"))
    );
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

#[test]
fn per_study_bound_refuses_with_typed_overload() {
    let root = scratch_root("overload");
    let mut server = StudyServer::new(ServerConfig {
        root,
        max_outstanding_per_study: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("busy", setup(SEED, Budget::Evaluations(6), 1))
        .expect("create");

    let batch = server.ask("busy", 5, 0.0).expect("ask");
    assert_eq!(batch.len(), 2, "the ask is capped at the per-study bound");
    match server.ask("busy", 1, 0.0) {
        Err(ServerError::Overloaded {
            study,
            outstanding,
            limit,
        }) => {
            assert_eq!(study, "busy");
            assert_eq!(outstanding, 2);
            assert_eq!(limit, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Telling a result back drains the queue and lifts the refusal.
    server
        .tell("busy", batch[0].lease_id, &eval(&batch[0]))
        .expect("tell");
    assert!(server.ask("busy", 1, 0.0).is_ok());
}

#[test]
fn global_bound_sheds_lowest_priority_first() {
    let root = scratch_root("shed");
    let mut server = StudyServer::new(ServerConfig {
        root,
        max_outstanding_per_study: 8,
        max_outstanding_total: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("hi", setup(SEED, Budget::Evaluations(6), 5))
        .expect("create hi");
    server
        .create_study("lo", setup(SEED ^ 1, Budget::Evaluations(6), 1))
        .expect("create lo");

    let lo_batch = server.ask("lo", 2, 0.0).expect("lo ask");
    assert_eq!(lo_batch.len(), 2);
    assert_eq!(server.outstanding_total(), 2);

    // At the global bound the high-priority ask sheds `lo`'s leases.
    let hi_batch = server.ask("hi", 1, 0.0).expect("hi ask");
    assert_eq!(hi_batch.len(), 1);
    assert_eq!(server.committed("lo").expect("committed"), 0);

    // `lo`'s old leases are dead; its candidates re-issue later.
    match server.tell("lo", lo_batch[0].lease_id, &eval(&lo_batch[0])) {
        Err(ServerError::Core(Error::LeaseExpired { .. })) => {}
        other => panic!("expected LeaseExpired on shed lease, got {other:?}"),
    }

    // While hi's candidate is out on a lease, a refill ask plans nothing
    // new (block planning preserves worker-count invariance) — the batch
    // is empty, not an error.
    assert!(server.ask("hi", 4, 0.0).expect("hi refill").is_empty());

    // Fill the bound with high-priority work: the low-priority study has
    // nothing it may shed, so its ask is refused, typed.
    for c in hi_batch {
        server.tell("hi", c.lease_id, &eval(&c)).expect("tell hi");
    }
    let hi_pair = server.ask("hi", 2, 0.0).expect("hi pair");
    assert_eq!(hi_pair.len(), 2);
    assert_eq!(server.outstanding_total(), 2);
    match server.ask("lo", 1, 0.0) {
        Err(ServerError::Overloaded { study, .. }) => assert_eq!(study, "lo"),
        other => panic!("expected Overloaded for lo, got {other:?}"),
    }

    // Both studies still finish exactly once pressure drains.
    for c in hi_pair {
        server.tell("hi", c.lease_id, &eval(&c)).expect("tell hi");
    }
    drive(&mut server, "hi", 2);
    drive(&mut server, "lo", 2);
    assert_eq!(
        encode_trace(&reference(SEED, Budget::Evaluations(6))),
        encode_trace(&server.trace("hi").expect("trace hi"))
    );
    assert_eq!(
        encode_trace(&reference(SEED ^ 1, Budget::Evaluations(6))),
        encode_trace(&server.trace("lo").expect("trace lo"))
    );
}

// ---------------------------------------------------------------------------
// Naming and admission
// ---------------------------------------------------------------------------

#[test]
fn admission_errors_are_typed() {
    let root = scratch_root("admission");
    let mut server = StudyServer::new(ServerConfig {
        root,
        max_studies: 2,
        ..ServerConfig::default()
    })
    .expect("server");

    match server.create_study("../evil", setup(SEED, Budget::Evaluations(2), 1)) {
        Err(ServerError::InvalidStudyName(name)) => assert_eq!(name, "../evil"),
        other => panic!("expected InvalidStudyName, got {other:?}"),
    }
    match server.ask("ghost", 1, 0.0) {
        Err(ServerError::StudyNotFound(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected StudyNotFound, got {other:?}"),
    }
    server
        .create_study("a", setup(SEED, Budget::Evaluations(2), 1))
        .expect("create a");
    match server.create_study("a", setup(SEED, Budget::Evaluations(2), 1)) {
        Err(ServerError::StudyExists(name)) => assert_eq!(name, "a"),
        other => panic!("expected StudyExists, got {other:?}"),
    }
    server
        .create_study("b", setup(SEED, Budget::Evaluations(2), 1))
        .expect("create b");
    match server.create_study("c", setup(SEED, Budget::Evaluations(2), 1)) {
        Err(ServerError::Overloaded { limit, .. }) => assert_eq!(limit, 2),
        other => panic!("expected Overloaded at max_studies, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Durability: kill -9 and resume
// ---------------------------------------------------------------------------

#[test]
fn kill_and_resume_is_byte_exact_even_with_torn_tail_and_stale_tmp() {
    let expected = encode_trace(&reference(SEED, Budget::Evaluations(6)));
    let root = scratch_root("kill9");
    let config = ServerConfig {
        root: root.clone(),
        // A cadence longer than the partial run below, so the crash lands
        // in the window where the journal still carries live records.
        snapshot_every_commits: 4,
        ..ServerConfig::default()
    };
    let mut server = StudyServer::new(config.clone()).expect("server");
    server
        .create_study("crashy", setup(SEED, Budget::Evaluations(6), 1))
        .expect("create");

    // Serve part of the run, then "kill -9" the process.
    let mut now = 0.0;
    for _ in 0..3 {
        now += 60.0;
        let batch = server.ask("crashy", 1, now).expect("ask");
        for c in batch {
            server.tell("crashy", c.lease_id, &eval(&c)).expect("tell");
        }
    }
    let committed_before = server.committed("crashy").expect("committed");
    assert!(committed_before > 0, "the partial run committed something");
    drop(server);

    // The crash tore the journal mid-append and stranded a stale snapshot
    // temp file.
    let (journal_path, snapshot_path) = hyperpower_server::journal::study_paths(&root, "crashy");
    let bytes = std::fs::read(&journal_path).expect("journal bytes");
    if bytes.len() > 8 {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&journal_path)
            .expect("open journal");
        file.set_len(bytes.len() as u64 - 7).expect("tear journal");
    }
    std::fs::write(
        snapshot_path.with_extension("tmp"),
        "{ \"schema\": \"hyperpower-checkpoint-v1\", torn",
    )
    .expect("stale tmp");

    // Recover and finish; the bytes must equal the uninterrupted run.
    let mut server = StudyServer::new(config).expect("server 2");
    let recovered = server
        .open_study("crashy", setup(SEED, Budget::Evaluations(6), 1))
        .expect("open");
    assert!(
        recovered <= committed_before,
        "a tear can only lose the tail"
    );
    drive(&mut server, "crashy", 2);
    assert_eq!(
        expected,
        encode_trace(&server.trace("crashy").expect("trace"))
    );
    assert!(
        !snapshot_path.with_extension("tmp").exists(),
        "recovery sweeps the stale snapshot temp"
    );
}

#[test]
fn open_study_refuses_a_mismatched_spec() {
    let root = scratch_root("mismatch");
    let config = ServerConfig {
        root,
        ..ServerConfig::default()
    };
    let mut server = StudyServer::new(config.clone()).expect("server");
    server
        .create_study("pinned", setup(SEED, Budget::Evaluations(4), 1))
        .expect("create");
    let batch = server.ask("pinned", 1, 0.0).expect("ask");
    for c in batch {
        server.tell("pinned", c.lease_id, &eval(&c)).expect("tell");
    }
    drop(server);

    let mut server = StudyServer::new(config).expect("server 2");
    match server.open_study("pinned", setup(SEED ^ 99, Budget::Evaluations(4), 1)) {
        Err(ServerError::Core(Error::ResumeMismatch(msg))) => {
            assert!(msg.contains("different run"), "{msg}");
        }
        other => panic!("expected ResumeMismatch, got {other:?}"),
    }
    // create_study must also refuse: durable state exists on disk.
    match server.create_study("pinned", setup(SEED, Budget::Evaluations(4), 1)) {
        Err(ServerError::StudyExists(name)) => assert_eq!(name, "pinned"),
        other => panic!("expected StudyExists over durable state, got {other:?}"),
    }
}

#[test]
fn snapshot_rotation_keeps_the_journal_to_its_header() {
    let root = scratch_root("rotate");
    let mut server = StudyServer::new(ServerConfig {
        root: root.clone(),
        snapshot_every_commits: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    server
        .create_study("rot", setup(SEED, Budget::Evaluations(5), 1))
        .expect("create");
    drive(&mut server, "rot", 2);
    let committed = server.committed("rot").expect("committed");
    drop(server);

    let (journal_path, snapshot_path) = hyperpower_server::journal::study_paths(&root, "rot");
    let journal = std::fs::read_to_string(&journal_path).expect("journal");
    assert_eq!(
        journal.lines().count(),
        1,
        "a finished study's journal rotates down to its header line"
    );
    assert!(journal.starts_with("H {"), "{journal}");
    let snapshot =
        hyperpower::checkpoint::RunCheckpoint::load(&snapshot_path).expect("snapshot parses");
    assert_eq!(snapshot.samples.len(), committed);
}
