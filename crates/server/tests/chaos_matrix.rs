//! Chaos matrix: runs the deterministic chaos harness across an
//! env-selected {seed} × {workers} × {profile} cell and fails loudly —
//! with per-study trace-diff artifacts under `target/chaos-diff/` — if
//! any study's post-chaos trace drifts from its uninterrupted reference
//! by a single byte. After every cell, `fsck` scans the surviving store
//! and must find it clean.
//!
//! CI fans this out as a job matrix:
//!
//! ```sh
//! HYPERPOWER_CHAOS_SEED=3 HYPERPOWER_WORKERS=4 \
//! HYPERPOWER_CHAOS_PROFILE=bit-rot \
//!     cargo test -q -p hyperpower-server --test chaos_matrix
//! ```
//!
//! Locally (no env vars) it sweeps a small default grid over all three
//! profiles so `cargo test` alone still exercises kills, torn journals,
//! duplicated and delayed tells, crash/recovery cycles, bit-rot salvage
//! and hedged re-dispatch.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::PathBuf;

use hyperpower_server::{
    fsck_store, run_chaos_with, write_mismatch_artifacts, ChaosProfile,
};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().map(|raw| {
        raw.trim()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("{name}={raw:?} is not a u64: {e}"))
    })
}

fn env_profile() -> Option<ChaosProfile> {
    std::env::var("HYPERPOWER_CHAOS_PROFILE").ok().map(|raw| {
        ChaosProfile::parse(raw.trim())
            .unwrap_or_else(|| panic!("HYPERPOWER_CHAOS_PROFILE={raw:?} is not a profile"))
    })
}

fn scratch_root(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/chaos-scratch")
        .join(label)
}

#[test]
fn chaos_matrix_traces_are_byte_identical() {
    let seeds: Vec<u64> = match env_u64("HYPERPOWER_CHAOS_SEED") {
        Some(seed) => vec![seed],
        None => vec![1, 2, 3],
    };
    let workers_grid: Vec<usize> = match env_u64("HYPERPOWER_WORKERS") {
        Some(w) => vec![w.max(1) as usize],
        None => vec![1, 4],
    };
    let profiles: Vec<ChaosProfile> = match env_profile() {
        Some(profile) => vec![profile],
        None => vec![
            ChaosProfile::Baseline,
            ChaosProfile::BitRot,
            ChaosProfile::SlowWorker,
        ],
    };

    let artifact_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos-diff");
    let fsck_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos-fsck");
    let mut failures = Vec::new();
    for &profile in &profiles {
        for &seed in &seeds {
            for &workers in &workers_grid {
                let label = format!("{}-seed{seed}-w{workers}", profile.name());
                let root = scratch_root(&label);
                let outcome = run_chaos_with(seed, workers, &root, profile)
                    .unwrap_or_else(|e| panic!("chaos {label}: {e}"));
                let r = outcome.report;
                eprintln!(
                    "chaos {label}: rounds={} crashes={} torn_journals={} recovered_samples={} \
                     dropped={} duplicated={} delayed={} expired={} reclaimed={} refusals={} \
                     hedged={} superseded={} rotted={} salvaged={} unhealthy_workers={}",
                    r.rounds,
                    r.crashes,
                    r.torn_journals,
                    r.recovered_samples,
                    r.dropped_tells,
                    r.duplicated_tells,
                    r.delayed_tells,
                    r.expired_tells,
                    r.reclaimed_leases,
                    r.overload_refusals,
                    r.hedged_leases,
                    r.superseded_leases,
                    r.rotted_journals,
                    r.salvaged_studies,
                    r.unhealthy_workers,
                );
                // The surviving store must scan clean: every frame
                // checksum-valid, no stale temps left behind.
                let fsck = fsck_store(&root, false).expect("fsck scan");
                if !fsck.clean() {
                    std::fs::create_dir_all(&fsck_dir).expect("fsck artifact dir");
                    let path = fsck_dir.join(format!("{label}.fsck"));
                    std::fs::write(&path, format!("{fsck}\n")).expect("write fsck report");
                    failures.push(format!("{label}: post-chaos store is not clean:\n{fsck}"));
                }
                if !outcome.mismatches.is_empty() {
                    let paths = write_mismatch_artifacts(&outcome, &artifact_dir, &label)
                        .expect("write chaos diff artifacts");
                    for m in &outcome.mismatches {
                        failures.push(format!(
                            "{label}: study {:?} diverged ({} field diffs)",
                            m.study,
                            m.diffs.len()
                        ));
                    }
                    eprintln!("chaos {label}: wrote {} diff artifact(s)", paths.len());
                }
                std::fs::remove_dir_all(&root).ok();
            }
        }
    }
    assert!(
        failures.is_empty(),
        "chaos traces diverged from uninterrupted references \
         (diff artifacts under target/chaos-diff/, fsck reports under target/chaos-fsck/):\n{}",
        failures.join("\n")
    );
}

/// The harness itself must be deterministic: the same cell run twice
/// yields the identical report, not merely identical traces. Exercised
/// on the bit-rot profile so the salvage path is covered too.
#[test]
fn chaos_harness_is_deterministic() {
    let a = run_chaos_with(7, 2, &scratch_root("det-a"), ChaosProfile::BitRot).expect("first run");
    let b = run_chaos_with(7, 2, &scratch_root("det-b"), ChaosProfile::BitRot).expect("second run");
    assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
    assert!(a.mismatches.is_empty(), "seed 7 must pass");
    assert!(b.mismatches.is_empty(), "seed 7 must pass");
    std::fs::remove_dir_all(scratch_root("det-a")).ok();
    std::fs::remove_dir_all(scratch_root("det-b")).ok();
}
