//! Batched vs per-point GP acquisition scoring.
//!
//! The BO searcher scores its candidate grid through
//! `GpRegressor::posterior_batch` — one multi-RHS triangular solve per
//! candidate block instead of one per candidate. This bench measures both
//! paths on the same fitted surrogate and the same seeded candidate grid
//! (from [`hyperpower_linalg::corpus`], so `BENCH_gp.json` at the
//! workspace root always describes the same bits); `tests/bench_ratchet.rs`
//! fails the build if the batched path loses its recorded speedup.
//!
//! Workload matches the ratchet: 256 training points, 6 dimensions,
//! 512 candidates scored in blocks of 64.

// Bench-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hyperpower_gp::{GpRegressor, Matern52};
use hyperpower_linalg::corpus;

/// Must match `train_n` / `dims` / `candidates` / `block` in `BENCH_gp.json`.
const TRAIN_N: usize = 256;
const DIMS: usize = 6;
const CANDIDATES: usize = 512;
const BLOCK: usize = 64;

fn fitted() -> GpRegressor {
    let x = corpus::dense(0x6701, TRAIN_N, DIMS);
    let y = corpus::vector(0x6702, TRAIN_N);
    GpRegressor::fit(Matern52::new(0.5).into_kernel(), 1.0, 1e-6, &x, &y)
        .expect("corpus surrogate fit")
}

fn pointwise_scoring(c: &mut Criterion) {
    let gp = fitted();
    let grid = corpus::dense(0x6703, CANDIDATES, DIMS);
    c.bench_function(&format!("predict_pointwise/{CANDIDATES}x{DIMS}"), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..grid.rows() {
                let p = black_box(&gp)
                    .predict(grid.row(i))
                    .expect("in-domain query");
                acc += p.mean + p.variance;
            }
            acc
        })
    });
}

fn batched_scoring(c: &mut Criterion) {
    let gp = fitted();
    let grid = corpus::dense(0x6703, CANDIDATES, DIMS);
    let blocks: Vec<_> = (0..CANDIDATES / BLOCK)
        .map(|i| {
            let data: Vec<f64> = (i * BLOCK..(i + 1) * BLOCK)
                .flat_map(|r| grid.row(r).iter().copied())
                .collect();
            hyperpower_linalg::Matrix::from_vec(BLOCK, DIMS, data).expect("sized to shape")
        })
        .collect();
    c.bench_function(
        &format!("posterior_batch/{CANDIDATES}x{DIMS}/block{BLOCK}"),
        |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for q in &blocks {
                    let (means, variances) =
                        black_box(&gp).posterior_batch(q).expect("in-domain block");
                    acc += means.iter().sum::<f64>() + variances.iter().sum::<f64>();
                }
                acc
            })
        },
    );
}

criterion_group!(benches, pointwise_scoring, batched_scoring);
criterion_main!(benches);
