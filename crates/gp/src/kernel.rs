//! Covariance functions (kernels) for Gaussian-process regression.
//!
//! Two stationary kernels are provided: the squared-exponential and the
//! Matérn 5/2. Spearmint — the tool HyperPower builds on — defaults to
//! Matérn 5/2 for hyper-parameter optimization because objective surfaces
//! of trained networks are typically less smooth than the SE kernel assumes;
//! we follow that default in the `hyperpower` crate while keeping SE
//! available for comparison and tests.

use std::fmt::Debug;
use std::sync::Arc;

use hyperpower_linalg::{vector, Matrix};

use crate::{Error, Result};

/// A stationary covariance function over `ℝᵈ`.
///
/// The trait is object-safe so that searchers can hold a
/// `Arc<dyn Kernel>` chosen at runtime.
pub trait Kernel: Debug + Send + Sync {
    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `a.len() != b.len()`.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// The kernel's characteristic length scale.
    fn length_scale(&self) -> f64;

    /// Returns a boxed copy of this kernel with a different length scale.
    ///
    /// Used by the marginal-likelihood fitter, which searches over length
    /// scales without knowing the concrete kernel type.
    fn with_length_scale(&self, length_scale: f64) -> Arc<dyn Kernel>;

    /// Builds the symmetric kernel matrix `K[i][j] = k(xᵢ, xⱼ)` for the rows
    /// of `x`.
    fn matrix(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.eval(x.row(i), x.row(j));
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// Evaluates the cross-covariance vector `k(x*, xᵢ)` between one query
    /// point and each row of `x`.
    fn cross(&self, query: &[f64], x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.eval(query, x.row(i))).collect()
    }
}

fn validate_length_scale(length_scale: f64) -> Result<()> {
    if !(length_scale.is_finite() && length_scale > 0.0) {
        return Err(Error::InvalidHyperParameter {
            name: "length_scale",
            value: length_scale,
        });
    }
    Ok(())
}

/// The squared-exponential (RBF) kernel
/// `k(a, b) = exp(−‖a − b‖² / (2ℓ²))`.
///
/// Infinitely differentiable — the smoothest common choice.
///
/// # Examples
///
/// ```
/// use hyperpower_gp::{Kernel, SquaredExponential};
///
/// let k = SquaredExponential::new(1.0);
/// assert_eq!(k.eval(&[0.0], &[0.0]), 1.0);
/// assert!(k.eval(&[0.0], &[3.0]) < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquaredExponential {
    length_scale: f64,
}

impl SquaredExponential {
    /// Creates a squared-exponential kernel with the given length scale.
    ///
    /// # Panics
    ///
    /// Panics if `length_scale` is not positive and finite; use
    /// [`SquaredExponential::try_new`] for a fallible constructor.
    pub fn new(length_scale: f64) -> Self {
        match Self::try_new(length_scale) {
            Ok(k) => k,
            Err(_) => panic!("length scale must be positive and finite, got {length_scale}"),
        }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHyperParameter`] if `length_scale` is not
    /// positive and finite.
    pub fn try_new(length_scale: f64) -> Result<Self> {
        validate_length_scale(length_scale)?;
        Ok(SquaredExponential { length_scale })
    }

    /// Wraps this kernel in an [`Arc`] for use as a trait object.
    pub fn into_kernel(self) -> Arc<dyn Kernel> {
        Arc::new(self)
    }
}

impl Kernel for SquaredExponential {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2 = vector::squared_distance(a, b);
        (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    fn length_scale(&self) -> f64 {
        self.length_scale
    }

    fn with_length_scale(&self, length_scale: f64) -> Arc<dyn Kernel> {
        Arc::new(SquaredExponential { length_scale })
    }
}

/// The Matérn 5/2 kernel
/// `k(r) = (1 + √5·r/ℓ + 5r²/(3ℓ²))·exp(−√5·r/ℓ)`.
///
/// Twice differentiable; the standard surrogate kernel for hyper-parameter
/// optimization (Snoek et al. 2012, the basis of the paper's tooling).
///
/// # Examples
///
/// ```
/// use hyperpower_gp::{Kernel, Matern52};
///
/// let k = Matern52::new(2.0);
/// assert_eq!(k.eval(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
/// let near = k.eval(&[0.0, 0.0], &[0.5, 0.0]);
/// let far = k.eval(&[0.0, 0.0], &[3.0, 0.0]);
/// assert!(near > far);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matern52 {
    length_scale: f64,
}

impl Matern52 {
    /// Creates a Matérn 5/2 kernel with the given length scale.
    ///
    /// # Panics
    ///
    /// Panics if `length_scale` is not positive and finite; use
    /// [`Matern52::try_new`] for a fallible constructor.
    pub fn new(length_scale: f64) -> Self {
        match Self::try_new(length_scale) {
            Ok(k) => k,
            Err(_) => panic!("length scale must be positive and finite, got {length_scale}"),
        }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHyperParameter`] if `length_scale` is not
    /// positive and finite.
    pub fn try_new(length_scale: f64) -> Result<Self> {
        validate_length_scale(length_scale)?;
        Ok(Matern52 { length_scale })
    }

    /// Wraps this kernel in an [`Arc`] for use as a trait object.
    pub fn into_kernel(self) -> Arc<dyn Kernel> {
        Arc::new(self)
    }
}

impl Kernel for Matern52 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = vector::squared_distance(a, b).sqrt();
        let s = 5.0_f64.sqrt() * r / self.length_scale;
        (1.0 + s + s * s / 3.0) * (-s).exp()
    }

    fn length_scale(&self) -> f64 {
        self.length_scale
    }

    fn with_length_scale(&self, length_scale: f64) -> Arc<dyn Kernel> {
        Arc::new(Matern52 { length_scale })
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn se_unit_at_zero_distance() {
        let k = SquaredExponential::new(1.3);
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn se_hand_computed() {
        let k = SquaredExponential::new(1.0);
        // exp(-0.5) at distance 1.
        assert!((k.eval(&[0.0], &[1.0]) - (-0.5f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn matern_unit_at_zero_distance() {
        let k = Matern52::new(0.7);
        assert!((k.eval(&[0.5], &[0.5]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn matern_hand_computed() {
        let k = Matern52::new(1.0);
        let s = 5.0f64.sqrt();
        let expected = (1.0 + s + s * s / 3.0) * (-s).exp();
        assert!((k.eval(&[0.0], &[1.0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn kernels_decay_monotonically() {
        let se = SquaredExponential::new(1.0);
        let m = Matern52::new(1.0);
        let mut prev_se = 1.0;
        let mut prev_m = 1.0;
        for i in 1..20 {
            let d = i as f64 * 0.3;
            let v_se = se.eval(&[0.0], &[d]);
            let v_m = m.eval(&[0.0], &[d]);
            assert!(v_se < prev_se);
            assert!(v_m < prev_m);
            assert!(v_se > 0.0 && v_m > 0.0);
            prev_se = v_se;
            prev_m = v_m;
        }
    }

    #[test]
    fn invalid_length_scales_rejected() {
        assert!(SquaredExponential::try_new(0.0).is_err());
        assert!(SquaredExponential::try_new(-1.0).is_err());
        assert!(Matern52::try_new(f64::NAN).is_err());
        assert!(Matern52::try_new(f64::INFINITY).is_err());
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 2.0]]).unwrap();
        let k = Matern52::new(1.5).matrix(&x);
        for i in 0..3 {
            assert!((k[(i, i)] - 1.0).abs() < 1e-15);
            for j in 0..3 {
                assert_eq!(k[(i, j)], k[(j, i)]);
            }
        }
    }

    #[test]
    fn cross_matches_eval() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let k = SquaredExponential::new(1.0);
        let c = k.cross(&[0.5], &x);
        assert_eq!(c.len(), 2);
        assert!((c[0] - k.eval(&[0.5], &[0.0])).abs() < 1e-15);
    }

    #[test]
    fn with_length_scale_rebuilds() {
        let k = Matern52::new(1.0).into_kernel();
        let k2 = k.with_length_scale(2.0);
        assert_eq!(k2.length_scale(), 2.0);
        // Longer length scale => slower decay.
        assert!(k2.eval(&[0.0], &[1.0]) > k.eval(&[0.0], &[1.0]));
    }

    #[test]
    fn kernel_trait_is_object_safe() {
        let kernels: Vec<Arc<dyn Kernel>> = vec![
            SquaredExponential::new(1.0).into_kernel(),
            Matern52::new(1.0).into_kernel(),
        ];
        for k in kernels {
            assert!(k.eval(&[0.0], &[0.1]) > 0.9);
        }
    }
}
