use std::fmt;

/// Errors produced by Gaussian-process routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The training inputs and targets disagree in length, or a query point
    /// has the wrong dimensionality.
    DimensionMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// Fitting requires at least one observation.
    NoObservations,
    /// A kernel or GP hyper-parameter is out of its valid domain (must be
    /// positive and finite).
    InvalidHyperParameter {
        /// Name of the offending hyper-parameter.
        name: &'static str,
        /// Supplied value.
        value: f64,
    },
    /// The kernel matrix could not be factored even after jitter escalation.
    Numerical(hyperpower_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Error::NoObservations => write!(f, "at least one observation is required"),
            Error::InvalidHyperParameter { name, value } => {
                write!(
                    f,
                    "invalid hyper-parameter {name} = {value} (must be positive and finite)"
                )
            }
            Error::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hyperpower_linalg::Error> for Error {
    fn from(e: hyperpower_linalg::Error) -> Self {
        Error::Numerical(e)
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = Error::InvalidHyperParameter {
            name: "length_scale",
            value: -1.0,
        };
        assert!(e.to_string().contains("length_scale"));
        assert!(Error::NoObservations.to_string().len() > 5);
    }

    #[test]
    fn source_chains_linalg_errors() {
        use std::error::Error as _;
        let e = Error::from(hyperpower_linalg::Error::NonFiniteInput);
        assert!(e.source().is_some());
    }
}
