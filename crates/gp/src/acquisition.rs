//! Acquisition functions and Gaussian utilities.
//!
//! The paper's Bayesian-optimization loop (Figure 2, step 1) selects the
//! next candidate by maximising an acquisition function over the design
//! space. The base criterion is Expected Improvement (EI); HyperPower's
//! constraint-aware variants (HW-IECI, HW-CWEI — implemented in the
//! `hyperpower` crate) multiply EI by indicator functions or constraint
//! probabilities. This module supplies the shared math: the standard-normal
//! pdf/cdf and closed-form EI for *minimisation*.

use crate::Prediction;

/// Standard normal probability density function φ(z).
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function Φ(z).
///
/// Implemented via the complementary error function with the
/// Abramowitz–Stegun 7.1.26 rational approximation (|error| < 1.5·10⁻⁷),
/// which is far below the noise floor of any quantity in this workspace.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function, Abramowitz–Stegun formula 7.1.26.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Closed-form Expected Improvement for **minimisation**:
///
/// `EI(x) = E[max(best − Y, 0)]` with `Y ~ N(mean, std²)`, i.e.
/// `EI = (best − μ)·Φ(z) + σ·φ(z)` where `z = (best − μ)/σ`.
///
/// `best` is the incumbent (lowest observed objective value, the paper's
/// adaptive threshold `y⁺`). Returns 0 when `std` is zero and the mean does
/// not improve on the incumbent.
///
/// # Examples
///
/// ```
/// use hyperpower_gp::acquisition::expected_improvement;
///
/// // A candidate predicted well below the incumbent has high EI...
/// let good = expected_improvement(0.1, 0.05, 0.5);
/// // ...a candidate predicted above it, with little uncertainty, has ~none.
/// let bad = expected_improvement(0.9, 0.05, 0.5);
/// assert!(good > 0.3);
/// assert!(bad < 1e-6);
/// ```
pub fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 0.0 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    let ei = (best - mean) * normal_cdf(z) + std * normal_pdf(z);
    ei.max(0.0)
}

/// Expected Improvement evaluated from a GP [`Prediction`].
pub fn expected_improvement_at(prediction: Prediction, best: f64) -> f64 {
    expected_improvement(prediction.mean, prediction.std_dev(), best)
}

/// Probability that a Gaussian quantity `N(mean, std²)` is at most
/// `threshold` — used by HW-CWEI to express `Pr(P(z) ≤ P_B)` when the
/// constraints are modelled probabilistically (paper §3.5).
pub fn probability_below(mean: f64, std: f64, threshold: f64) -> f64 {
    if std <= 0.0 {
        return if mean <= threshold { 1.0 } else { 0.0 };
    }
    normal_cdf((threshold - mean) / std)
}

/// Probability of Improvement for **minimisation**:
/// `PI = Pr(Y < best) = Φ((best − μ)/σ)`.
///
/// Greedier than EI (it ignores the *magnitude* of improvement); part of
/// the acquisition family the paper leaves for future exploration (§3.4).
pub fn probability_of_improvement(mean: f64, std: f64, best: f64) -> f64 {
    probability_below(mean, std, best)
}

/// Negated Lower Confidence Bound for **minimisation**, as a
/// maximisation score: `−(μ − β·σ) = β·σ − μ`.
///
/// `beta` trades exploration (large) against exploitation (small); 2.0 is
/// a common default. Unlike EI/PI the score is unbounded and can be
/// negative — only its argmax is meaningful.
///
/// # Panics
///
/// Panics if `beta` is negative.
pub fn lower_confidence_bound(mean: f64, std: f64, beta: f64) -> f64 {
    assert!(beta >= 0.0, "beta must be non-negative");
    beta * std - mean
}

/// Probability of Improvement from a GP [`Prediction`].
pub fn probability_of_improvement_at(prediction: Prediction, best: f64) -> f64 {
    probability_of_improvement(prediction.mean, prediction.std_dev(), best)
}

/// Negated LCB from a GP [`Prediction`].
pub fn lower_confidence_bound_at(prediction: Prediction, beta: f64) -> f64 {
    lower_confidence_bound(prediction.mean, prediction.std_dev(), beta)
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_values() {
        // Known values of Φ.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.8413447).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.1586553).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.9999999);
        assert!(normal_cdf(-8.0) < 1e-7);
    }

    #[test]
    fn normal_pdf_reference_values() {
        assert!((normal_pdf(0.0) - 0.39894228).abs() < 1e-7);
        assert!((normal_pdf(1.0) - 0.24197072).abs() < 1e-7);
        assert_eq!(normal_pdf(1.5), normal_pdf(-1.5));
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let v = normal_cdf(i as f64 * 0.2);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn ei_nonnegative_and_zero_far_above_incumbent() {
        assert!(expected_improvement(10.0, 0.1, 0.0) >= 0.0);
        assert!(expected_improvement(10.0, 0.1, 0.0) < 1e-12);
    }

    #[test]
    fn ei_increases_with_uncertainty_when_mean_worse() {
        // Same (worse) mean, more uncertainty => more EI.
        let lo = expected_improvement(1.0, 0.1, 0.5);
        let hi = expected_improvement(1.0, 1.0, 0.5);
        assert!(hi > lo);
    }

    #[test]
    fn ei_increases_as_mean_improves() {
        let worse = expected_improvement(0.6, 0.2, 0.5);
        let better = expected_improvement(0.2, 0.2, 0.5);
        assert!(better > worse);
    }

    #[test]
    fn ei_deterministic_limit() {
        // Zero std: EI is exactly the deterministic improvement.
        assert_eq!(expected_improvement(0.3, 0.0, 0.5), 0.2);
        assert_eq!(expected_improvement(0.7, 0.0, 0.5), 0.0);
    }

    #[test]
    fn ei_closed_form_hand_check() {
        // best=0, mean=0, std=1 => EI = φ(0) = 1/√(2π).
        let ei = expected_improvement(0.0, 1.0, 0.0);
        assert!((ei - 0.39894228).abs() < 1e-6);
    }

    #[test]
    fn ei_at_wraps_prediction() {
        let p = Prediction {
            mean: 0.0,
            variance: 1.0,
        };
        assert!((expected_improvement_at(p, 0.0) - 0.39894228).abs() < 1e-6);
    }

    #[test]
    fn pi_is_cdf_of_improvement() {
        assert!((probability_of_improvement(0.0, 1.0, 0.0) - 0.5).abs() < 1e-7);
        assert!(probability_of_improvement(1.0, 0.1, 0.0) < 1e-7);
        assert!(probability_of_improvement(-1.0, 0.1, 0.0) > 1.0 - 1e-7);
        // Deterministic limits.
        assert_eq!(probability_of_improvement(0.5, 0.0, 1.0), 1.0);
        assert_eq!(probability_of_improvement(1.5, 0.0, 1.0), 0.0);
    }

    #[test]
    fn lcb_trades_mean_against_uncertainty() {
        // Same mean, more uncertainty => higher score.
        assert!(lower_confidence_bound(1.0, 2.0, 2.0) > lower_confidence_bound(1.0, 0.5, 2.0));
        // Same uncertainty, lower mean => higher score.
        assert!(lower_confidence_bound(0.0, 1.0, 2.0) > lower_confidence_bound(1.0, 1.0, 2.0));
        // Beta 0 is pure exploitation.
        assert_eq!(lower_confidence_bound(0.7, 5.0, 0.0), -0.7);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_beta_panics() {
        lower_confidence_bound(0.0, 1.0, -1.0);
    }

    #[test]
    fn at_variants_wrap_predictions() {
        let p = Prediction {
            mean: 0.0,
            variance: 4.0,
        };
        assert!((probability_of_improvement_at(p, 0.0) - 0.5).abs() < 1e-7);
        assert_eq!(lower_confidence_bound_at(p, 1.0), 2.0);
    }

    #[test]
    fn probability_below_limits() {
        assert_eq!(probability_below(5.0, 0.0, 4.0), 0.0);
        assert_eq!(probability_below(3.0, 0.0, 4.0), 1.0);
        assert!((probability_below(0.0, 1.0, 0.0) - 0.5).abs() < 1e-7);
        assert!(probability_below(0.0, 1.0, 3.0) > 0.99);
    }
}
