//! Candidate-point generators on the unit hypercube `[0, 1)ᵈ`.
//!
//! Spearmint maximises the acquisition function over a large set of sampled
//! grid points; we do the same. Two generators are provided: plain uniform
//! sampling, and Latin-hypercube sampling whose per-dimension stratification
//! gives better coverage for the same budget.

use hyperpower_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Draws `n` points uniformly at random from `[0, 1)ᵈ`, one per row.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let c = hyperpower_gp::sampler::uniform_candidates(&mut rng, 100, 3);
/// assert_eq!(c.shape(), (100, 3));
/// assert!(c.as_slice().iter().all(|v| (0.0..1.0).contains(v)));
/// ```
pub fn uniform_candidates(rng: &mut impl Rng, n: usize, dim: usize) -> Matrix {
    Matrix::from_fn(n, dim, |_, _| rng.random_range(0.0..1.0))
}

/// Draws `n` points by Latin-hypercube sampling on `[0, 1)ᵈ`.
///
/// Each dimension is divided into `n` equal strata; every stratum receives
/// exactly one sample, with an independent random permutation per dimension.
/// This guarantees one-dimensional projections are evenly spread — useful
/// when profiling the hyper-parameter space for the power/memory models.
pub fn latin_hypercube(rng: &mut impl Rng, n: usize, dim: usize) -> Matrix {
    let mut out = Matrix::zeros(n, dim);
    for j in 0..dim {
        let mut strata: Vec<usize> = (0..n).collect();
        strata.shuffle(rng);
        for (i, s) in strata.into_iter().enumerate() {
            let jitter: f64 = rng.random_range(0.0..1.0);
            out[(i, j)] = (s as f64 + jitter) / n as f64;
        }
    }
    out
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = uniform_candidates(&mut rng, 500, 4);
        assert_eq!(c.shape(), (500, 4));
        assert!(c.as_slice().iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn uniform_deterministic_under_seed() {
        let a = uniform_candidates(&mut StdRng::seed_from_u64(42), 10, 2);
        let b = uniform_candidates(&mut StdRng::seed_from_u64(42), 10, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn lhs_stratification_per_dimension() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20;
        let c = latin_hypercube(&mut rng, n, 3);
        for j in 0..3 {
            let mut occupied = vec![false; n];
            for i in 0..n {
                let stratum = (c[(i, j)] * n as f64).floor() as usize;
                assert!(stratum < n);
                assert!(!occupied[stratum], "stratum {stratum} hit twice in dim {j}");
                occupied[stratum] = true;
            }
        }
    }

    #[test]
    fn lhs_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = latin_hypercube(&mut rng, 50, 5);
        assert!(c.as_slice().iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn zero_points_is_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(uniform_candidates(&mut rng, 0, 3).rows(), 0);
        assert_eq!(latin_hypercube(&mut rng, 0, 3).rows(), 0);
    }
}
