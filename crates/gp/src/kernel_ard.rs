//! Automatic-relevance-determination (ARD) variant of the Matérn 5/2
//! kernel: one length scale per input dimension.
//!
//! Hyper-parameter spaces mix dimensions with very different effective
//! ranges (a kernel size in 2–5 vs a log learning rate); ARD lets the
//! surrogate stretch each axis independently. This is what Spearmint
//! actually uses; the isotropic [`Matern52`](crate::Matern52) is the
//! cheaper default in this reproduction, with ARD available as an
//! extension (exercised by the acquisition ablation bench).

use std::sync::Arc;

use crate::kernel::Kernel;
use crate::{Error, Result};

/// Matérn 5/2 kernel with per-dimension length scales.
///
/// `k(a, b) = (1 + √5·r + 5r²/3)·exp(−√5·r)` with
/// `r² = Σⱼ ((aⱼ − bⱼ)/ℓⱼ)²`.
///
/// # Examples
///
/// ```
/// use hyperpower_gp::{Kernel, Matern52Ard};
///
/// # fn main() -> Result<(), hyperpower_gp::Error> {
/// let k = Matern52Ard::try_new(vec![0.1, 10.0])?;
/// // Distance along the short axis decays correlation much faster.
/// let along_short = k.eval(&[0.0, 0.0], &[0.5, 0.0]);
/// let along_long = k.eval(&[0.0, 0.0], &[0.0, 0.5]);
/// assert!(along_short < along_long);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matern52Ard {
    length_scales: Vec<f64>,
}

impl Matern52Ard {
    /// Creates an ARD kernel with the given per-dimension length scales.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHyperParameter`] if the vector is empty or
    /// any length scale is not positive and finite.
    pub fn try_new(length_scales: Vec<f64>) -> Result<Self> {
        if length_scales.is_empty() {
            return Err(Error::InvalidHyperParameter {
                name: "length_scales",
                value: 0.0,
            });
        }
        for &l in &length_scales {
            if !(l.is_finite() && l > 0.0) {
                return Err(Error::InvalidHyperParameter {
                    name: "length_scales",
                    value: l,
                });
            }
        }
        Ok(Matern52Ard { length_scales })
    }

    /// Isotropic constructor: the same length scale replicated over `dim`
    /// dimensions (useful as a fitting seed).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHyperParameter`] for invalid inputs.
    pub fn isotropic(length_scale: f64, dim: usize) -> Result<Self> {
        Self::try_new(vec![length_scale; dim])
    }

    /// The per-dimension length scales.
    pub fn length_scales(&self) -> &[f64] {
        &self.length_scales
    }

    /// Wraps this kernel in an [`Arc`] for use as a trait object.
    pub fn into_kernel(self) -> Arc<dyn Kernel> {
        Arc::new(self)
    }
}

impl Kernel for Matern52Ard {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "point dimensionality mismatch");
        assert_eq!(
            a.len(),
            self.length_scales.len(),
            "kernel dimensionality mismatch"
        );
        let r2: f64 = a
            .iter()
            .zip(b)
            .zip(&self.length_scales)
            .map(|((x, y), l)| {
                let d = (x - y) / l;
                d * d
            })
            .sum();
        let s = (5.0 * r2).sqrt();
        (1.0 + s + s * s / 3.0) * (-s).exp()
    }

    /// Geometric mean of the per-dimension length scales (used by the
    /// generic marginal-likelihood fitter as the single scalar it tunes;
    /// the relative anisotropy is preserved by `with_length_scale`).
    fn length_scale(&self) -> f64 {
        let log_sum: f64 = self.length_scales.iter().map(|l| l.ln()).sum();
        (log_sum / self.length_scales.len() as f64).exp()
    }

    /// Rescales every dimension so the geometric mean becomes
    /// `length_scale`, preserving the anisotropy ratios.
    fn with_length_scale(&self, length_scale: f64) -> Arc<dyn Kernel> {
        let current = self.length_scale();
        let factor = length_scale / current;
        Arc::new(Matern52Ard {
            length_scales: self.length_scales.iter().map(|l| l * factor).collect(),
        })
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn unit_at_zero_distance() {
        let k = Matern52Ard::try_new(vec![1.0, 2.0, 0.5]).unwrap();
        assert!((k.eval(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn matches_isotropic_matern_when_scales_equal() {
        use crate::Matern52;
        let ard = Matern52Ard::isotropic(1.3, 2).unwrap();
        let iso = Matern52::new(1.3);
        for (a, b) in [([0.0, 0.0], [1.0, 0.5]), ([2.0, -1.0], [0.1, 0.3])] {
            assert!((ard.eval(&a, &b) - iso.eval(&a, &b)).abs() < 1e-12);
        }
    }

    #[test]
    fn anisotropy_stretches_axes() {
        let k = Matern52Ard::try_new(vec![0.1, 10.0]).unwrap();
        let short = k.eval(&[0.0, 0.0], &[1.0, 0.0]);
        let long = k.eval(&[0.0, 0.0], &[0.0, 1.0]);
        assert!(short < 0.01);
        assert!(long > 0.95);
    }

    #[test]
    fn geometric_mean_length_scale() {
        let k = Matern52Ard::try_new(vec![1.0, 4.0]).unwrap();
        assert!((k.length_scale() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn with_length_scale_preserves_anisotropy() {
        let k = Matern52Ard::try_new(vec![1.0, 4.0]).unwrap();
        let scaled = k.with_length_scale(4.0);
        assert!((scaled.length_scale() - 4.0).abs() < 1e-12);
        // Ratio 1:4 preserved => evals along each axis keep their ordering.
        let short = scaled.eval(&[0.0, 0.0], &[1.0, 0.0]);
        let long = scaled.eval(&[0.0, 0.0], &[0.0, 1.0]);
        assert!(short < long);
    }

    #[test]
    fn invalid_scales_rejected() {
        assert!(Matern52Ard::try_new(vec![]).is_err());
        assert!(Matern52Ard::try_new(vec![1.0, 0.0]).is_err());
        assert!(Matern52Ard::try_new(vec![1.0, f64::NAN]).is_err());
        assert!(Matern52Ard::isotropic(-1.0, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_panics() {
        let k = Matern52Ard::isotropic(1.0, 2).unwrap();
        k.eval(&[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn works_in_gp_regression() {
        use crate::GpRegressor;
        use hyperpower_linalg::Matrix;
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let y = [0.0, 1.0, 0.1, 1.1];
        let gp = GpRegressor::fit(
            Matern52Ard::try_new(vec![0.5, 5.0]).unwrap().into_kernel(),
            1.0,
            1e-6,
            &x,
            &y,
        )
        .unwrap();
        // Dimension 0 matters (short scale), dimension 1 barely does.
        let p = gp.predict(&[1.0, 0.5]).unwrap();
        assert!((p.mean - 1.05).abs() < 0.2, "mean {}", p.mean);
    }
}
