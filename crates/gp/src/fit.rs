use std::sync::Arc;

use hyperpower_linalg::Matrix;

use crate::optimize::{nelder_mead, NelderMeadOptions};
use crate::{Error, GpRegressor, Kernel, Result};

/// Options for [`fit_gp_hyperparams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitOptions {
    /// Number of Nelder–Mead restarts from different initial points.
    pub restarts: usize,
    /// Objective-evaluation budget per restart.
    pub max_evals_per_restart: usize,
    /// Lower bound on the noise variance (keeps the surrogate from claiming
    /// to interpolate noisy observations exactly).
    pub min_noise_variance: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            restarts: 3,
            max_evals_per_restart: 120,
            min_noise_variance: 1e-6,
        }
    }
}

/// A GP whose hyper-parameters were chosen by marginal-likelihood
/// maximisation.
#[derive(Debug, Clone)]
pub struct FittedGp {
    /// The fitted regressor, ready for prediction.
    pub gp: GpRegressor,
    /// Selected kernel length scale.
    pub length_scale: f64,
    /// Selected signal variance.
    pub signal_variance: f64,
    /// Selected noise variance.
    pub noise_variance: f64,
}

/// Fits GP hyper-parameters (length scale, signal variance, noise variance)
/// by maximising the log marginal likelihood with multi-start Nelder–Mead
/// in log-space.
///
/// This mirrors what Spearmint does each Bayesian-optimization iteration
/// (it slice-samples; we optimise — the paper's behaviour only depends on
/// the surrogate being refit to the data each round, per Figure 2 step 3).
///
/// The search is seeded at data-driven heuristics (median pairwise distance
/// for the length scale, target variance for the signal variance) plus
/// perturbed restarts, so it is deterministic for a given dataset.
///
/// # Errors
///
/// Propagates fitting errors from [`GpRegressor::fit`] if even the fallback
/// heuristic hyper-parameters fail (e.g. empty data).
pub fn fit_gp_hyperparams(
    base_kernel: Arc<dyn Kernel>,
    x: &Matrix,
    y: &[f64],
    options: FitOptions,
) -> Result<FittedGp> {
    // A non-finite noise floor would otherwise be silently ignored by
    // `f64::max` (NaN loses); reject it up front so callers poking the
    // failure path get a deterministic error instead of a quiet fit.
    if !(options.min_noise_variance.is_finite() && options.min_noise_variance > 0.0) {
        return Err(Error::InvalidHyperParameter {
            name: "min_noise_variance",
            value: options.min_noise_variance,
        });
    }
    // Data-driven initial guesses.
    let median_dist = median_pairwise_distance(x).max(1e-3);
    let y_var = variance(y).max(1e-6);
    let init = [
        median_dist.ln(),
        y_var.ln(),
        (0.01 * y_var).max(options.min_noise_variance).ln(),
    ];

    let objective = |p: &[f64]| -> f64 {
        let length_scale = p[0].exp();
        let signal_variance = p[1].exp();
        let noise_variance = p[2].exp().max(options.min_noise_variance);
        if !(length_scale.is_finite() && signal_variance.is_finite() && noise_variance.is_finite())
        {
            return f64::INFINITY;
        }
        let kernel = base_kernel.with_length_scale(length_scale);
        match GpRegressor::fit(kernel, signal_variance, noise_variance, x, y) {
            Ok(gp) => -gp.log_marginal_likelihood(),
            Err(_) => f64::INFINITY,
        }
    };

    let mut best: Option<(Vec<f64>, f64)> = None;
    for restart in 0..options.restarts.max(1) {
        // Deterministic perturbations: restart 0 is the heuristic seed,
        // later restarts are offset in alternating directions.
        let offset = match restart {
            0 => [0.0, 0.0, 0.0],
            1 => [1.0, 0.5, 1.5],
            2 => [-1.0, -0.5, -1.5],
            r => {
                let s = r as f64;
                [s * 0.7, -s * 0.3, s * 0.9]
            }
        };
        let start: Vec<f64> = init.iter().zip(&offset).map(|(a, b)| a + b).collect();
        let result = nelder_mead(
            objective,
            &start,
            NelderMeadOptions {
                max_evals: options.max_evals_per_restart,
                ..Default::default()
            },
        );
        if best.as_ref().is_none_or(|(_, f)| result.f < *f) {
            best = Some((result.x, result.f));
        }
    }

    // `restarts.max(1)` guarantees at least one entry; if every restart
    // diverged (or none ran), fall back to the heuristic seed.
    let params = match best {
        Some((params, best_f)) if best_f.is_finite() => params,
        _ => init.to_vec(),
    };
    let length_scale = params[0].exp();
    let signal_variance = params[1].exp();
    let noise_variance = params[2].exp().max(options.min_noise_variance);
    let gp = GpRegressor::fit(
        base_kernel.with_length_scale(length_scale),
        signal_variance,
        noise_variance,
        x,
        y,
    )?;
    Ok(FittedGp {
        gp,
        length_scale,
        signal_variance,
        noise_variance,
    })
}

/// A fit that may have climbed the noise-floor ladder before succeeding.
#[derive(Debug, Clone)]
pub struct LadderedFit {
    /// The fitted GP from the first rung that succeeded.
    pub fitted: FittedGp,
    /// How many rungs failed before this fit succeeded (0 = clean fit at
    /// the requested noise floor).
    pub rungs: u32,
}

/// Like [`fit_gp_hyperparams`], but escalates the noise floor through a
/// deterministic jitter ladder instead of failing outright.
///
/// Rung `r` retries the fit with `min_noise_variance × 100^r`, for
/// `r = 0..=max_rungs`. A larger noise floor inflates the diagonal of the
/// kernel matrix, which rescues Cholesky factorizations that fail on
/// near-duplicate inputs at the cost of a less confident surrogate. The
/// ladder is a pure function of the data and options — no randomness, no
/// retry loops with side effects — so callers can log each escalation as a
/// typed event and stay reproducible.
///
/// # Errors
///
/// Returns the last rung's error if every rung fails (e.g. a non-finite
/// noise floor poisons all rungs, or the data itself is degenerate).
pub fn fit_gp_hyperparams_laddered(
    base_kernel: Arc<dyn Kernel>,
    x: &Matrix,
    y: &[f64],
    options: FitOptions,
    max_rungs: u32,
) -> Result<LadderedFit> {
    let mut last: Result<LadderedFit> = Err(Error::NoObservations);
    for rung in 0..=max_rungs {
        let floor = options.min_noise_variance * 100f64.powi(rung as i32);
        let rung_options = FitOptions {
            min_noise_variance: floor,
            ..options
        };
        match fit_gp_hyperparams(base_kernel.clone(), x, y, rung_options) {
            Ok(fitted) => {
                return Ok(LadderedFit {
                    fitted,
                    rungs: rung,
                })
            }
            Err(e) => last = Err(e),
        }
    }
    last
}

fn median_pairwise_distance(x: &Matrix) -> f64 {
    let n = x.rows();
    if n < 2 {
        return 1.0;
    }
    let mut dists = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in 0..i {
            dists.push(hyperpower_linalg::vector::squared_distance(x.row(i), x.row(j)).sqrt());
        }
    }
    dists.sort_by(f64::total_cmp);
    dists[dists.len() / 2]
}

fn variance(y: &[f64]) -> f64 {
    if y.len() < 2 {
        return 1.0;
    }
    let m = y.iter().sum::<f64>() / y.len() as f64;
    y.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (y.len() - 1) as f64
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::Matern52;

    fn sine_data(n: usize) -> (Matrix, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        (Matrix::from_vec(n, 1, xs).unwrap(), ys)
    }

    #[test]
    fn fitted_gp_beats_arbitrary_hyperparams() {
        let (x, y) = sine_data(15);
        let fitted = fit_gp_hyperparams(
            Matern52::new(1.0).into_kernel(),
            &x,
            &y,
            FitOptions::default(),
        )
        .unwrap();
        let naive =
            GpRegressor::fit(Matern52::new(0.01).into_kernel(), 100.0, 1.0, &x, &y).unwrap();
        assert!(fitted.gp.log_marginal_likelihood() > naive.log_marginal_likelihood());
    }

    #[test]
    fn fitted_gp_predicts_smooth_function() {
        let (x, y) = sine_data(20);
        let fitted = fit_gp_hyperparams(
            Matern52::new(1.0).into_kernel(),
            &x,
            &y,
            FitOptions::default(),
        )
        .unwrap();
        // Interpolate at a held-out point.
        let p = fitted.gp.predict(&[2.25]).unwrap();
        assert!((p.mean - 2.25f64.sin()).abs() < 0.15, "mean {}", p.mean);
    }

    #[test]
    fn hyperparams_are_positive() {
        let (x, y) = sine_data(10);
        let fitted = fit_gp_hyperparams(
            Matern52::new(1.0).into_kernel(),
            &x,
            &y,
            FitOptions {
                restarts: 2,
                max_evals_per_restart: 60,
                min_noise_variance: 1e-7,
            },
        )
        .unwrap();
        assert!(fitted.length_scale > 0.0);
        assert!(fitted.signal_variance > 0.0);
        assert!(fitted.noise_variance >= 1e-7);
    }

    #[test]
    fn works_with_two_points() {
        let x = Matrix::from_vec(2, 1, vec![0.0, 1.0]).unwrap();
        let y = [0.0, 1.0];
        let fitted = fit_gp_hyperparams(
            Matern52::new(1.0).into_kernel(),
            &x,
            &y,
            FitOptions::default(),
        )
        .unwrap();
        assert_eq!(fitted.gp.num_observations(), 2);
    }

    #[test]
    fn ladder_reports_zero_rungs_on_clean_data() {
        let (x, y) = sine_data(12);
        let laddered = fit_gp_hyperparams_laddered(
            Matern52::new(1.0).into_kernel(),
            &x,
            &y,
            FitOptions::default(),
            2,
        )
        .unwrap();
        assert_eq!(laddered.rungs, 0);
        assert!(laddered.fitted.noise_variance >= 1e-6);
    }

    #[test]
    fn non_finite_noise_floor_fails_every_rung() {
        let (x, y) = sine_data(8);
        let options = FitOptions {
            min_noise_variance: f64::NAN,
            ..FitOptions::default()
        };
        let direct = fit_gp_hyperparams(Matern52::new(1.0).into_kernel(), &x, &y, options);
        assert!(matches!(
            direct,
            Err(Error::InvalidHyperParameter {
                name: "min_noise_variance",
                ..
            })
        ));
        let laddered =
            fit_gp_hyperparams_laddered(Matern52::new(1.0).into_kernel(), &x, &y, options, 2);
        assert!(laddered.is_err());
    }

    #[test]
    fn deterministic_for_same_data() {
        let (x, y) = sine_data(12);
        let k = Matern52::new(1.0).into_kernel();
        let a = fit_gp_hyperparams(k.clone(), &x, &y, FitOptions::default()).unwrap();
        let b = fit_gp_hyperparams(k, &x, &y, FitOptions::default()).unwrap();
        assert_eq!(a.length_scale, b.length_scale);
        assert_eq!(a.noise_variance, b.noise_variance);
    }
}
