//! Gaussian-process machinery for the HyperPower reproduction.
//!
//! HyperPower (DATE 2018) drives its hyper-parameter search with
//! Spearmint-style Bayesian optimization: a Gaussian-process surrogate over
//! the objective (test error), an acquisition function that trades off
//! exploration and exploitation, and candidate-grid maximisation of that
//! acquisition. This crate provides all of those pieces from scratch:
//!
//! * [`kernel`] — covariance functions ([`SquaredExponential`],
//!   [`Matern52`]) behind the object-safe [`Kernel`] trait,
//! * [`GpRegressor`] — exact GP regression with Cholesky solves, jitter
//!   escalation and target normalisation,
//! * [`fit_gp_hyperparams`] — multi-start Nelder–Mead maximisation of the
//!   log marginal likelihood,
//! * [`acquisition`] — Expected Improvement (for minimisation) plus the
//!   probabilistic machinery (`normal_cdf`) the constrained variants need,
//! * [`sampler`] — uniform and Latin-hypercube candidate generators on the
//!   unit hypercube,
//! * [`optimize`] — a dependency-free Nelder–Mead simplex optimizer.
//!
//! # Examples
//!
//! ```
//! use hyperpower_gp::{GpRegressor, Matern52};
//! use hyperpower_linalg::Matrix;
//!
//! # fn main() -> Result<(), hyperpower_gp::Error> {
//! // Observations of y = x² at a few points.
//! let x = Matrix::from_vec(5, 1, vec![-2.0, -1.0, 0.0, 1.0, 2.0]).unwrap();
//! let y = [4.0, 1.0, 0.0, 1.0, 4.0];
//! let gp = GpRegressor::fit(Matern52::new(1.0).into_kernel(), 1.0, 1e-6, &x, &y)?;
//! let p = gp.predict(&[0.5])?;
//! assert!((p.mean - 0.25).abs() < 0.5);
//! assert!(p.variance >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
mod error;
mod fit;
pub mod kernel;
mod kernel_ard;
pub mod optimize;
mod regressor;
pub mod sampler;

pub use error::Error;
pub use fit::{fit_gp_hyperparams, fit_gp_hyperparams_laddered, FitOptions, FittedGp, LadderedFit};
pub use kernel::{Kernel, Matern52, SquaredExponential};
pub use kernel_ard::Matern52Ard;
pub use regressor::{GpRegressor, Prediction};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
