//! A dependency-free Nelder–Mead simplex optimizer.
//!
//! Used to maximise the GP log marginal likelihood over (log) kernel
//! hyper-parameters. Gradient-free is the right tool here: the search space
//! is 3-dimensional, evaluations are cheap relative to the outer
//! Bayesian-optimization loop, and we avoid hand-deriving kernel gradients.

/// Options controlling a Nelder–Mead run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub f_tol: f64,
    /// Initial simplex edge length.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 400,
            f_tol: 1e-8,
            initial_step: 0.5,
        }
    }
}

/// Result of a Nelder–Mead minimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Number of objective evaluations performed.
    pub evals: usize,
}

/// Minimises `f` starting from `x0` with the Nelder–Mead simplex method
/// (standard reflection/expansion/contraction/shrink coefficients
/// 1, 2, ½, ½).
///
/// Objective values that are NaN are treated as `+∞`, so the simplex walks
/// away from invalid regions rather than getting stuck.
///
/// # Panics
///
/// Panics if `x0` is empty.
///
/// # Examples
///
/// ```
/// use hyperpower_gp::optimize::{nelder_mead, NelderMeadOptions};
///
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let r = nelder_mead(sphere, &[1.0, -2.0], NelderMeadOptions::default());
/// assert!(r.f < 1e-6);
/// ```
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    options: NelderMeadOptions,
) -> NelderMeadResult {
    assert!(
        !x0.is_empty(),
        "nelder_mead requires a non-empty start point"
    );
    let n = x0.len();
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initial simplex: x0 plus one perturbed vertex per dimension.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += options.initial_step;
        let fv = eval(&v, &mut evals);
        simplex.push((v, fv));
    }

    while evals < options.max_evals {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() <= options.f_tol * (1.0 + best.abs()) {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (v, _) in simplex.iter().take(n) {
            for (c, vi) in centroid.iter_mut().zip(v) {
                *c += vi / n as f64;
            }
        }

        let reflect = |from: &[f64], coeff: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(from)
                .map(|(c, w)| c + coeff * (c - w))
                .collect()
        };

        let xr = reflect(&simplex[n].0, 1.0);
        let fr = eval(&xr, &mut evals);

        if fr < simplex[0].1 {
            // Try expansion.
            let xe = reflect(&simplex[n].0, 2.0);
            let fe = eval(&xe, &mut evals);
            simplex[n] = if fe < fr { (xe, fe) } else { (xr, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (xr, fr);
        } else {
            // Contraction (outside if reflection improved on worst, else inside).
            let (xc, fc) = if fr < simplex[n].1 {
                let xc = reflect(&simplex[n].0, 0.5);
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            } else {
                let xc: Vec<f64> = centroid
                    .iter()
                    .zip(&simplex[n].0)
                    .map(|(c, w)| c - 0.5 * (c - w))
                    .collect();
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            };
            if fc < simplex[n].1.min(fr) {
                simplex[n] = (xc, fc);
            } else {
                // Shrink toward the best vertex.
                let best_x = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = best_x
                        .iter()
                        .zip(&entry.0)
                        .map(|(b, v)| b + 0.5 * (v - b))
                        .collect();
                    let fs = eval(&shrunk, &mut evals);
                    *entry = (shrunk, fs);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (x, fx) = simplex.swap_remove(0);
    NelderMeadResult { x, f: fx, evals }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn minimises_sphere() {
        let r = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[3.0, -4.0, 2.0],
            NelderMeadOptions::default(),
        );
        assert!(r.f < 1e-5, "f = {}", r.f);
        for v in &r.x {
            assert!(v.abs() < 1e-2);
        }
    }

    #[test]
    fn minimises_rosenbrock_2d() {
        let rosen = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let r = nelder_mead(
            rosen,
            &[-1.2, 1.0],
            NelderMeadOptions {
                max_evals: 2000,
                ..Default::default()
            },
        );
        assert!(r.f < 1e-4, "f = {}", r.f);
        assert!((r.x[0] - 1.0).abs() < 0.05);
        assert!((r.x[1] - 1.0).abs() < 0.05);
    }

    #[test]
    fn one_dimensional_quadratic() {
        let r = nelder_mead(
            |x| (x[0] - 2.5) * (x[0] - 2.5) + 7.0,
            &[0.0],
            NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 2.5).abs() < 1e-3);
        assert!((r.f - 7.0).abs() < 1e-6);
    }

    #[test]
    fn respects_eval_budget() {
        let budget = 25;
        let r = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[10.0, 10.0],
            NelderMeadOptions {
                max_evals: budget,
                f_tol: 0.0,
                ..Default::default()
            },
        );
        // A few extra evals can happen inside the final iteration.
        assert!(r.evals <= budget + 4, "evals = {}", r.evals);
    }

    #[test]
    fn nan_regions_are_avoided() {
        // Objective is NaN for x < 0, quadratic for x >= 0.
        let r = nelder_mead(
            |x| {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    (x[0] - 1.0) * (x[0] - 1.0)
                }
            },
            &[3.0],
            NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_start_panics() {
        nelder_mead(|_| 0.0, &[], NelderMeadOptions::default());
    }
}
