use std::sync::Arc;

use hyperpower_linalg::{vector, Cholesky, Matrix};

use crate::{Error, Kernel, Result};

/// Posterior prediction of a Gaussian process at one query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean of the latent function.
    pub mean: f64,
    /// Posterior variance of the latent function (noise-free), clamped to be
    /// non-negative.
    pub variance: f64,
}

impl Prediction {
    /// Posterior standard deviation (`variance.sqrt()`).
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Exact Gaussian-process regression with a fixed kernel.
///
/// The model is `y = f(x) + ε`, `f ~ GP(m, σ_f²·k)`, `ε ~ N(0, σ_n²)`, where
/// `m` is the empirical mean of the training targets (centering makes the
/// zero-mean assumption harmless). Fitting factors the kernel matrix once
/// with Cholesky (with jitter escalation for borderline matrices);
/// predictions are then O(n) mean / O(n²) variance per query.
///
/// This is the surrogate model `M` of the paper's Figure 2: at every
/// Bayesian-optimization iteration it supplies the predictive marginal
/// density `p_M(y|x)` that the acquisition function integrates against.
///
/// # Examples
///
/// ```
/// use hyperpower_gp::{GpRegressor, SquaredExponential};
/// use hyperpower_linalg::Matrix;
///
/// # fn main() -> Result<(), hyperpower_gp::Error> {
/// let x = Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]).unwrap();
/// let y = [0.0, 1.0, 4.0];
/// let gp = GpRegressor::fit(SquaredExponential::new(1.0).into_kernel(), 1.0, 1e-6, &x, &y)?;
/// // Interpolates near the data, uncertain far away.
/// assert!(gp.predict(&[1.0])?.variance < gp.predict(&[10.0])?.variance);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GpRegressor {
    kernel: Arc<dyn Kernel>,
    signal_variance: f64,
    noise_variance: f64,
    x_train: Matrix,
    y_mean: f64,
    /// α = (σ_f²K + σ_n²I)⁻¹ (y − m)
    alpha: Vec<f64>,
    chol: Cholesky,
    log_marginal_likelihood: f64,
}

impl GpRegressor {
    /// Fits a GP to `n` observations: `x_train` is n×d, `y_train` has
    /// length n.
    ///
    /// `signal_variance` scales the kernel; `noise_variance` is the
    /// observation-noise variance added to the diagonal.
    ///
    /// # Errors
    ///
    /// * [`Error::NoObservations`] if `x_train` has no rows.
    /// * [`Error::DimensionMismatch`] if `y_train.len() != x_train.rows()`.
    /// * [`Error::InvalidHyperParameter`] for non-positive/non-finite
    ///   variances.
    /// * [`Error::Numerical`] if the covariance matrix cannot be factored.
    pub fn fit(
        kernel: Arc<dyn Kernel>,
        signal_variance: f64,
        noise_variance: f64,
        x_train: &Matrix,
        y_train: &[f64],
    ) -> Result<Self> {
        if x_train.rows() == 0 {
            return Err(Error::NoObservations);
        }
        if y_train.len() != x_train.rows() {
            return Err(Error::DimensionMismatch {
                expected: format!("{} targets", x_train.rows()),
                found: format!("{} targets", y_train.len()),
            });
        }
        if !(signal_variance.is_finite() && signal_variance > 0.0) {
            return Err(Error::InvalidHyperParameter {
                name: "signal_variance",
                value: signal_variance,
            });
        }
        if !(noise_variance.is_finite() && noise_variance > 0.0) {
            return Err(Error::InvalidHyperParameter {
                name: "noise_variance",
                value: noise_variance,
            });
        }
        if y_train.iter().any(|v| !v.is_finite()) {
            // A NaN target would silently poison α and every posterior;
            // reject it here with the typed error instead.
            return Err(Error::Numerical(hyperpower_linalg::Error::NonFiniteInput));
        }

        let n = x_train.rows();
        let y_mean = y_train.iter().sum::<f64>() / n as f64;
        let y_centered: Vec<f64> = y_train.iter().map(|y| y - y_mean).collect();

        let mut cov = kernel.matrix(x_train).scale(signal_variance);
        cov.add_diagonal(noise_variance);
        let (chol, _jitter) = Cholesky::factor_with_jitter(&cov, 1e-10, 10)?;
        let alpha = chol.solve(&y_centered)?;
        hyperpower_linalg::debug_assert_finite!("gp fit alpha", &alpha);

        // log p(y|X) = -½ yᵀα − ½ log|K| − n/2 log 2π
        let log_marginal_likelihood = -0.5 * vector::dot(&y_centered, &alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(GpRegressor {
            kernel,
            signal_variance,
            noise_variance,
            x_train: x_train.clone(),
            y_mean,
            alpha,
            chol,
            log_marginal_likelihood,
        })
    }

    /// Posterior mean and (noise-free) variance at `query`.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `query.len()` differs from the
    ///   training dimensionality.
    /// * [`Error::Numerical`] if the triangular solve against the stored
    ///   factorization fails.
    pub fn predict(&self, query: &[f64]) -> Result<Prediction> {
        if query.len() != self.x_train.cols() {
            return Err(Error::DimensionMismatch {
                expected: format!("query with {} dimensions", self.x_train.cols()),
                found: format!("query with {} dimensions", query.len()),
            });
        }
        let k_star: Vec<f64> = self
            .kernel
            .cross(query, &self.x_train)
            .into_iter()
            .map(|v| v * self.signal_variance)
            .collect();
        let mean = self.y_mean + vector::dot(&k_star, &self.alpha);
        // v = L⁻¹ k*; var = k(x*,x*) − vᵀv
        let v = self.chol.solve_lower(&k_star)?;
        let prior = self.signal_variance * self.kernel.eval(query, query);
        let variance = (prior - vector::dot(&v, &v)).max(0.0);
        hyperpower_linalg::debug_assert_finite!("gp posterior (mean, variance)", &[mean, variance]);
        Ok(Prediction { mean, variance })
    }

    /// Posterior means and (noise-free, clamped) variances for a whole
    /// block of query points — the rows of `queries` — in one pass.
    ///
    /// Semantically this is `predict` applied to every row, and the results
    /// are **bit-for-bit identical** to the per-point path (pinned by
    /// `tests/posterior_batch.rs` and the workspace goldens): each query's
    /// `k*` vector, mean dot product, triangular solve and variance
    /// reduction execute the exact same operation sequence. What changes is
    /// the memory traffic — the `m` forward substitutions run as one
    /// multi-RHS blocked solve ([`Cholesky::solve_lower_columns`]), so each
    /// panel row of `L` is loaded once per block instead of once per query.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `queries.cols()` differs from the
    ///   training dimensionality.
    /// * [`Error::Numerical`] if the triangular solve against the stored
    ///   factorization fails.
    pub fn posterior_batch(&self, queries: &Matrix) -> Result<(Vec<f64>, Vec<f64>)> {
        if queries.cols() != self.x_train.cols() {
            return Err(Error::DimensionMismatch {
                expected: format!("queries with {} columns", self.x_train.cols()),
                found: format!("queries with {} columns", queries.cols()),
            });
        }
        let m = queries.rows();
        let n = self.x_train.rows();
        // K* gathered column-wise (n×m): component-major is exactly the
        // layout the multi-RHS forward solve wants.
        let mut kstar = Matrix::zeros(n, m);
        let mut means = Vec::with_capacity(m);
        for q in 0..m {
            let k_star: Vec<f64> = self
                .kernel
                .cross(queries.row(q), &self.x_train)
                .into_iter()
                .map(|v| v * self.signal_variance)
                .collect();
            means.push(self.y_mean + vector::dot(&k_star, &self.alpha));
            for (i, v) in k_star.into_iter().enumerate() {
                kstar[(i, q)] = v;
            }
        }
        let v = self
            .chol
            .solve_lower_columns(&kstar)
            .map_err(Error::Numerical)?;
        // Column dots in row-major storage: transpose once so each query's
        // `vᵀv` is the same contiguous `vector::dot` fold `predict` runs.
        let vt = v.transpose();
        let mut variances = Vec::with_capacity(m);
        for q in 0..m {
            let query = queries.row(q);
            let prior = self.signal_variance * self.kernel.eval(query, query);
            let vq = vt.row(q);
            variances.push((prior - vector::dot(vq, vq)).max(0.0));
        }
        hyperpower_linalg::debug_assert_finite!("gp batch posterior means", &means);
        hyperpower_linalg::debug_assert_finite!("gp batch posterior variances", &variances);
        Ok((means, variances))
    }

    /// Joint posterior over a set of query points (rows of `queries`):
    /// the posterior mean vector and the full posterior covariance matrix.
    ///
    /// This is what Thompson sampling needs — correlated draws over a
    /// candidate grid — and what pointwise [`GpRegressor::predict`] cannot
    /// provide.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the query dimensionality
    /// differs from the training data.
    pub fn predict_joint(
        &self,
        queries: &Matrix,
    ) -> std::result::Result<(Vec<f64>, Matrix), Error> {
        if queries.cols() != self.x_train.cols() {
            return Err(Error::DimensionMismatch {
                expected: format!("queries with {} columns", self.x_train.cols()),
                found: format!("queries with {} columns", queries.cols()),
            });
        }
        let m = queries.rows();
        let n = self.x_train.rows();
        // Cross-covariance K* gathered column-wise (n×m), solved for all
        // queries in one blocked multi-RHS pass — bit-identical per column
        // to the per-query `solve_lower` this loop used to run.
        let mut mean = Vec::with_capacity(m);
        let mut kstar = Matrix::zeros(n, m);
        for i in 0..m {
            let k_star: Vec<f64> = self
                .kernel
                .cross(queries.row(i), &self.x_train)
                .into_iter()
                .map(|v| v * self.signal_variance)
                .collect();
            mean.push(self.y_mean + vector::dot(&k_star, &self.alpha));
            for (r, v) in k_star.into_iter().enumerate() {
                kstar[(r, i)] = v;
            }
        }
        let v = self.chol.solve_lower_columns(&kstar)?;
        let vt = v.transpose();
        hyperpower_linalg::debug_assert_finite!("gp joint posterior mean", &mean);
        let cov = Matrix::from_fn(m, m, |i, j| {
            let prior = self.signal_variance * self.kernel.eval(queries.row(i), queries.row(j));
            prior - vector::dot(vt.row(i), vt.row(j))
        });
        Ok((mean, cov))
    }

    /// Draws one correlated sample from the joint posterior at `queries`
    /// (Thompson sampling). The posterior covariance is factored with
    /// jitter escalation; `standard_normals` must supply `queries.rows()`
    /// i.i.d. N(0,1) values (the caller owns the RNG so this crate stays
    /// generic over randomness sources).
    ///
    /// # Errors
    ///
    /// Propagates [`Error::DimensionMismatch`] and numerical failures.
    ///
    /// # Panics
    ///
    /// Panics if `standard_normals.len() != queries.rows()`.
    pub fn sample_posterior(
        &self,
        queries: &Matrix,
        standard_normals: &[f64],
    ) -> std::result::Result<Vec<f64>, Error> {
        assert_eq!(
            standard_normals.len(),
            queries.rows(),
            "need one standard normal per query point"
        );
        let (mean, cov) = self.predict_joint(queries)?;
        let (chol, _) = hyperpower_linalg::Cholesky::factor_with_jitter(&cov, 1e-10, 12)
            .map_err(Error::Numerical)?;
        let l = chol.factor_l();
        let m = queries.rows();
        let sample: Vec<f64> = (0..m)
            .map(|i| {
                let mut v = mean[i];
                for j in 0..=i {
                    v += l[(i, j)] * standard_normals[j];
                }
                v
            })
            .collect();
        Ok(sample)
    }

    /// Log marginal likelihood of the training data under this model — the
    /// quantity maximised by [`crate::fit_gp_hyperparams`].
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal_likelihood
    }

    /// Number of training observations.
    pub fn num_observations(&self) -> usize {
        self.x_train.rows()
    }

    /// Dimensionality of the input space.
    pub fn input_dim(&self) -> usize {
        self.x_train.cols()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Arc<dyn Kernel> {
        &self.kernel
    }

    /// The observation-noise variance.
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// The signal variance that scales the kernel.
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{Matern52, SquaredExponential};

    fn toy_gp() -> GpRegressor {
        let x = Matrix::from_vec(4, 1, vec![-1.0, 0.0, 1.0, 2.0]).unwrap();
        let y = [1.0, 0.0, 1.0, 4.0];
        GpRegressor::fit(
            SquaredExponential::new(1.0).into_kernel(),
            1.0,
            1e-6,
            &x,
            &y,
        )
        .unwrap()
    }

    #[test]
    fn single_point_posterior_closed_form() {
        // With one observation the posterior mean at the observed point is
        // m + k/(k+σ²)·(y − m) = y when σ² → 0 (m = y here so mean = y).
        let x = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
        let y = [2.0];
        let gp = GpRegressor::fit(
            SquaredExponential::new(1.0).into_kernel(),
            1.0,
            1e-8,
            &x,
            &y,
        )
        .unwrap();
        let p = gp.predict(&[0.0]).unwrap();
        assert!((p.mean - 2.0).abs() < 1e-6);
        assert!(p.variance < 1e-6);
        // Far away: revert to prior mean (= empirical mean = 2) with prior variance.
        let far = gp.predict(&[100.0]).unwrap();
        assert!((far.mean - 2.0).abs() < 1e-9);
        assert!((far.variance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interpolates_training_data() {
        let gp = toy_gp();
        let p = gp.predict(&[1.0]).unwrap();
        assert!((p.mean - 1.0).abs() < 1e-3, "mean {}", p.mean);
    }

    #[test]
    fn variance_shrinks_at_observed_points() {
        let gp = toy_gp();
        assert!(gp.predict(&[0.0]).unwrap().variance < 1e-4);
        assert!(gp.predict(&[5.0]).unwrap().variance > 0.5);
    }

    #[test]
    fn variance_nonnegative_everywhere() {
        let gp = toy_gp();
        for i in -30..30 {
            let p = gp.predict(&[i as f64 * 0.33]).unwrap();
            assert!(p.variance >= 0.0);
            assert!(p.std_dev() >= 0.0);
        }
    }

    #[test]
    fn mismatched_targets_rejected() {
        let x = Matrix::from_vec(2, 1, vec![0.0, 1.0]).unwrap();
        let err =
            GpRegressor::fit(Matern52::new(1.0).into_kernel(), 1.0, 1e-6, &x, &[1.0]).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn empty_training_rejected() {
        let x = Matrix::zeros(0, 1);
        let err =
            GpRegressor::fit(Matern52::new(1.0).into_kernel(), 1.0, 1e-6, &x, &[]).unwrap_err();
        assert!(matches!(err, Error::NoObservations));
    }

    #[test]
    fn invalid_variances_rejected() {
        let x = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
        let k = Matern52::new(1.0).into_kernel();
        assert!(GpRegressor::fit(k.clone(), 0.0, 1e-6, &x, &[1.0]).is_err());
        assert!(GpRegressor::fit(k.clone(), 1.0, -1.0, &x, &[1.0]).is_err());
        assert!(GpRegressor::fit(k, f64::NAN, 1e-6, &x, &[1.0]).is_err());
    }

    #[test]
    fn log_marginal_likelihood_prefers_matching_noise() {
        // Noisy data should get higher evidence with a noise level near the
        // truth than with an absurdly small one.
        let x = Matrix::from_vec(8, 1, (0..8).map(|i| i as f64).collect()).unwrap();
        // y = 0 with +-0.5 alternating "noise".
        let y: Vec<f64> = (0..8)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let k = SquaredExponential::new(3.0).into_kernel();
        let good = GpRegressor::fit(k.clone(), 1.0, 0.25, &x, &y).unwrap();
        let bad = GpRegressor::fit(k, 1.0, 1e-8, &x, &y).unwrap();
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn predict_wrong_dim_is_typed_error() {
        let err = toy_gp().predict(&[0.0, 1.0]).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn joint_posterior_diagonal_matches_pointwise() {
        let gp = toy_gp();
        let queries = Matrix::from_vec(3, 1, vec![-0.5, 0.5, 3.0]).unwrap();
        let (mean, cov) = gp.predict_joint(&queries).unwrap();
        for i in 0..3 {
            let p = gp.predict(queries.row(i)).unwrap();
            assert!((mean[i] - p.mean).abs() < 1e-10);
            assert!((cov[(i, i)] - p.variance).abs() < 1e-8);
        }
        // Covariance is symmetric.
        for i in 0..3 {
            for j in 0..3 {
                assert!((cov[(i, j)] - cov[(j, i)]).abs() < 1e-10);
            }
        }
        // Far from the data, nearby points keep their prior correlation.
        let far = Matrix::from_vec(2, 1, vec![49.5, 50.5]).unwrap();
        let (_, far_cov) = gp.predict_joint(&far).unwrap();
        assert!(far_cov[(0, 1)] > 0.3);
    }

    #[test]
    fn joint_posterior_rejects_wrong_dim() {
        let gp = toy_gp();
        let queries = Matrix::zeros(2, 3);
        assert!(gp.predict_joint(&queries).is_err());
    }

    #[test]
    fn posterior_samples_interpolate_training_data() {
        // At training points with tiny noise, every posterior draw passes
        // (nearly) through the observations.
        let x = Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]).unwrap();
        let y = [0.5, -0.5, 1.5];
        let gp = GpRegressor::fit(
            SquaredExponential::new(1.0).into_kernel(),
            1.0,
            1e-8,
            &x,
            &y,
        )
        .unwrap();
        let normals = [1.3, -0.7, 0.2];
        let sample = gp.sample_posterior(&x, &normals).unwrap();
        for (s, t) in sample.iter().zip(&y) {
            assert!((s - t).abs() < 1e-2, "sample {s} vs observation {t}");
        }
    }

    #[test]
    fn posterior_samples_vary_far_from_data() {
        let gp = toy_gp();
        let queries = Matrix::from_vec(2, 1, vec![50.0, 60.0]).unwrap();
        let a = gp.sample_posterior(&queries, &[1.0, 1.0]).unwrap();
        let b = gp.sample_posterior(&queries, &[-1.0, -1.0]).unwrap();
        // Different normals => different draws in the uncertain region.
        assert!((a[0] - b[0]).abs() > 0.5);
    }

    #[test]
    #[should_panic(expected = "one standard normal per query")]
    fn sample_posterior_wrong_normal_count_panics() {
        let gp = toy_gp();
        let queries = Matrix::from_vec(2, 1, vec![0.0, 1.0]).unwrap();
        let _ = gp.sample_posterior(&queries, &[0.0]);
    }

    #[test]
    fn accessors_report_fit() {
        let gp = toy_gp();
        assert_eq!(gp.num_observations(), 4);
        assert_eq!(gp.input_dim(), 1);
        assert_eq!(gp.noise_variance(), 1e-6);
        assert_eq!(gp.signal_variance(), 1.0);
        assert_eq!(gp.kernel().length_scale(), 1.0);
    }
}
