//! Property-based tests for the Gaussian-process crate.

// Test-support code: strategies build exact values and assert round-trips
// bit-for-bit; panicking helpers are correct in a test harness.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use hyperpower_gp::acquisition::{expected_improvement, normal_cdf, probability_below};
use hyperpower_gp::{GpRegressor, Matern52, SquaredExponential};
use hyperpower_linalg::Matrix;
use proptest::prelude::*;

fn training_set() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (2usize..12).prop_flat_map(|n| {
        (
            proptest::collection::vec(-5.0f64..5.0, n),
            proptest::collection::vec(-2.0f64..2.0, n),
        )
            .prop_map(move |(xs, ys)| (Matrix::from_vec(n, 1, xs).expect("n rows"), ys))
    })
}

proptest! {
    #[test]
    fn gp_variance_nonnegative((x, y) in training_set(), q in -10.0f64..10.0) {
        let gp = GpRegressor::fit(
            Matern52::new(1.0).into_kernel(), 1.0, 1e-4, &x, &y,
        ).unwrap();
        let p = gp.predict(&[q]).unwrap();
        prop_assert!(p.variance >= 0.0);
        prop_assert!(p.mean.is_finite());
    }

    #[test]
    fn gp_variance_small_at_training_points((x, y) in training_set()) {
        let gp = GpRegressor::fit(
            Matern52::new(1.0).into_kernel(), 1.0, 1e-6, &x, &y,
        ).unwrap();
        // Posterior variance at a training input is bounded by (roughly) the
        // noise level, far below the prior variance of 1.
        for i in 0..x.rows() {
            let p = gp.predict(x.row(i)).unwrap();
            prop_assert!(p.variance < 0.1, "variance {} at row {i}", p.variance);
        }
    }

    #[test]
    fn gp_far_field_reverts_to_prior((x, y) in training_set()) {
        let gp = GpRegressor::fit(
            SquaredExponential::new(1.0).into_kernel(), 1.0, 1e-4, &x, &y,
        ).unwrap();
        let p = gp.predict(&[1e4]).unwrap();
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        prop_assert!((p.mean - y_mean).abs() < 1e-6);
        prop_assert!((p.variance - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kernel_matrices_factor_with_jitter((x, _y) in training_set()) {
        // Gram matrices of both kernels are SPD (possibly after jitter).
        for kernel in [Matern52::new(0.5).into_kernel(), SquaredExponential::new(2.0).into_kernel()] {
            let k = kernel.matrix(&x);
            let r = hyperpower_linalg::Cholesky::factor_with_jitter(&k, 1e-10, 12);
            prop_assert!(r.is_ok());
        }
    }

    #[test]
    fn ei_nonnegative(mean in -10.0f64..10.0, std in 0.0f64..5.0, best in -10.0f64..10.0) {
        prop_assert!(expected_improvement(mean, std, best) >= 0.0);
    }

    #[test]
    fn ei_bounded_by_improvement_plus_std(mean in -10.0f64..10.0, std in 0.0f64..5.0, best in -10.0f64..10.0) {
        // EI <= max(best - mean, 0) + std (loose but useful sanity bound:
        // E[max(best - Y, 0)] <= max(best - mean, 0) + E|Y - mean|, and
        // E|Y - mean| = std*sqrt(2/pi) < std).
        let ei = expected_improvement(mean, std, best);
        prop_assert!(ei <= (best - mean).max(0.0) + std + 1e-12);
    }

    #[test]
    fn cdf_in_unit_interval(z in -50.0f64..50.0) {
        let v = normal_cdf(z);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn cdf_symmetry(z in -8.0f64..8.0) {
        prop_assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn gp_posterior_stays_finite_on_adversarial_inputs(
        // Adversarial but valid: extreme-but-finite targets, near-duplicate
        // inputs (ill-conditioned Gram matrices), tiny noise, and kernels at
        // both ends of the sensible length-scale range.
        n in 2usize..10,
        base in -5.0f64..5.0,
        spread in 1e-9f64..1e-3,
        y_scale in prop::sample::select(vec![1e-8f64, 1.0, 1e6, 1e8]),
        length_scale in prop::sample::select(vec![1e-3f64, 1.0, 1e3]),
        q in -1e6f64..1e6,
    ) {
        // Rows cluster within `spread` of `base`: the Gram matrix is close
        // to rank-one, which is exactly where naive solvers blow up.
        let xs: Vec<f64> = (0..n).map(|i| base + spread * i as f64).collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| y_scale * if i.is_multiple_of(2) { 1.0 } else { -1.0 })
            .collect();
        let x = Matrix::from_vec(n, 1, xs).expect("n rows");
        for kernel in [
            Matern52::new(length_scale).into_kernel(),
            SquaredExponential::new(length_scale).into_kernel(),
        ] {
            let gp = GpRegressor::fit(kernel, 1.0, 1e-6, &x, &ys).unwrap();
            let p = gp.predict(&[q]).unwrap();
            prop_assert!(p.mean.is_finite(), "mean {} not finite", p.mean);
            prop_assert!(p.variance.is_finite(), "variance {} not finite", p.variance);
            prop_assert!(p.variance >= 0.0, "variance {} negative", p.variance);
        }
    }

    #[test]
    fn gp_fit_rejects_non_finite_targets((x, mut y) in training_set(), bad in prop::sample::select(vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY])) {
        y[0] = bad;
        let r = GpRegressor::fit(Matern52::new(1.0).into_kernel(), 1.0, 1e-4, &x, &y);
        prop_assert!(r.is_err(), "non-finite target must be a typed error, not a poisoned posterior");
    }

    #[test]
    fn probability_below_monotone_in_threshold(
        mean in -5.0f64..5.0,
        std in 0.01f64..3.0,
        t1 in -10.0f64..10.0,
        dt in 0.0f64..5.0,
    ) {
        let p1 = probability_below(mean, std, t1);
        let p2 = probability_below(mean, std, t1 + dt);
        prop_assert!(p2 >= p1 - 1e-12);
    }
}
