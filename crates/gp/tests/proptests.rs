//! Property-based tests for the Gaussian-process crate.

use hyperpower_gp::acquisition::{expected_improvement, normal_cdf, probability_below};
use hyperpower_gp::{GpRegressor, Kernel, Matern52, SquaredExponential};
use hyperpower_linalg::Matrix;
use proptest::prelude::*;

fn training_set() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (2usize..12).prop_flat_map(|n| {
        (
            proptest::collection::vec(-5.0f64..5.0, n),
            proptest::collection::vec(-2.0f64..2.0, n),
        )
            .prop_map(move |(xs, ys)| (Matrix::from_vec(n, 1, xs).expect("n rows"), ys))
    })
}

proptest! {
    #[test]
    fn gp_variance_nonnegative((x, y) in training_set(), q in -10.0f64..10.0) {
        let gp = GpRegressor::fit(
            Matern52::new(1.0).into_kernel(), 1.0, 1e-4, &x, &y,
        ).unwrap();
        let p = gp.predict(&[q]);
        prop_assert!(p.variance >= 0.0);
        prop_assert!(p.mean.is_finite());
    }

    #[test]
    fn gp_variance_small_at_training_points((x, y) in training_set()) {
        let gp = GpRegressor::fit(
            Matern52::new(1.0).into_kernel(), 1.0, 1e-6, &x, &y,
        ).unwrap();
        // Posterior variance at a training input is bounded by (roughly) the
        // noise level, far below the prior variance of 1.
        for i in 0..x.rows() {
            let p = gp.predict(x.row(i));
            prop_assert!(p.variance < 0.1, "variance {} at row {i}", p.variance);
        }
    }

    #[test]
    fn gp_far_field_reverts_to_prior((x, y) in training_set()) {
        let gp = GpRegressor::fit(
            SquaredExponential::new(1.0).into_kernel(), 1.0, 1e-4, &x, &y,
        ).unwrap();
        let p = gp.predict(&[1e4]);
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        prop_assert!((p.mean - y_mean).abs() < 1e-6);
        prop_assert!((p.variance - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kernel_matrices_factor_with_jitter((x, _y) in training_set()) {
        // Gram matrices of both kernels are SPD (possibly after jitter).
        for kernel in [Matern52::new(0.5).into_kernel(), SquaredExponential::new(2.0).into_kernel()] {
            let k = kernel.matrix(&x);
            let r = hyperpower_linalg::Cholesky::factor_with_jitter(&k, 1e-10, 12);
            prop_assert!(r.is_ok());
        }
    }

    #[test]
    fn ei_nonnegative(mean in -10.0f64..10.0, std in 0.0f64..5.0, best in -10.0f64..10.0) {
        prop_assert!(expected_improvement(mean, std, best) >= 0.0);
    }

    #[test]
    fn ei_bounded_by_improvement_plus_std(mean in -10.0f64..10.0, std in 0.0f64..5.0, best in -10.0f64..10.0) {
        // EI <= max(best - mean, 0) + std (loose but useful sanity bound:
        // E[max(best - Y, 0)] <= max(best - mean, 0) + E|Y - mean|, and
        // E|Y - mean| = std*sqrt(2/pi) < std).
        let ei = expected_improvement(mean, std, best);
        prop_assert!(ei <= (best - mean).max(0.0) + std + 1e-12);
    }

    #[test]
    fn cdf_in_unit_interval(z in -50.0f64..50.0) {
        let v = normal_cdf(z);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn cdf_symmetry(z in -8.0f64..8.0) {
        prop_assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn probability_below_monotone_in_threshold(
        mean in -5.0f64..5.0,
        std in 0.01f64..3.0,
        t1 in -10.0f64..10.0,
        dt in 0.0f64..5.0,
    ) {
        let p1 = probability_below(mean, std, t1);
        let p2 = probability_below(mean, std, t1 + dt);
        prop_assert!(p2 >= p1 - 1e-12);
    }
}
