//! Speedup ratchet for batched GP acquisition scoring.
//!
//! `BENCH_gp.json` at the workspace root commits the facts about the
//! `benches/gp_batch.rs` workload — the corpus checksums (same seeded
//! corpus as the bench, so the committed numbers always describe the same
//! bits), the reference timings, and a *relative* floor: scoring the
//! candidate grid through `posterior_batch` in blocks must stay at least
//! `batch_speedup_floor`× faster than the per-point `predict` loop it
//! replaced, measured side by side on whatever machine runs the test. The
//! speedup only counts because the outputs are bit-identical — that part
//! is asserted here too, on the full grid.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use std::time::Instant;

use hyperpower_gp::{GpRegressor, Matern52};
use hyperpower_linalg::{corpus, Matrix};

const BENCH_FILE: &str = "BENCH_gp.json";

fn bench_text() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(BENCH_FILE);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()))
}

fn committed(key: &str, text: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let start = text
        .find(&pat)
        .unwrap_or_else(|| panic!("{BENCH_FILE} missing key {key}"))
        + pat.len();
    let digits: String = text[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("{BENCH_FILE}: key {key} is not a number"))
}

struct Workload {
    gp: GpRegressor,
    grid: Matrix,
    blocks: Vec<Matrix>,
}

fn workload(text: &str) -> Workload {
    let train_n = committed("train_n", text) as usize;
    let dims = committed("dims", text) as usize;
    let candidates = committed("candidates", text) as usize;
    let block = committed("block", text) as usize;

    let x = corpus::dense(0x6701, train_n, dims);
    let y = corpus::vector(0x6702, train_n);
    let grid = corpus::dense(0x6703, candidates, dims);
    assert_eq!(
        f64::from(corpus::checksum(&x)),
        committed("checksum_train", text),
        "seeded training corpus changed bits: refresh {BENCH_FILE}"
    );
    assert_eq!(
        f64::from(corpus::checksum(&grid)),
        committed("checksum_grid", text),
        "seeded candidate grid changed bits: refresh {BENCH_FILE}"
    );

    let gp = GpRegressor::fit(Matern52::new(0.5).into_kernel(), 1.0, 1e-6, &x, &y)
        .expect("corpus surrogate fit");
    let blocks: Vec<Matrix> = (0..candidates / block)
        .map(|i| {
            let data: Vec<f64> = (i * block..(i + 1) * block)
                .flat_map(|r| grid.row(r).iter().copied())
                .collect();
            Matrix::from_vec(block, dims, data).expect("sized to shape")
        })
        .collect();
    Workload { gp, grid, blocks }
}

/// Best-of-`reps` wall time of `f`, after one warm-up call.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let _ = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let _ = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn batched_scoring_keeps_committed_speedup_over_pointwise() {
    let text = bench_text();
    let floor = committed("batch_speedup_floor", &text);
    let w = workload(&text);

    // Bit-equality first: the speedup only counts for identical numbers.
    let mut pointwise: Vec<(f64, f64)> = Vec::with_capacity(w.grid.rows());
    for i in 0..w.grid.rows() {
        let p = w.gp.predict(w.grid.row(i)).expect("in-domain query");
        pointwise.push((p.mean, p.variance));
    }
    let mut q = 0usize;
    for b in &w.blocks {
        let (means, variances) = w.gp.posterior_batch(b).expect("in-domain block");
        for (m, v) in means.iter().zip(&variances) {
            assert_eq!(
                m.to_bits(),
                pointwise[q].0.to_bits(),
                "mean bits diverged at candidate {q}"
            );
            assert_eq!(
                v.to_bits(),
                pointwise[q].1.to_bits(),
                "variance bits diverged at candidate {q}"
            );
            q += 1;
        }
    }
    assert_eq!(q, w.grid.rows(), "blocks must tile the whole grid");

    let point_secs = best_secs(3, || {
        let mut acc = 0.0f64;
        for i in 0..w.grid.rows() {
            let p = w.gp.predict(w.grid.row(i)).expect("in-domain query");
            acc += p.mean + p.variance;
        }
        acc
    });
    let batch_secs = best_secs(3, || {
        let mut acc = 0.0f64;
        for b in &w.blocks {
            let (means, variances) = w.gp.posterior_batch(b).expect("in-domain block");
            acc += means.iter().sum::<f64>() + variances.iter().sum::<f64>();
        }
        acc
    });

    let speedup = point_secs / batch_secs;
    eprintln!(
        "gp scoring {} candidates: pointwise {point_secs:.4}s, batched \
         {batch_secs:.4}s, speedup {speedup:.2}x (floor {floor}x)",
        w.grid.rows()
    );
    assert!(
        speedup >= floor,
        "batched acquisition speedup regressed: {speedup:.2}x < committed \
         floor {floor}x ({BENCH_FILE})"
    );
}
