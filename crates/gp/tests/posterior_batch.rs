//! `GpRegressor::posterior_batch` is per-point `predict`, bit-for-bit.
//!
//! The batched path exists purely for memory-traffic reasons (one
//! multi-RHS triangular solve per candidate block); any observable
//! divergence from the per-point path would leak into acquisition scores
//! and break the workspace's golden traces. These tests pin bit-equality
//! across block sizes, kernels and training-set sizes that straddle the
//! blocked solver's panel width.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use std::sync::Arc;

use hyperpower_gp::{GpRegressor, Kernel, Matern52, SquaredExponential};
use hyperpower_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn fitted_gp(kernel: Arc<dyn Kernel>, n: usize, d: usize, seed: u64) -> GpRegressor {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Matrix::from_fn(n, d, |_, _| rng.random_range(0.0..1.0));
    let y: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    GpRegressor::fit(kernel, 1.0, 1e-6, &x, &y).expect("synthetic fit")
}

fn assert_batch_matches_pointwise(gp: &GpRegressor, queries: &Matrix) {
    let (means, variances) = gp.posterior_batch(queries).expect("batch posterior");
    assert_eq!(means.len(), queries.rows());
    assert_eq!(variances.len(), queries.rows());
    for q in 0..queries.rows() {
        let p = gp.predict(queries.row(q)).expect("pointwise posterior");
        assert_eq!(
            means[q].to_bits(),
            p.mean.to_bits(),
            "mean bits diverged at query {q} (batch {} vs pointwise {})",
            means[q],
            p.mean
        );
        assert_eq!(
            variances[q].to_bits(),
            p.variance.to_bits(),
            "variance bits diverged at query {q} (batch {} vs pointwise {})",
            variances[q],
            p.variance
        );
    }
}

#[test]
fn batch_equals_pointwise_for_every_block_size_1_to_8() {
    let gp = fitted_gp(Matern52::new(0.5).into_kernel(), 37, 3, 0xBA7C_0001);
    let mut rng = StdRng::seed_from_u64(0xBA7C_0002);
    for block in 1..=8usize {
        let queries = Matrix::from_fn(block, 3, |_, _| rng.random_range(0.0..1.0));
        assert_batch_matches_pointwise(&gp, &queries);
    }
}

#[test]
fn batch_equals_pointwise_across_kernels_and_panel_straddling_sizes() {
    // Training sizes straddle the blocked solver's panel width (32).
    for (seed, n) in [(1u64, 5usize), (2, 31), (3, 32), (4, 33), (5, 70)] {
        for kernel in [
            SquaredExponential::new(0.7).into_kernel(),
            Matern52::new(0.4).into_kernel(),
        ] {
            let gp = fitted_gp(kernel, n, 2, 0xBA7C_0100 + seed);
            let mut rng = StdRng::seed_from_u64(0xBA7C_0200 + seed);
            let queries = Matrix::from_fn(13, 2, |_, _| rng.random_range(-0.2..1.2));
            assert_batch_matches_pointwise(&gp, &queries);
        }
    }
}

#[test]
fn batch_of_one_is_predict() {
    let gp = fitted_gp(
        SquaredExponential::new(1.0).into_kernel(),
        12,
        4,
        0xBA7C_0300,
    );
    let queries = Matrix::from_fn(1, 4, |_, j| 0.1 + 0.2 * j as f64);
    assert_batch_matches_pointwise(&gp, &queries);
}

#[test]
fn batch_rejects_wrong_dimensionality() {
    let gp = fitted_gp(Matern52::new(0.5).into_kernel(), 8, 2, 0xBA7C_0400);
    assert!(gp.posterior_batch(&Matrix::zeros(3, 5)).is_err());
}

#[test]
fn empty_batch_is_empty() {
    let gp = fitted_gp(Matern52::new(0.5).into_kernel(), 8, 2, 0xBA7C_0500);
    let (means, variances) = gp.posterior_batch(&Matrix::zeros(0, 2)).unwrap();
    assert!(means.is_empty());
    assert!(variances.is_empty());
}
