//! Criterion benchmarks of whole pipeline stages: offline profiling +
//! model fitting, one BO proposal step, and a complete (short) optimization
//! run. These bound the real-CPU cost of regenerating the paper's tables.

// Benches are harness code: panicking on a broken setup is correct.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use hyperpower::model::FeatureMap;
use hyperpower::profiler::{fit_models, Profiler};
use hyperpower::{Budget, Method, Mode, Scenario, Session};
use hyperpower_gpu_sim::{Gpu, TrainingCostModel, VirtualClock};

fn bench_profiling(c: &mut Criterion) {
    let scenario = Scenario::mnist_gtx1070();
    c.bench_function("pipeline/profile_50_and_fit", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(scenario.device.clone(), 9);
            let mut clock = VirtualClock::new();
            let data = Profiler::new(50)
                .profile(
                    black_box(&scenario.space),
                    &mut gpu,
                    &mut clock,
                    &TrainingCostModel::default(),
                    13,
                )
                .expect("profiles");
            fit_models(&data, 10, FeatureMap::Linear).expect("fits")
        })
    });
}

fn bench_session(c: &mut Criterion) {
    c.bench_function("pipeline/session_setup_mnist_gtx", |b| {
        b.iter(|| Session::new(black_box(Scenario::mnist_gtx1070()), 3).expect("sets up"))
    });

    let mut session = Session::new(Scenario::mnist_gtx1070(), 4).expect("sets up");
    c.bench_function("pipeline/run_rand_hyperpower_10_evals", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            session
                .run_seeded(
                    Method::Rand,
                    Mode::HyperPower,
                    Budget::Evaluations(10),
                    seed,
                )
                .expect("runs")
        })
    });
    c.bench_function("pipeline/run_hw_ieci_hyperpower_10_evals", |b| {
        let mut seed = 1000;
        b.iter(|| {
            seed += 1;
            session
                .run_seeded(
                    Method::HwIeci,
                    Mode::HyperPower,
                    Budget::Evaluations(10),
                    seed,
                )
                .expect("runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_profiling, bench_session
}
criterion_main!(benches);
