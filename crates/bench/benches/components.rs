//! Criterion micro-benchmarks of the computational building blocks.
//!
//! The paper's speed argument hinges on a cost hierarchy: predictive-model
//! evaluation (nanoseconds) ≪ GP surrogate update (milliseconds) ≪ network
//! training (simulated hours). These benches pin the left side of that
//! hierarchy on real hardware.

// Benches are harness code: panicking on a broken setup is correct.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use hyperpower::model::{FeatureMap, LinearHwModel};
use hyperpower::{Config, SearchSpace};
use hyperpower_gp::acquisition::expected_improvement;
use hyperpower_gp::{fit_gp_hyperparams, FitOptions, GpRegressor, Matern52};
use hyperpower_gpu_sim::{analyze, DeviceProfile};
use hyperpower_linalg::{Cholesky, Matrix};
use hyperpower_nn::sim::{DatasetProfile, TrainingSimulator};
use hyperpower_nn::{ArchSpec, LayerSpec, Network, Tensor, TrainingHyper};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn spd(n: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(7);
    let b = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
    let mut a = b.matmul(&b.transpose()).expect("square");
    a.add_diagonal(n as f64);
    a
}

fn gp_training_data(n: usize) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = Matrix::from_fn(n, 13, |_, _| rng.random_range(0.0..1.0));
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin().abs()).collect();
    (x, y)
}

fn cifar_arch() -> ArchSpec {
    ArchSpec::new(
        (3, 32, 32),
        10,
        vec![
            LayerSpec::conv(48, 5),
            LayerSpec::pool(2),
            LayerSpec::conv(48, 3),
            LayerSpec::pool(2),
            LayerSpec::dense(400),
        ],
    )
    .expect("valid arch")
}

fn bench_linalg(c: &mut Criterion) {
    let a = spd(50);
    c.bench_function("linalg/cholesky_50", |b| {
        b.iter(|| Cholesky::factor(black_box(&a)).expect("SPD"))
    });
    let chol = Cholesky::factor(&a).expect("SPD");
    let rhs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
    c.bench_function("linalg/solve_50", |b| {
        b.iter(|| chol.solve(black_box(&rhs)).expect("sized"))
    });
}

fn bench_gp(c: &mut Criterion) {
    let (x, y) = gp_training_data(30);
    c.bench_function("gp/fit_fixed_hyperparams_30x13", |b| {
        b.iter(|| {
            GpRegressor::fit(
                Matern52::new(0.5).into_kernel(),
                1.0,
                1e-4,
                black_box(&x),
                black_box(&y),
            )
            .expect("fits")
        })
    });
    c.bench_function("gp/fit_marginal_likelihood_30x13", |b| {
        b.iter(|| {
            fit_gp_hyperparams(
                Matern52::new(0.5).into_kernel(),
                black_box(&x),
                black_box(&y),
                FitOptions {
                    restarts: 2,
                    max_evals_per_restart: 80,
                    min_noise_variance: 1e-6,
                },
            )
            .expect("fits")
        })
    });
    let gp = GpRegressor::fit(Matern52::new(0.5).into_kernel(), 1.0, 1e-4, &x, &y).expect("fits");
    let q = vec![0.5; 13];
    c.bench_function("gp/predict_30x13", |b| b.iter(|| gp.predict(black_box(&q))));
    c.bench_function("gp/expected_improvement", |b| {
        b.iter(|| expected_improvement(black_box(0.3), black_box(0.1), black_box(0.25)))
    });
}

fn bench_models(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let z: Vec<Vec<f64>> = (0..100)
        .map(|_| (0..10).map(|_| rng.random_range(1.0..80.0)).collect())
        .collect();
    let y: Vec<f64> = z.iter().map(|r| 40.0 + r.iter().sum::<f64>()).collect();
    c.bench_function("model/fit_kfold_100x10", |b| {
        b.iter(|| {
            LinearHwModel::fit_kfold(black_box(&z), black_box(&y), 10, FeatureMap::Linear)
                .expect("fits")
        })
    });
    let model = LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Linear).expect("fits");
    let q = vec![40.0; 10];
    // The paper's headline: this is the "a-priori constraint evaluation".
    c.bench_function("model/predict_power", |b| {
        b.iter(|| model.predict(black_box(&q)))
    });
}

fn bench_nn(c: &mut Criterion) {
    let spec = ArchSpec::new(
        (1, 28, 28),
        10,
        vec![
            LayerSpec::conv(8, 3),
            LayerSpec::pool(2),
            LayerSpec::dense(32),
        ],
    )
    .expect("valid arch");
    let mut net = Network::from_spec(&spec, 1).expect("builds");
    let input = Tensor::zeros(4, 1, 28, 28);
    c.bench_function("nn/forward_small_cnn_batch4", |b| {
        b.iter(|| net.forward(black_box(&input)))
    });
    let images = vec![0.1f32; 4 * 784];
    let labels = [0usize, 1, 2, 3];
    let hyper = TrainingHyper::new(0.01, 0.9, 1e-4).expect("valid");
    c.bench_function("nn/train_batch_small_cnn_batch4", |b| {
        b.iter(|| net.train_batch(black_box(&images), black_box(&labels), &hyper))
    });

    let sim = TrainingSimulator::new(DatasetProfile::cifar10());
    let arch = cifar_arch();
    c.bench_function("nn/simulate_full_training", |b| {
        b.iter(|| sim.simulate(black_box(&arch), &hyper, 3))
    });
}

fn bench_gpu_sim(c: &mut Criterion) {
    let arch = cifar_arch();
    let gtx = DeviceProfile::gtx_1070();
    c.bench_function("gpu_sim/analyze_cifar_arch", |b| {
        b.iter(|| analyze(black_box(&gtx), black_box(&arch)))
    });
}

fn bench_space(c: &mut Criterion) {
    let space = SearchSpace::cifar10();
    let config = Config::new(vec![0.5; 13]).expect("in range");
    c.bench_function("space/decode_cifar13", |b| {
        b.iter(|| space.decode(black_box(&config)).expect("valid"))
    });
    c.bench_function("space/structural_values_cifar13", |b| {
        b.iter(|| space.structural_values(black_box(&config)).expect("valid"))
    });
}

criterion_group!(
    benches,
    bench_linalg,
    bench_gp,
    bench_models,
    bench_nn,
    bench_gpu_sim,
    bench_space
);
criterion_main!(benches);
