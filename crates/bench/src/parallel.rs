//! Order-preserving parallel map for independent experiment cells.
//!
//! The table/figure harnesses run many fully independent (scenario ×
//! method) cells; each cell is internally deterministic (the executor's
//! byte-identity guarantee), so running cells on threads changes nothing
//! but wall-clock. This helper is the harness-side analogue of the core
//! executor's evaluation pool: round-robin assignment, results returned in
//! input order, panics propagated.

/// Maps `f` over `items` on up to `workers` scoped threads, returning the
/// results in input order (`f` receives the item index and the item).
///
/// With `workers <= 1` or a single item this runs inline, which keeps
/// output ordering of any progress printing intact for sequential runs.
/// A panicking `f` propagates the panic to the caller.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let threads = workers.min(items.len());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                let mut i = t;
                while i < items.len() {
                    mine.push((i, f(i, &items[i])));
                    i += threads;
                }
                mine
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        slots[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let Some(r) = slot else {
                unreachable!("round-robin assignment covers slot {i}");
            };
            r
        })
        .collect()
}

/// Worker-thread count for a harness: an explicit `--workers N` argument,
/// else the `HYPERPOWER_WORKERS` environment variable, else 1.
pub fn workers_from_args(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--workers" {
            if let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    hyperpower::ExecutorOptions::from_env().workers
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_worker_count() {
        let items: Vec<usize> = (0..23).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 4, 8, 32] {
            let got = parallel_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(&[] as &[u8], 4, |_, &x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(&[7u8], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn workers_cli_beats_env_fallback() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(workers_from_args(&args(&["--workers", "3"])), 3);
        assert_eq!(workers_from_args(&args(&["--quick", "--workers", "2"])), 2);
        // Invalid or missing values fall back to the environment default
        // (HYPERPOWER_WORKERS, then 1) — compare against it directly so the
        // test also passes under the CI worker matrix.
        let fallback = hyperpower::ExecutorOptions::from_env().workers;
        assert_eq!(workers_from_args(&args(&["--workers", "zero"])), fallback);
        assert_eq!(workers_from_args(&args(&["--workers"])), fallback);
        assert_eq!(workers_from_args(&args(&["--quick"])), fallback);
    }
}
