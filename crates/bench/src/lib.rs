//! Shared helpers for the HyperPower experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one of the paper's tables or
//! figures (see DESIGN.md §4 for the index); this library holds the small
//! amount of code they share — ASCII scatter plotting, run-matrix helpers
//! and a parallel map for independent experiment cells.

pub mod parallel;
pub mod plot;
