//! Figure 5: predicted vs actual power for the proposed models, on MNIST
//! and CIFAR-10 networks executing on the GTX 1070 (left) and Tegra TX1
//! (right).
//!
//! Alignment along the diagonal indicates good prediction. The models are
//! fitted on 100 profiled configurations (10-fold CV) and evaluated here
//! on 100 *fresh* configurations per pair.

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{Config, Scenario, Session};
use hyperpower_bench::plot::{csv, scatter, Series};
use hyperpower_gpu_sim::Gpu;
use hyperpower_linalg::stats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("FIGURE 5. Actual vs predicted power using the fitted linear models.\n");
    let pairs = [
        (Scenario::mnist_gtx1070(), 'm'),
        (Scenario::cifar10_gtx1070(), 'c'),
        (Scenario::mnist_tegra_tx1(), 'M'),
        (Scenario::cifar10_tegra_tx1(), 'C'),
    ];

    let mut all_series = Vec::new();
    for (scenario, marker) in pairs {
        let name = scenario.name.clone();
        let device = scenario.device.clone();
        let space = scenario.space.clone();
        let session = Session::new(scenario, 31).expect("session setup");
        let mut gpu = Gpu::new(device, 77);
        let mut rng = StdRng::seed_from_u64(99);
        let mut pts = Vec::new();
        let mut actuals = Vec::new();
        let mut predictions = Vec::new();
        for _ in 0..100 {
            let config = Config::random(&mut rng, space.dim());
            let decoded = space.decode(&config).expect("valid");
            let actual = gpu.measure_power(&decoded.arch).get();
            let predicted = session.models().predict_power(&decoded.structural).get();
            pts.push((actual, predicted));
            actuals.push(actual);
            predictions.push(predicted);
        }
        let rmspe = stats::rmspe(&predictions, &actuals).unwrap_or(f64::NAN);
        println!(
            "  {name}: held-out RMSPE {:.2}% over 100 fresh configurations",
            rmspe * 100.0
        );
        all_series.push(Series::new(marker, name, pts));
    }

    // GTX panel.
    println!("\n(left) GTX 1070:");
    print!(
        "{}",
        scatter(
            "diagonal = perfect prediction",
            "actual power [W]",
            "predicted power [W]",
            &all_series[0..2],
            60,
            18,
        )
    );
    // Tegra panel.
    println!("\n(right) Tegra TX1:");
    print!(
        "{}",
        scatter(
            "diagonal = perfect prediction",
            "actual power [W]",
            "predicted power [W]",
            &all_series[2..4],
            60,
            18,
        )
    );

    println!("\n--- CSV ---");
    print!("{}", csv(&all_series));
}
