//! Baseline: grid search vs random search.
//!
//! The paper's introduction asserts that "traditional techniques for
//! hyper-parameter optimization, such as grid search, yield poor results
//! in terms of performance and training time" \[2\]. This harness
//! substantiates the claim on the CIFAR-10/GTX 1070 pair: an exhaustive
//! lattice over 13 dimensions spends its entire budget in a corner of the
//! space, while random search with the same budget covers every dimension.

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::methods::GridSearch;
use hyperpower::{Budget, Method, Mode, Scenario, Session, Trace};
use hyperpower_linalg::stats;

fn best_errors(traces: &[Trace], chance: f64) -> Vec<f64> {
    traces
        .iter()
        .map(|t| t.best_feasible().map(|b| b.error).unwrap_or(chance))
        .collect()
}

fn main() {
    let scenario = Scenario::cifar10_gtx1070();
    let hours = scenario.time_budget_hours;
    let chance = scenario.dataset.chance_error;
    println!(
        "BASELINE: grid search vs random search ({}, {} h budget, 3 runs,\n\
         both with the HyperPower enhancements).\n",
        scenario.name, hours
    );
    let mut session = Session::new(scenario, 23).expect("session setup");

    let mut grid_traces = Vec::new();
    let mut rand_traces = Vec::new();
    for run in 0..3u64 {
        grid_traces.push(
            session
                .run_with_searcher(
                    Box::new(GridSearch::new(2)),
                    Method::Rand, // label only
                    Budget::VirtualHours(hours),
                    400 + run,
                )
                .expect("grid run"),
        );
        rand_traces.push(
            session
                .run_seeded(
                    Method::Rand,
                    Mode::HyperPower,
                    Budget::VirtualHours(hours),
                    400 + run,
                )
                .expect("rand run"),
        );
    }

    let ge = best_errors(&grid_traces, chance);
    let re = best_errors(&rand_traces, chance);
    println!(
        "{:<14} {:>16} {:>18} {:>14}",
        "method", "best error", "samples queried", "evaluations"
    );
    println!(
        "{:<14} {:>15.2}% {:>18.1} {:>14.1}",
        "grid",
        stats::mean(&ge).unwrap_or(f64::NAN) * 100.0,
        grid_traces.iter().map(|t| t.queried() as f64).sum::<f64>() / 3.0,
        grid_traces
            .iter()
            .map(|t| t.evaluations() as f64)
            .sum::<f64>()
            / 3.0,
    );
    println!(
        "{:<14} {:>15.2}% {:>18.1} {:>14.1}",
        "random",
        stats::mean(&re).unwrap_or(f64::NAN) * 100.0,
        rand_traces.iter().map(|t| t.queried() as f64).sum::<f64>() / 3.0,
        rand_traces
            .iter()
            .map(|t| t.evaluations() as f64)
            .sum::<f64>()
            / 3.0,
    );
    println!(
        "\nExpected shape (Bergstra & Bengio's argument, echoed by the paper):\n\
         a 2-level lattice over 13 dimensions has 8192 cells; within the budget\n\
         grid search only visits lattice points whose trailing coordinates never\n\
         move, so effective coverage of the learning-rate/momentum axes is poor\n\
         and its best error trails random search."
    );
}
