//! Calibration diagnostic: the joint distribution of power, memory and
//! achievable error over each scenario's search space.
//!
//! Not a paper artifact — this is the tool used to verify that the
//! simulated platforms make the paper's budgets genuinely selective and
//! that low-error designs exist inside each feasible region (the
//! preconditions for every experiment harness).

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{Config, Scenario};
use hyperpower_gpu_sim::analyze;
use hyperpower_nn::sim::TrainingSimulator;
use hyperpower_nn::TrainingHyper;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 2000;
    for scenario in Scenario::all_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let sim = TrainingSimulator::new(scenario.dataset.clone());
        let good_hyper = TrainingHyper::new(0.012, 0.9, 1e-3).expect("valid");
        let mut powers = Vec::new();
        let mut mems = Vec::new();
        let mut feasible = 0usize;
        let mut best_feasible_err = f64::INFINITY;
        let mut best_overall_err = f64::INFINITY;
        let mut errs_feasible = Vec::new();
        for _ in 0..n {
            let c = Config::random(&mut rng, scenario.space.dim());
            let d = scenario.space.decode(&c).expect("valid space");
            let r = analyze(&scenario.device, &d.arch);
            powers.push(r.power.get());
            mems.push(r.memory.as_gib());
            // Error floor with *good* training hyper-parameters: what a
            // competent optimizer could get from this architecture.
            let err = sim.asymptotic_error(&d.arch, &good_hyper);
            best_overall_err = best_overall_err.min(err);
            let ok = scenario.budgets.satisfied_by(r.power, Some(r.memory));
            if ok {
                feasible += 1;
                errs_feasible.push(err);
                best_feasible_err = best_feasible_err.min(err);
            }
        }
        powers.sort_by(f64::total_cmp);
        mems.sort_by(f64::total_cmp);
        let q = |v: &Vec<f64>, p: f64| v[((v.len() - 1) as f64 * p) as usize];
        println!("== {} ==", scenario.name);
        println!(
            "  power W:  min {:.1}  p25 {:.1}  p50 {:.1}  p75 {:.1}  max {:.1}  (budget {:?})",
            q(&powers, 0.0),
            q(&powers, 0.25),
            q(&powers, 0.5),
            q(&powers, 0.75),
            q(&powers, 1.0),
            scenario.budgets.power
        );
        println!(
            "  mem GiB:  min {:.3}  p50 {:.3}  max {:.3}  (budget {:?})",
            q(&mems, 0.0),
            q(&mems, 0.5),
            q(&mems, 1.0),
            scenario.budgets.memory.map(|m| m.as_gib())
        );
        println!(
            "  feasible: {:.1}%   best-arch error: feasible {:.4} / overall {:.4}",
            100.0 * feasible as f64 / n as f64,
            best_feasible_err,
            best_overall_err
        );
    }
}
