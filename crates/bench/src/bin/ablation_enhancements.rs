//! Ablation: how much of HyperPower's win comes from the predictive
//! models vs from early termination?
//!
//! The paper's Figure 6 bundles both enhancements; this extension
//! separates them. For Rand and HW-IECI on CIFAR-10/GTX 1070 (5 h virtual
//! budget, 3 runs) all four combinations are compared on best feasible
//! error, queried samples and time-to-first-feasible.

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{Budget, Method, Scenario, Session, Trace};
use hyperpower_linalg::stats;

struct Cell {
    label: &'static str,
    use_models: bool,
    use_early: bool,
}

const CELLS: [Cell; 4] = [
    Cell {
        label: "neither (default)",
        use_models: false,
        use_early: false,
    },
    Cell {
        label: "early-term only",
        use_models: false,
        use_early: true,
    },
    Cell {
        label: "models only",
        use_models: true,
        use_early: false,
    },
    Cell {
        label: "both (HyperPower)",
        use_models: true,
        use_early: true,
    },
];

fn summarise(traces: &[Trace], chance: f64) -> (f64, f64, Option<f64>) {
    let best: Vec<f64> = traces
        .iter()
        .map(|t| t.best_feasible().map(|b| b.error).unwrap_or(chance))
        .collect();
    let queried: Vec<f64> = traces.iter().map(|t| t.queried() as f64).collect();
    let first: Vec<f64> = traces
        .iter()
        .filter_map(|t| t.best_error_by_time().first().map(|(t, _)| t / 3600.0))
        .collect();
    (
        stats::mean(&best).unwrap_or(f64::NAN),
        stats::mean(&queried).unwrap_or(f64::NAN),
        stats::mean(&first),
    )
}

fn main() {
    let scenario = Scenario::cifar10_gtx1070();
    let hours = scenario.time_budget_hours;
    let chance = scenario.dataset.chance_error;
    println!(
        "ABLATION: HyperPower enhancements, {} ({} h budget, 3 runs per cell).\n",
        scenario.name, hours
    );
    let mut session = Session::new(scenario, 41).expect("session setup");

    for method in [Method::Rand, Method::HwIeci] {
        println!("{method}:");
        println!(
            "  {:<20} {:>16} {:>16} {:>22}",
            "enhancements", "best error", "samples queried", "first feasible [h]"
        );
        for cell in &CELLS {
            let mut traces = Vec::new();
            for run in 0..3u64 {
                traces.push(
                    session
                        .run_ablation(
                            method,
                            cell.use_models,
                            cell.use_early,
                            Budget::VirtualHours(hours),
                            900 + run,
                        )
                        .expect("run succeeds"),
                );
            }
            let (best, queried, first) = summarise(&traces, chance);
            println!(
                "  {:<20} {:>15.2}% {:>16.1} {:>22}",
                cell.label,
                best * 100.0,
                queried,
                first
                    .map(|f| format!("{f:.2}"))
                    .unwrap_or_else(|| "--".into())
            );
        }
        println!();
    }
    println!("Expected shape: each enhancement helps on its own; the combination dominates (and 'models only' already prevents wasted training of constraint-violating candidates).");
}
