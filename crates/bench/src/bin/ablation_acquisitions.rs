//! Ablation: alternative acquisition functions under HW-IECI-style
//! constraint indicators.
//!
//! The paper commits to Expected Improvement and "leaves the systematic
//! exploration of other acquisition functions for future work" (§3.4).
//! This extension runs that exploration: EI vs Probability of Improvement
//! vs negated Lower Confidence Bound (β = 2), each multiplied by the same
//! hard constraint indicators, on CIFAR-10/GTX 1070 with 50 function
//! evaluations × 5 runs.

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::methods::{
    BaseAcquisition, BoSearcher, ConstraintWeighting, Searcher, ThompsonSearcher,
};
use hyperpower::{Budget, Method, Scenario, Session, Trace};
use hyperpower_linalg::stats;

fn summarise(traces: &[Trace], chance: f64) -> (f64, f64, f64) {
    let best: Vec<f64> = traces
        .iter()
        .map(|t| t.best_feasible().map(|b| b.error).unwrap_or(chance))
        .collect();
    (
        stats::mean(&best).unwrap_or(f64::NAN),
        stats::std_dev(&best).unwrap_or(0.0),
        traces
            .iter()
            .map(|t| t.measured_violations() as f64)
            .sum::<f64>()
            / traces.len() as f64,
    )
}

fn main() {
    let scenario = Scenario::cifar10_gtx1070();
    let chance = scenario.dataset.chance_error;
    println!(
        "ABLATION: acquisition functions under hard constraint indicators\n\
         ({}, 50 evaluations, 5 runs each).\n",
        scenario.name
    );
    let mut session = Session::new(scenario, 19).expect("session setup");

    let variants: [(&str, Option<BaseAcquisition>); 4] = [
        ("EI (paper)", Some(BaseAcquisition::ExpectedImprovement)),
        ("PI", Some(BaseAcquisition::ProbabilityOfImprovement)),
        (
            "LCB (beta=2)",
            Some(BaseAcquisition::LowerConfidenceBound { beta: 2.0 }),
        ),
        ("Thompson", None),
    ];

    println!(
        "{:<14} {:>18} {:>24}",
        "acquisition", "best error (std)", "measured violations/run"
    );
    for (label, base) in variants {
        let mut traces = Vec::new();
        for run in 0..5u64 {
            let searcher: Box<dyn Searcher> = match base {
                Some(base) => Box::new(
                    BoSearcher::new(
                        ConstraintWeighting::Indicator,
                        Some(session.oracle().clone()),
                    )
                    .with_base_acquisition(base),
                ),
                None => Box::new(ThompsonSearcher::new(Some(session.oracle().clone()))),
            };
            traces.push(
                session
                    .run_with_searcher(searcher, Method::HwIeci, Budget::Evaluations(50), 300 + run)
                    .expect("run succeeds"),
            );
        }
        let (mean, std, violations) = summarise(&traces, chance);
        println!(
            "{:<14} {:>10.2}% ({:.2}%) {:>24.1}",
            label,
            mean * 100.0,
            std * 100.0,
            violations
        );
    }
    println!(
        "\nExpected shape: all four land in the same error regime (the constraint\n\
         indicator does the heavy lifting); EI is the safe default, PI greedier,\n\
         LCB more exploratory. All selected samples are predicted-feasible\n\
         (zero a-priori violations, as Fig. 4 center shows); the *measured*\n\
         violations reported here arise because the constrained optimum sits\n\
         on the budget boundary, where the ~6% model RMSPE cuts both ways."
    );
}
