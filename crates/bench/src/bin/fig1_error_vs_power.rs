//! Figure 1: test error vs GPU power for AlexNet variants
//! (CIFAR-10 on the GTX 1070).
//!
//! The paper's motivating observation: for a given accuracy level, power
//! can differ by tens of watts (they report up to 55.01 W — more than a
//! third of the GPU's TDP), so a human expert cannot eyeball the
//! hardware-optimal configuration. This harness samples 200 random
//! configurations, trains each (simulated) and measures its inference
//! power, renders the scatter, and quantifies the iso-accuracy power
//! spread plus the two motivating design points (iso-error power savings,
//! iso-power error reduction).

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{Config, Scenario};
use hyperpower_bench::plot::{csv, scatter, Series};
use hyperpower_gpu_sim::Gpu;
use hyperpower_nn::sim::TrainingSimulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scenario = Scenario::cifar10_gtx1070();
    let sim = TrainingSimulator::new(scenario.dataset.clone());
    let mut gpu = Gpu::new(scenario.device.clone(), 42);
    let mut rng = StdRng::seed_from_u64(1);

    let mut points = Vec::new(); // (power W, error %)
    for i in 0..200u64 {
        let config = Config::random(&mut rng, scenario.space.dim());
        let decoded = scenario.space.decode(&config).expect("valid space");
        let outcome = sim.simulate(&decoded.arch, &decoded.hyper, i);
        let power = gpu.measure_power(&decoded.arch);
        points.push((power.get(), outcome.final_error * 100.0));
    }

    let series = vec![Series::new(
        'o',
        "CIFAR-10 AlexNet variants",
        points.clone(),
    )];
    println!("FIGURE 1. Test error vs GPU power consumption (CIFAR-10, GTX 1070).\n");
    print!(
        "{}",
        scatter(
            "Each point: one random hyper-parameter configuration, trained to completion",
            "GPU power [W]",
            "test error [%]",
            &series,
            72,
            24,
        )
    );

    // Iso-accuracy power spread: among converged configurations, bucket by
    // error and report the largest in-bucket power range.
    let mut best_spread: (f64, f64) = (0.0, 0.0); // (spread W, bucket error %)
    for bucket in 0..16 {
        let lo = 20.0 + bucket as f64 * 2.0;
        let hi = lo + 2.0;
        let bucket_points: Vec<f64> = points
            .iter()
            .filter(|(_, e)| (lo..hi).contains(e))
            .map(|(p, _)| *p)
            .collect();
        if bucket_points.len() >= 2 {
            let min = bucket_points.iter().copied().fold(f64::INFINITY, f64::min);
            let max = bucket_points
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            if max - min > best_spread.0 {
                best_spread = (max - min, (lo + hi) / 2.0);
            }
        }
    }
    println!(
        "\nLargest iso-accuracy power spread: {:.2} W (around {:.0}% error) — the paper reports up to 55.01 W.",
        best_spread.0, best_spread.1
    );

    // Motivating design points vs an AlexNet-like mid reference.
    let reference = scenario
        .space
        .decode(
            &Config::new(vec![
                0.75, 0.9, 0.4, 0.75, 0.9, 0.4, 0.75, 0.9, 0.4, 0.6, 0.5, 0.5, 0.5,
            ])
            .expect("in range"),
        )
        .expect("valid");
    let ref_power = gpu.analyze(&reference.arch).power.get();
    let ref_err = sim
        .simulate(&reference.arch, &reference.hyper, 999)
        .final_error
        * 100.0;
    let iso_error_saving = points
        .iter()
        .filter(|(_, e)| *e <= ref_err)
        .map(|(p, _)| ref_power - p)
        .fold(f64::NEG_INFINITY, f64::max);
    let iso_power_err = points
        .iter()
        .filter(|(p, _)| *p <= ref_power)
        .map(|(_, e)| *e)
        .fold(f64::INFINITY, f64::min);
    println!(
        "Reference (AlexNet-like) config: {ref_power:.1} W at {ref_err:.2}% error.\n\
         Best iso-error power saving found: {iso_error_saving:.2} W (paper: 12.12 W).\n\
         Best iso-power error: {iso_power_err:.2}% vs reference {ref_err:.2}% (paper: 21.16% vs 24.74%).",
    );

    println!("\n--- CSV ---");
    print!("{}", csv(&series));
}
