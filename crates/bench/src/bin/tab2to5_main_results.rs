//! Tables 2–5: the paper's main fixed-runtime comparison.
//!
//! For every device–dataset pair and every method, runs the
//! constraint-unaware Default baseline and the HyperPower variant under
//! the paper's wall-clock budgets (2 h MNIST / 5 h CIFAR-10, virtual
//! time), three paired runs each, and prints:
//!
//! * **Table 2** — mean (std) best feasible test error,
//! * **Table 3** — runtime for HyperPower to reach the default's queried
//!   sample count, with geometric-mean speedup,
//! * **Table 4** — queried-sample counts and increase,
//! * **Table 5** — time to reach the default's best accuracy, with
//!   speedup.
//!
//! Usage: `tab2to5_main_results [--quick] [--workers N]` (`--quick`: one
//! run per cell and quarter-length budgets, for smoke testing;
//! `--workers`: run the 16 independent (pair × method) cells on N threads
//! — the printed tables are bit-identical for every N, only wall-clock
//! changes; defaults to the `HYPERPOWER_WORKERS` environment variable,
//! then 1).

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::report::{format_error_cell, format_scalar_cell, PairedRuns};
use hyperpower::{Budget, Method, Mode, Scenario, Session, Trace};
use hyperpower_bench::parallel::{parallel_map, workers_from_args};

fn run_pairs(
    scenario: &Scenario,
    method: Method,
    runs: usize,
    hours: f64,
    base_seed: u64,
) -> PairedRuns {
    let mut session = Session::new(scenario.clone(), base_seed).expect("session setup");
    let mut default_runs: Vec<Trace> = Vec::new();
    let mut hyperpower_runs: Vec<Trace> = Vec::new();
    for run in 0..runs {
        let seed = base_seed * 1000 + run as u64;
        default_runs.push(
            session
                .run_seeded(method, Mode::Default, Budget::VirtualHours(hours), seed)
                .expect("default run"),
        );
        hyperpower_runs.push(
            session
                .run_seeded(method, Mode::HyperPower, Budget::VirtualHours(hours), seed)
                .expect("hyperpower run"),
        );
    }
    PairedRuns {
        default_runs,
        hyperpower_runs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let workers = workers_from_args(&args);
    let runs = if quick { 1 } else { 5 };
    let budget_scale = if quick { 0.25 } else { 1.0 };

    let scenarios = Scenario::all_pairs();
    let methods = Method::ALL;

    // Each (pair, method) cell builds its own session from its own seed,
    // so the 16 cells are fully independent: running them on threads
    // cannot change any table entry, only the wall-clock.
    let cells: Vec<(usize, usize)> = (0..scenarios.len())
        .flat_map(|si| (0..methods.len()).map(move |mi| (si, mi)))
        .collect();
    eprintln!(
        "running {} (pair x method) cells on {workers} thread(s) ...",
        cells.len()
    );
    let mut computed = parallel_map(&cells, workers, |_, &(si, mi)| {
        let scenario = &scenarios[si];
        eprintln!("running {} / {} ...", scenario.name, methods[mi]);
        let hours = scenario.time_budget_hours * budget_scale;
        run_pairs(
            scenario,
            methods[mi],
            runs,
            hours,
            (si * 10 + mi + 1) as u64,
        )
    })
    .into_iter();

    // results[pair][method], in the cells' row-major order.
    let mut results: Vec<Vec<PairedRuns>> = Vec::new();
    for _ in 0..scenarios.len() {
        let row: Vec<PairedRuns> = computed.by_ref().take(methods.len()).collect();
        results.push(row);
    }

    let pair_names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
    let header = || {
        print!("{:<10}", "Solver");
        for name in &pair_names {
            print!(" | {name:^34}");
        }
        println!();
        print!("{:<10}", "");
        for _ in &pair_names {
            print!(" | {:^16} {:^17}", "Default", "HyperPower");
        }
        println!();
    };

    println!("\nTABLE 2. MEAN BEST TEST ERROR (AND STANDARD DEVIATION) PER METHOD.");
    header();
    for (mi, method) in methods.iter().enumerate() {
        print!("{:<10}", method.to_string());
        for (si, scenario) in scenarios.iter().enumerate() {
            let row = results[si][mi].best_error_row(scenario.dataset.chance_error);
            print!(
                " | {:^16} {:^17}",
                format_error_cell(row.default),
                format_error_cell(row.hyperpower)
            );
        }
        println!();
    }

    println!("\nTABLE 3. RUNTIME (HOURS) FOR HYPERPOWER METHODS TO REACH THE NUMBER OF SAMPLES THAT THEIR EXHAUSTIVE COUNTERPARTS QUERIED.");
    header();
    for (mi, method) in methods.iter().enumerate() {
        print!("{:<10}", method.to_string());
        for scenario_results in results.iter().take(scenarios.len()) {
            let row = scenario_results[mi].runtime_to_samples_row();
            print!(
                " | {:>6} {:>6} {:>9}",
                format_scalar_cell(row.default_hours, ""),
                format_scalar_cell(row.hyperpower_hours, ""),
                format_scalar_cell(row.speedup, "x")
            );
            print!("{}", " ".repeat(11));
        }
        println!();
    }

    println!("\nTABLE 4. INCREASE IN THE NUMBER OF SAMPLES THAT EACH METHOD WAS ABLE TO QUERY.");
    header();
    for (mi, method) in methods.iter().enumerate() {
        print!("{:<10}", method.to_string());
        for scenario_results in results.iter().take(scenarios.len()) {
            let row = scenario_results[mi].sample_count_row();
            print!(
                " | {:>7} {:>8} {:>8}",
                format_scalar_cell(row.default_samples, ""),
                format_scalar_cell(row.hyperpower_samples, ""),
                format_scalar_cell(row.increase, "x")
            );
            print!("{}", " ".repeat(9));
        }
        println!();
    }

    println!("\nTABLE 5. IMPROVEMENT IN RUNTIME (HOURS) TO ACHIEVE THE BEST ACCURACY THAT THE EXHAUSTIVE METHODS DID.");
    header();
    for (mi, method) in methods.iter().enumerate() {
        print!("{:<10}", method.to_string());
        for scenario_results in results.iter().take(scenarios.len()) {
            let row = scenario_results[mi].time_to_accuracy_row();
            print!(
                " | {:>6} {:>6} {:>9}",
                format_scalar_cell(row.default_hours, ""),
                format_scalar_cell(row.hyperpower_hours, ""),
                format_scalar_cell(row.speedup, "x")
            );
            print!("{}", " ".repeat(11));
        }
        println!();
    }

    println!("\n(5 paired runs per cell unless --quick; budgets: 2 h MNIST, 5 h CIFAR-10 of virtual time; '--' = no feasible design found, as in the paper.)");
}
