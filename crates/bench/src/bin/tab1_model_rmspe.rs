//! Table 1: Root Mean Square Percentage Error of the proposed power and
//! memory models, on all four device–dataset pairs.
//!
//! For each pair this profiles `L = 100` random configurations on the
//! simulated platform and fits the linear models of paper Eq. 1–2 with
//! 10-fold cross-validation, then prints the held-out RMSPE next to the
//! value the paper reports. (Tegra cells for memory are `--`: the platform
//! has no memory-measurement API, paper footnote 1.)

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{Scenario, Session};

fn main() {
    // (scenario, paper power RMSPE %, paper memory RMSPE % or None)
    let cells = [
        (Scenario::mnist_gtx1070(), 5.70, Some(4.43)),
        (Scenario::cifar10_gtx1070(), 5.98, Some(4.67)),
        (Scenario::mnist_tegra_tx1(), 6.62, None),
        (Scenario::cifar10_tegra_tx1(), 4.17, None),
    ];

    println!("TABLE 1. ROOT MEAN SQUARE PERCENTAGE ERROR (RMSPE) OF THE PROPOSED POWER AND MEMORY MODELS.");
    println!(
        "{:<22} {:>14} {:>14} {:>15} {:>15}",
        "Pair", "Power (ours)", "Power (paper)", "Memory (ours)", "Memory (paper)"
    );
    for (scenario, paper_power, paper_memory) in cells {
        let name = scenario.name.clone();
        let session = Session::new(scenario, 7).expect("profiling and fitting succeed");
        let power = session.models().power.cv_rmspe() * 100.0;
        let memory = session
            .models()
            .memory
            .as_ref()
            .map(|m| m.cv_rmspe() * 100.0);
        println!(
            "{:<22} {:>13.2}% {:>13.2}% {:>15} {:>15}",
            name,
            power,
            paper_power,
            memory
                .map(|m| format!("{m:.2}%"))
                .unwrap_or_else(|| "--".into()),
            paper_memory
                .map(|m| format!("{m:.2}%"))
                .unwrap_or_else(|| "--".into()),
        );
    }
    println!("\n(L = 100 profiled configurations per pair, 10-fold cross-validation; paper reports <7% everywhere.)");
}
