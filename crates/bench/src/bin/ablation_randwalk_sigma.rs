//! Ablation: Random-Walk step-size (σ₀) sensitivity.
//!
//! The paper singles this out (§5): Rand-Walk's performance "is highly
//! sensitive to the selection of the proper σ₀ value, which defeats the
//! purpose of automated hyper-parameter optimization altogether" — its
//! default Rand-Walk runs failed outright on both CIFAR-10 pairs. This
//! extension sweeps σ₀ over two orders of magnitude on CIFAR-10/GTX 1070
//! (HyperPower mode, 5 h virtual budget, 3 runs each) and shows the
//! sweet-spot behaviour that makes the method fragile.

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::methods::RandomWalk;
use hyperpower::{Budget, Method, Scenario, Session, Trace};
use hyperpower_linalg::stats;

fn summarise(traces: &[Trace], chance: f64) -> (f64, f64, f64) {
    let best: Vec<f64> = traces
        .iter()
        .map(|t| t.best_feasible().map(|b| b.error).unwrap_or(chance))
        .collect();
    let found = traces
        .iter()
        .filter(|t| t.best_feasible().is_some())
        .count();
    (
        stats::mean(&best).unwrap_or(f64::NAN),
        stats::std_dev(&best).unwrap_or(0.0),
        found as f64 / traces.len() as f64,
    )
}

fn main() {
    let scenario = Scenario::cifar10_gtx1070();
    let hours = scenario.time_budget_hours;
    let chance = scenario.dataset.chance_error;
    println!(
        "ABLATION: Rand-Walk step size sigma0 ({}, {} h budget, 3 runs per value).\n",
        scenario.name, hours
    );
    let mut session = Session::new(scenario, 29).expect("session setup");

    println!(
        "{:>8} {:>18} {:>22}",
        "sigma0", "best error (std)", "runs finding feasible"
    );
    for sigma in [0.01, 0.03, 0.06, 0.12, 0.25, 0.5, 1.0] {
        let mut traces = Vec::new();
        for run in 0..3u64 {
            traces.push(
                session
                    .run_with_searcher(
                        Box::new(RandomWalk::new(sigma)),
                        Method::RandWalk,
                        Budget::VirtualHours(hours),
                        600 + run,
                    )
                    .expect("run succeeds"),
            );
        }
        let (mean, std, found) = summarise(&traces, chance);
        println!(
            "{sigma:>8.2} {:>10.2}% ({:.2}%) {:>21.0}%",
            mean * 100.0,
            std * 100.0,
            found * 100.0
        );
    }
    println!(
        "\nExpected shape: tiny steps get stuck near the first incumbent, huge steps\n\
         degenerate into (slower) random search; only a narrow middle band performs —\n\
         the sensitivity the paper blames for Rand-Walk's failed default runs."
    );
}
