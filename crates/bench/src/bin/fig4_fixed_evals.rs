//! Figure 4: the four methods under a fixed number of function
//! evaluations (CIFAR-10, GTX 1070, 90 W budget, 50 iterations, 5 runs).
//!
//! * **Left** — best observed feasible test error vs function evaluations
//!   (mean over runs),
//! * **Center** — cumulative constraint-violating samples vs function
//!   evaluations (HW-IECI never selects violating candidates),
//! * **Right** — test error of every individual evaluation (BO methods
//!   concentrate in high-performance regions; random methods scatter).

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{
    Budget, ConstraintOracle, Method, Mode, SampleKind, Scenario, SearchSpace, Session, Trace,
};
use hyperpower_bench::plot::{csv, scatter, Series};

const RUNS: usize = 5;

fn mean_best_curve(traces: &[Trace], evals_budget: usize) -> Vec<(f64, f64)> {
    // Mean over runs of the best-so-far error at each evaluation index.
    let mut out = Vec::new();
    for eval in 1..=evals_budget {
        let mut values = Vec::new();
        for t in traces {
            let curve = t.best_error_by_evaluation();
            // Best error at or before `eval`, if the run has one.
            if let Some((_, e)) = curve.iter().rev().find(|(i, _)| *i <= eval) {
                values.push(*e);
            }
        }
        if !values.is_empty() {
            out.push((
                eval as f64,
                values.iter().sum::<f64>() / values.len() as f64 * 100.0,
            ));
        }
    }
    out
}

fn violation_curve(
    traces: &[Trace],
    space: &SearchSpace,
    oracle: &ConstraintOracle,
    evals_budget: usize,
) -> Vec<(f64, f64)> {
    // Mean cumulative count of *selected* constraint-violating samples —
    // the paper's metric: configurations the method chose even though they
    // violate the (a-priori-known) constraints. Model-rejected candidates
    // count for the random methods; for BO methods, evaluated samples
    // whose predicted power/memory violate the budgets count.
    let mut out = Vec::new();
    for eval in 1..=evals_budget {
        let mut total = 0.0;
        for t in traces {
            let mut evals_seen = 0;
            let mut violations = 0;
            for s in &t.samples {
                match s.kind {
                    SampleKind::Rejected => violations += 1,
                    _ => {
                        evals_seen += 1;
                        let z = space
                            .structural_values(&s.config)
                            .expect("config from this space");
                        if !oracle.predicted_feasible(&z) {
                            violations += 1;
                        }
                    }
                }
                if evals_seen >= eval {
                    break;
                }
            }
            total += violations as f64;
        }
        out.push((eval as f64, total / traces.len() as f64));
    }
    out
}

fn per_eval_points(traces: &[Trace]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for t in traces {
        let mut eval = 0;
        for s in &t.samples {
            if s.kind == SampleKind::Rejected {
                continue;
            }
            eval += 1;
            if let Some(e) = s.error {
                out.push((eval as f64, e * 100.0));
            }
        }
    }
    out
}

fn main() {
    // `--pair mnist` runs the paper's MNIST setting (30 iterations);
    // the default is CIFAR-10 (50 iterations).
    let args: Vec<String> = std::env::args().collect();
    let mnist = args.windows(2).any(|w| w[0] == "--pair" && w[1] == "mnist");
    let (scenario, evals) = if mnist {
        (Scenario::mnist_gtx1070(), 30)
    } else {
        (Scenario::cifar10_gtx1070(), 50)
    };
    println!(
        "FIGURE 4. Fixed-evaluation assessment on {} ({} evaluations, {} runs, {:.0} W / {:.2} GiB budgets).\n",
        scenario.name,
        evals,
        RUNS,
        scenario.budgets.power.unwrap_or_default().get(),
        scenario.budgets.memory.unwrap_or_default().as_gib()
    );

    let mut session = Session::new(scenario, 21).expect("session setup");
    let methods = [
        (Method::Rand, 'r'),
        (Method::RandWalk, 'w'),
        (Method::HwCwei, 'c'),
        (Method::HwIeci, 'i'),
    ];

    let mut all_traces: Vec<(Method, char, Vec<Trace>)> = Vec::new();
    for (method, marker) in methods {
        eprintln!("running {method} ...");
        let mut traces = Vec::new();
        for run in 0..RUNS {
            traces.push(
                session
                    .run_seeded(
                        method,
                        Mode::HyperPower,
                        Budget::Evaluations(evals),
                        500 + run as u64,
                    )
                    .expect("run succeeds"),
            );
        }
        all_traces.push((method, marker, traces));
    }

    // Left panel.
    let left: Vec<Series> = all_traces
        .iter()
        .map(|(m, marker, traces)| {
            Series::new(*marker, m.to_string(), mean_best_curve(traces, evals))
        })
        .collect();
    println!("(left) Best observed test error vs function evaluations:");
    print!(
        "{}",
        scatter(
            "mean over runs",
            "function evaluations",
            "best test error [%]",
            &left,
            64,
            16
        )
    );

    // Center panel.
    let space = session.scenario().space.clone();
    let oracle = session.oracle().clone();
    let center: Vec<Series> = all_traces
        .iter()
        .map(|(m, marker, traces)| {
            Series::new(
                *marker,
                m.to_string(),
                violation_curve(traces, &space, &oracle, evals),
            )
        })
        .collect();
    println!("\n(center) Cumulative constraint-violating samples vs function evaluations:");
    print!(
        "{}",
        scatter(
            "model-rejected + measured violations",
            "function evaluations",
            "violating samples",
            &center,
            64,
            16,
        )
    );
    for (m, _, traces) in &all_traces {
        let curve = violation_curve(traces, &space, &oracle, evals);
        let final_violations = curve.last().map(|(_, v)| *v).unwrap_or(0.0);
        println!(
            "  {m}: {final_violations:.1} selected constraint-violating samples/run on average"
        );
    }

    // Right panel.
    let right: Vec<Series> = all_traces
        .iter()
        .map(|(m, marker, traces)| Series::new(*marker, m.to_string(), per_eval_points(traces)))
        .collect();
    println!("\n(right) Test error of each function evaluation:");
    print!(
        "{}",
        scatter(
            "BO methods concentrate in high-performance regions",
            "function evaluation index",
            "test error [%]",
            &right,
            64,
            18,
        )
    );

    println!("\n--- CSV (left panel) ---");
    print!("{}", csv(&left));
}
