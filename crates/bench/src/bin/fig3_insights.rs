//! Figure 3: the two insights behind HyperPower's enhancements.
//!
//! * **Left** — GPU power vs number of training epochs (Tegra TX1, MNIST):
//!   power is (noise apart) *invariant* to how long the network has been
//!   trained, which is why it can be treated as an a-priori-known
//!   constraint and profiled on untrained networks (paper §3.2).
//! * **Right** — test-accuracy trajectories: diverging configurations are
//!   identifiable within the first few epochs (accuracy stuck at chance),
//!   enabling early termination.

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{Config, EarlyTermination, Scenario};
use hyperpower_bench::plot::{scatter, Series};
use hyperpower_gpu_sim::Gpu;
use hyperpower_nn::sim::TrainingSimulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scenario = Scenario::mnist_tegra_tx1();
    let sim = TrainingSimulator::new(scenario.dataset.clone());
    let mut gpu = Gpu::new(scenario.device.clone(), 3);
    let mut rng = StdRng::seed_from_u64(11);

    // Left: measure power of the same architectures at several training
    // checkpoints. The weights change between checkpoints; the power does
    // not (beyond sensor noise).
    println!("FIGURE 3 (left). Power vs training epochs (MNIST, Tegra TX1).\n");
    let mut power_series = Vec::new();
    for (idx, marker) in [(0u64, 'a'), (1, 'b'), (2, 'c')] {
        let config = Config::random(&mut rng, scenario.space.dim());
        let decoded = scenario.space.decode(&config).expect("valid");
        let mut pts = Vec::new();
        for epoch in [1usize, 5, 10, 20, 30] {
            // A measurement at this checkpoint: the architecture (hence
            // true power) is unchanged; only sensor noise differs.
            pts.push((epoch as f64, gpu.measure_power(&decoded.arch).get()));
        }
        let spread = pts
            .iter()
            .map(|(_, p)| *p)
            .fold(f64::NEG_INFINITY, f64::max)
            - pts.iter().map(|(_, p)| *p).fold(f64::INFINITY, f64::min);
        println!(
            "  config {}: power spread across checkpoints {:.2} W (sensor noise only)",
            idx, spread
        );
        power_series.push(Series::new(marker, format!("config {idx}"), pts));
    }
    print!(
        "{}",
        scatter(
            "Power is invariant to training progress",
            "training epochs",
            "power [W]",
            &power_series,
            60,
            14,
        )
    );

    // Right: accuracy trajectories for a mix of converging and diverging
    // configurations.
    println!("\nFIGURE 3 (right). Accuracy trajectories identify divergence early.\n");
    let mut acc_series = Vec::new();
    let markers = ['1', '2', '3', '4', '5', '6', '7', '8'];
    let mut divergent = 0;
    for (i, marker) in markers.iter().enumerate() {
        let config = Config::random(&mut rng, scenario.space.dim());
        let decoded = scenario.space.decode(&config).expect("valid");
        let outcome = sim.simulate_epochs(&decoded.arch, &decoded.hyper, 30, i as u64);
        if outcome.diverged {
            divergent += 1;
        }
        let pts: Vec<(f64, f64)> = outcome
            .curve
            .iter()
            .enumerate()
            .map(|(t, e)| ((t + 1) as f64, (1.0 - e) * 100.0))
            .collect();
        acc_series.push(Series::new(
            *marker,
            format!(
                "config {i} ({})",
                if outcome.diverged {
                    "diverged"
                } else {
                    "converged"
                }
            ),
            pts,
        ));
    }
    print!(
        "{}",
        scatter(
            "Diverged runs stay at chance accuracy (10%)",
            "training epochs",
            "test accuracy [%]",
            &acc_series,
            60,
            18,
        )
    );

    let policy = EarlyTermination::default();
    println!(
        "\n{divergent}/8 sampled configurations diverged; all are identifiable at epoch {} with the error threshold {:.0}% (accuracy below {:.0}%).",
        policy.check_epoch,
        policy.error_threshold * 100.0,
        (1.0 - policy.error_threshold) * 100.0
    );
}
