//! Ablation: linear vs quadratic predictive-model features.
//!
//! The paper (§3.3) deliberately uses models *linear* in the structural
//! hyper-parameters and defers non-linear formulations to its follow-up
//! work (NeuralPower \[10\]). This extension quantifies what the quadratic
//! feature map buys on each device–dataset pair, at the same `L = 100`
//! profiling budget.

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::model::FeatureMap;
use hyperpower::profiler::{fit_models, Profiler};
use hyperpower::Scenario;
use hyperpower_gpu_sim::{Gpu, TrainingCostModel, VirtualClock};

fn main() {
    println!("ABLATION: predictive-model feature maps (10-fold CV RMSPE, L = 100).\n");
    println!(
        "{:<22} {:>14} {:>14} {:>16} {:>16}",
        "Pair", "Power lin", "Power quad", "Memory lin", "Memory quad"
    );
    for scenario in Scenario::all_pairs() {
        let mut gpu = Gpu::new(scenario.device.clone(), 5);
        let mut clock = VirtualClock::new();
        let cost = TrainingCostModel::default();
        let data = Profiler::new(scenario.profiling_samples)
            .profile(&scenario.space, &mut gpu, &mut clock, &cost, 55)
            .expect("profiling succeeds");
        let linear = fit_models(&data, 10, FeatureMap::Linear).expect("linear fit");
        let quad = fit_models(&data, 10, FeatureMap::Quadratic).expect("quadratic fit");
        let fmt = |v: Option<f64>| {
            v.map(|r| format!("{:.2}%", r * 100.0))
                .unwrap_or_else(|| "--".into())
        };
        println!(
            "{:<22} {:>14} {:>14} {:>16} {:>16}",
            scenario.name,
            fmt(Some(linear.power.cv_rmspe())),
            fmt(Some(quad.power.cv_rmspe())),
            fmt(linear.memory.as_ref().map(|m| m.cv_rmspe())),
            fmt(quad.memory.as_ref().map(|m| m.cv_rmspe())),
        );
    }
    println!("\nExpected shape: quadratic features shave some residual, but the linear models are already in the usable (<10%) range — supporting the paper's choice of the cheapest formulation.");
}
