//! Figure 6: the benefit of the power/memory models and early termination.
//!
//! Best test error on the CIFAR-10 network (GTX 1070) against total
//! hyper-parameter-optimization runtime, for all four methods: solid
//! (HyperPower, enhancements on) vs dotted (Default/exhaustive,
//! enhancements off), 5-hour virtual budget. All solid curves should lie
//! to the left of the dotted ones.

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{Budget, Method, Mode, Scenario, Session, Trace};
use hyperpower_bench::plot::{csv, scatter, Series};

fn staircase(trace: &Trace, horizon_hours: f64) -> Vec<(f64, f64)> {
    // Densified best-error-vs-time staircase for plotting.
    let raw = trace.best_error_by_time();
    let mut out = Vec::new();
    let mut best: Option<f64> = None;
    let mut next = raw.iter().peekable();
    let steps = 120;
    for step in 0..=steps {
        let t = horizon_hours * step as f64 / steps as f64;
        while let Some((ts, e)) = next.peek() {
            if *ts <= t * 3600.0 {
                best = Some(*e);
                next.next();
            } else {
                break;
            }
        }
        if let Some(b) = best {
            out.push((t, b * 100.0));
        }
    }
    out
}

fn main() {
    let scenario = Scenario::cifar10_gtx1070();
    let hours = scenario.time_budget_hours;
    println!(
        "FIGURE 6. Best test error vs optimization runtime ({}, {hours} h budget).\n\
         Solid = HyperPower (models + early termination); dotted = exhaustive default.\n",
        scenario.name
    );

    let mut session = Session::new(scenario, 61).expect("session setup");
    let methods = [
        (Method::Rand, 'r', 'R'),
        (Method::RandWalk, 'w', 'W'),
        (Method::HwCwei, 'c', 'C'),
        (Method::HwIeci, 'i', 'I'),
    ];

    let mut series = Vec::new();
    for (method, solid, dotted) in methods {
        eprintln!("running {method} ...");
        let hp = session
            .run_seeded(method, Mode::HyperPower, Budget::VirtualHours(hours), 700)
            .expect("run succeeds");
        let def = session
            .run_seeded(method, Mode::Default, Budget::VirtualHours(hours), 700)
            .expect("run succeeds");
        let hp_curve = staircase(&hp, hours);
        let def_curve = staircase(&def, hours);
        let first = |c: &Vec<(f64, f64)>| c.first().map(|(t, _)| *t);
        println!(
            "  {method}: first feasible design at {} (HyperPower) vs {} (default); final best {:.2}% vs {}",
            first(&hp_curve).map(|t| format!("{t:.2} h")).unwrap_or_else(|| "--".into()),
            first(&def_curve).map(|t| format!("{t:.2} h")).unwrap_or_else(|| "--".into()),
            hp_curve.last().map(|(_, e)| *e).unwrap_or(f64::NAN),
            def_curve
                .last()
                .map(|(_, e)| format!("{e:.2}%"))
                .unwrap_or_else(|| "--".into()),
        );
        series.push(Series::new(
            solid,
            format!("{method} (HyperPower)"),
            hp_curve,
        ));
        series.push(Series::new(
            dotted,
            format!("{method} (default)"),
            def_curve,
        ));
    }

    println!();
    print!(
        "{}",
        scatter(
            "lower-left is better; solid curves lead dotted ones",
            "optimization runtime [h]",
            "best test error [%]",
            &series,
            72,
            22,
        )
    );

    println!("\n--- CSV ---");
    print!("{}", csv(&series));
}
