//! Minimal ASCII scatter/line plotting for terminal-rendered figures.
//!
//! The paper's figures are scatter and line plots; these helpers render
//! the same series as fixed-size character rasters so every `fig*` binary
//! can show the *shape* of the result directly in the terminal (the raw
//! series are also printed as CSV for external plotting).

/// A labelled point series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Single-character marker used in the raster.
    pub marker: char,
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(marker: char, label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            marker,
            label: label.into(),
            points,
        }
    }
}

/// Renders series onto a `width`×`height` character raster with axis
/// annotations. Later series overwrite earlier ones on collisions.
///
/// Returns an empty string if no series contains a finite point.
pub fn scatter(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    let finite: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if finite.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &finite {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if x_max <= x_min {
        x_max = x_min + 1.0;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }

    let mut raster = vec![vec![' '; width]; height];
    for s in series {
        for (x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            raster[row][col.min(width - 1)] = s.marker;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("  {title}\n"));
    out.push_str(&format!("  y: {y_label}  [{y_min:.4} .. {y_max:.4}]\n"));
    for row in raster {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("  x: {x_label}  [{x_min:.4} .. {x_max:.4}]\n"));
    for s in series {
        out.push_str(&format!("  {} = {}\n", s.marker, s.label));
    }
    out
}

/// Prints a series as CSV lines (`label,x,y`) for external plotting.
pub fn csv(series: &[Series]) -> String {
    let mut out = String::from("series,x,y\n");
    for s in series {
        for (x, y) in &s.points {
            out.push_str(&format!("{},{x},{y}\n", s.label));
        }
    }
    out
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn scatter_renders_markers_and_ranges() {
        let s = vec![Series::new('o', "a", vec![(0.0, 0.0), (1.0, 1.0)])];
        let plot = scatter("t", "x", "y", &s, 20, 10);
        assert!(plot.contains('o'));
        assert!(plot.contains("[0.0000 .. 1.0000]"));
        assert!(plot.contains("o = a"));
    }

    #[test]
    fn scatter_empty_is_empty() {
        let s = vec![Series::new('o', "a", vec![])];
        assert!(scatter("t", "x", "y", &s, 20, 10).is_empty());
    }

    #[test]
    fn scatter_handles_degenerate_ranges() {
        let s = vec![Series::new('x', "a", vec![(2.0, 3.0), (2.0, 3.0)])];
        let plot = scatter("t", "x", "y", &s, 10, 5);
        assert!(plot.contains('x'));
    }

    #[test]
    fn csv_lists_all_points() {
        let s = vec![Series::new('o', "a", vec![(1.0, 2.0), (3.0, 4.0)])];
        let out = csv(&s);
        assert!(out.contains("a,1,2"));
        assert!(out.contains("a,3,4"));
    }
}
