//! Loaders for the real dataset file formats.
//!
//! The synthetic generators are the default substrate (no dataset files
//! ship with this reproduction), but a user who *has* the real files can
//! load them through these parsers and run the whole pipeline on actual
//! MNIST/CIFAR-10:
//!
//! * [`load_idx_images`] / [`load_idx_labels`] — the IDX format of the
//!   original MNIST distribution (`train-images-idx3-ubyte` etc.),
//! * [`load_cifar10_batch`] — the CIFAR-10 binary batch format
//!   (`data_batch_1.bin` etc.),
//! * [`mnist_from_idx`] / [`cifar10_from_batches`] — assemble a
//!   [`Dataset`] from the raw parts.
//!
//! All parsers work on in-memory byte slices (callers do the I/O), which
//! keeps them trivially testable.

use std::fmt;

use crate::Dataset;

/// Errors produced when parsing dataset files.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The magic number does not match the expected IDX type.
    BadMagic {
        /// Expected magic value.
        expected: u32,
        /// Found magic value.
        found: u32,
    },
    /// The buffer ended before the declared payload.
    Truncated {
        /// Bytes required by the header.
        expected: usize,
        /// Bytes available.
        found: usize,
    },
    /// Declared dimensions are unusable (e.g. zero-sized images).
    BadDimensions(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadMagic { expected, found } => {
                write!(
                    f,
                    "bad magic number: expected {expected:#010x}, found {found:#010x}"
                )
            }
            ParseError::Truncated { expected, found } => {
                write!(f, "file truncated: need {expected} bytes, have {found}")
            }
            ParseError::BadDimensions(msg) => write!(f, "bad dimensions: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// IDX magic for 3-D unsigned-byte tensors (images).
const IDX_IMAGES_MAGIC: u32 = 0x0000_0803;
/// IDX magic for 1-D unsigned-byte tensors (labels).
const IDX_LABELS_MAGIC: u32 = 0x0000_0801;

fn read_u32(bytes: &[u8], offset: usize) -> Result<u32, ParseError> {
    let end = offset + 4;
    if bytes.len() < end {
        return Err(ParseError::Truncated {
            expected: end,
            found: bytes.len(),
        });
    }
    Ok(u32::from_be_bytes([
        bytes[offset],
        bytes[offset + 1],
        bytes[offset + 2],
        bytes[offset + 3],
    ]))
}

/// Parses an IDX3 image file (`magic, count, rows, cols, pixels…`).
///
/// Returns `(images, rows, cols)` with pixels scaled to `[0, 1]` `f32`,
/// flattened per example in row-major order.
///
/// # Errors
///
/// Returns a [`ParseError`] on bad magic, truncation or zero dimensions.
pub fn load_idx_images(bytes: &[u8]) -> Result<(Vec<f32>, usize, usize), ParseError> {
    let magic = read_u32(bytes, 0)?;
    if magic != IDX_IMAGES_MAGIC {
        return Err(ParseError::BadMagic {
            expected: IDX_IMAGES_MAGIC,
            found: magic,
        });
    }
    let count = read_u32(bytes, 4)? as usize;
    let rows = read_u32(bytes, 8)? as usize;
    let cols = read_u32(bytes, 12)? as usize;
    if rows == 0 || cols == 0 {
        return Err(ParseError::BadDimensions(format!("{rows}x{cols} image")));
    }
    let needed = 16 + count * rows * cols;
    if bytes.len() < needed {
        return Err(ParseError::Truncated {
            expected: needed,
            found: bytes.len(),
        });
    }
    let images = bytes[16..needed]
        .iter()
        .map(|b| *b as f32 / 255.0)
        .collect();
    Ok((images, rows, cols))
}

/// Parses an IDX1 label file (`magic, count, labels…`).
///
/// # Errors
///
/// Returns a [`ParseError`] on bad magic or truncation.
pub fn load_idx_labels(bytes: &[u8]) -> Result<Vec<usize>, ParseError> {
    let magic = read_u32(bytes, 0)?;
    if magic != IDX_LABELS_MAGIC {
        return Err(ParseError::BadMagic {
            expected: IDX_LABELS_MAGIC,
            found: magic,
        });
    }
    let count = read_u32(bytes, 4)? as usize;
    let needed = 8 + count;
    if bytes.len() < needed {
        return Err(ParseError::Truncated {
            expected: needed,
            found: bytes.len(),
        });
    }
    Ok(bytes[8..needed].iter().map(|b| *b as usize).collect())
}

/// Number of bytes per record in a CIFAR-10 binary batch:
/// 1 label byte + 3×32×32 pixel bytes.
pub const CIFAR10_RECORD_BYTES: usize = 1 + 3 * 32 * 32;

/// Parses one CIFAR-10 binary batch file: a sequence of records, each a
/// label byte followed by 3072 pixel bytes in CHW order.
///
/// Returns `(images, labels)` with pixels scaled to `[0, 1]` `f32`.
///
/// # Errors
///
/// Returns [`ParseError::Truncated`] if the buffer is not a whole number
/// of records, and [`ParseError::BadDimensions`] on labels ≥ 10.
pub fn load_cifar10_batch(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), ParseError> {
    if !bytes.len().is_multiple_of(CIFAR10_RECORD_BYTES) {
        return Err(ParseError::Truncated {
            expected: bytes.len().div_ceil(CIFAR10_RECORD_BYTES) * CIFAR10_RECORD_BYTES,
            found: bytes.len(),
        });
    }
    let count = bytes.len() / CIFAR10_RECORD_BYTES;
    let mut images = Vec::with_capacity(count * 3072);
    let mut labels = Vec::with_capacity(count);
    for record in bytes.chunks_exact(CIFAR10_RECORD_BYTES) {
        let label = record[0] as usize;
        if label >= 10 {
            return Err(ParseError::BadDimensions(format!(
                "label {label} out of range for CIFAR-10"
            )));
        }
        labels.push(label);
        images.extend(record[1..].iter().map(|b| *b as f32 / 255.0));
    }
    Ok((images, labels))
}

/// Assembles an MNIST [`Dataset`] from parsed IDX train/test parts.
///
/// # Errors
///
/// Returns [`ParseError::BadDimensions`] if image and label counts
/// disagree or the image shapes differ between splits.
pub fn mnist_from_idx(
    train_images: &[u8],
    train_labels: &[u8],
    test_images: &[u8],
    test_labels: &[u8],
) -> Result<Dataset, ParseError> {
    let (train_px, rows, cols) = load_idx_images(train_images)?;
    let train_y = load_idx_labels(train_labels)?;
    let (test_px, trows, tcols) = load_idx_images(test_images)?;
    let test_y = load_idx_labels(test_labels)?;
    if (rows, cols) != (trows, tcols) {
        return Err(ParseError::BadDimensions(format!(
            "train {rows}x{cols} vs test {trows}x{tcols}"
        )));
    }
    if train_px.len() != train_y.len() * rows * cols || test_px.len() != test_y.len() * rows * cols
    {
        return Err(ParseError::BadDimensions(
            "image/label counts disagree".into(),
        ));
    }
    Ok(Dataset::from_parts(
        1, rows, cols, 10, train_px, train_y, test_px, test_y,
    ))
}

/// Assembles a CIFAR-10 [`Dataset`] from parsed binary batches.
///
/// # Errors
///
/// Propagates batch parse errors; requires at least one training batch.
pub fn cifar10_from_batches(
    train_batches: &[&[u8]],
    test_batch: &[u8],
) -> Result<Dataset, ParseError> {
    if train_batches.is_empty() {
        return Err(ParseError::BadDimensions("no training batches".into()));
    }
    let mut train_px = Vec::new();
    let mut train_y = Vec::new();
    for batch in train_batches {
        let (px, y) = load_cifar10_batch(batch)?;
        train_px.extend(px);
        train_y.extend(y);
    }
    let (test_px, test_y) = load_cifar10_batch(test_batch)?;
    Ok(Dataset::from_parts(
        3, 32, 32, 10, train_px, train_y, test_px, test_y,
    ))
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::Split;

    /// Builds a valid IDX3 buffer with the given images.
    fn idx3(count: usize, rows: usize, cols: usize, pixel: u8) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend(IDX_IMAGES_MAGIC.to_be_bytes());
        out.extend((count as u32).to_be_bytes());
        out.extend((rows as u32).to_be_bytes());
        out.extend((cols as u32).to_be_bytes());
        out.extend(std::iter::repeat_n(pixel, count * rows * cols));
        out
    }

    fn idx1(labels: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend(IDX_LABELS_MAGIC.to_be_bytes());
        out.extend((labels.len() as u32).to_be_bytes());
        out.extend_from_slice(labels);
        out
    }

    #[test]
    fn idx_images_roundtrip() {
        let buf = idx3(2, 3, 4, 255);
        let (px, rows, cols) = load_idx_images(&buf).unwrap();
        assert_eq!((rows, cols), (3, 4));
        assert_eq!(px.len(), 24);
        assert!(px.iter().all(|p| (*p - 1.0).abs() < 1e-6));
    }

    #[test]
    fn idx_labels_roundtrip() {
        let buf = idx1(&[3, 1, 4, 1, 5]);
        assert_eq!(load_idx_labels(&buf).unwrap(), vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = idx3(1, 2, 2, 0);
        buf[3] = 0x99;
        assert!(matches!(
            load_idx_images(&buf).unwrap_err(),
            ParseError::BadMagic { .. }
        ));
        // Labels parser rejects an images file.
        let buf = idx3(1, 2, 2, 0);
        assert!(matches!(
            load_idx_labels(&buf).unwrap_err(),
            ParseError::BadMagic { .. }
        ));
    }

    #[test]
    fn truncated_rejected() {
        let mut buf = idx3(2, 3, 4, 7);
        buf.truncate(buf.len() - 1);
        assert!(matches!(
            load_idx_images(&buf).unwrap_err(),
            ParseError::Truncated { .. }
        ));
        assert!(matches!(
            load_idx_images(&[1, 2]).unwrap_err(),
            ParseError::Truncated { .. }
        ));
    }

    #[test]
    fn zero_dimensions_rejected() {
        let mut buf = idx3(1, 0, 4, 0);
        // Patch rows = 0 (already 0 via constructor).
        buf.truncate(16);
        assert!(matches!(
            load_idx_images(&buf).unwrap_err(),
            ParseError::BadDimensions(_)
        ));
    }

    fn cifar_record(label: u8, pixel: u8) -> Vec<u8> {
        let mut r = vec![label];
        r.extend(std::iter::repeat_n(pixel, 3072));
        r
    }

    #[test]
    fn cifar_batch_roundtrip() {
        let mut buf = cifar_record(3, 128);
        buf.extend(cifar_record(7, 0));
        let (px, labels) = load_cifar10_batch(&buf).unwrap();
        assert_eq!(labels, vec![3, 7]);
        assert_eq!(px.len(), 2 * 3072);
        assert!((px[0] - 128.0 / 255.0).abs() < 1e-6);
        assert_eq!(px[3072], 0.0);
    }

    #[test]
    fn cifar_partial_record_rejected() {
        let buf = vec![0u8; CIFAR10_RECORD_BYTES + 1];
        assert!(matches!(
            load_cifar10_batch(&buf).unwrap_err(),
            ParseError::Truncated { .. }
        ));
    }

    #[test]
    fn cifar_bad_label_rejected() {
        let buf = cifar_record(12, 0);
        assert!(matches!(
            load_cifar10_batch(&buf).unwrap_err(),
            ParseError::BadDimensions(_)
        ));
    }

    #[test]
    fn mnist_dataset_assembly() {
        let ds = mnist_from_idx(
            &idx3(4, 28, 28, 100),
            &idx1(&[0, 1, 2, 3]),
            &idx3(2, 28, 28, 50),
            &idx1(&[4, 5]),
        )
        .unwrap();
        assert_eq!(ds.image_shape(), (1, 28, 28));
        assert_eq!(ds.num_train(), 4);
        assert_eq!(ds.num_test(), 2);
        assert_eq!(ds.label(Split::Test, 1), 5);
    }

    #[test]
    fn mnist_shape_mismatch_rejected() {
        let err = mnist_from_idx(
            &idx3(1, 28, 28, 0),
            &idx1(&[0]),
            &idx3(1, 14, 14, 0),
            &idx1(&[1]),
        )
        .unwrap_err();
        assert!(matches!(err, ParseError::BadDimensions(_)));
    }

    #[test]
    fn cifar_dataset_assembly() {
        let b1 = cifar_record(1, 10);
        let b2 = cifar_record(2, 20);
        let test = cifar_record(3, 30);
        let ds = cifar10_from_batches(&[&b1, &b2], &test).unwrap();
        assert_eq!(ds.image_shape(), (3, 32, 32));
        assert_eq!(ds.num_train(), 2);
        assert_eq!(ds.num_test(), 1);
        assert_eq!(ds.label(Split::Train, 1), 2);
        assert!(cifar10_from_batches(&[], &test).is_err());
    }

    #[test]
    fn parse_error_display() {
        let e = ParseError::BadMagic {
            expected: 0x803,
            found: 0x801,
        };
        assert!(e.to_string().contains("magic"));
        assert!(ParseError::Truncated {
            expected: 10,
            found: 5
        }
        .to_string()
        .contains("truncated"));
    }
}
