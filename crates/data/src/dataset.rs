/// Which half of a dataset to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// The training examples.
    Train,
    /// The held-out test examples.
    Test,
}

/// An in-memory image-classification dataset with a train/test split.
///
/// Images are stored flattened in CHW order (`channels × height × width`
/// per example), as `f32` in `[0, 1]`. Labels are class indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    channels: usize,
    height: usize,
    width: usize,
    num_classes: usize,
    train_images: Vec<f32>,
    train_labels: Vec<usize>,
    test_images: Vec<f32>,
    test_labels: Vec<usize>,
}

impl Dataset {
    /// Assembles a dataset from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths are inconsistent with the image shape
    /// and label counts, or if any label is out of range.
    #[allow(clippy::too_many_arguments)] // mirrors the on-disk layout: shape, classes, then the four buffers
    pub fn from_parts(
        channels: usize,
        height: usize,
        width: usize,
        num_classes: usize,
        train_images: Vec<f32>,
        train_labels: Vec<usize>,
        test_images: Vec<f32>,
        test_labels: Vec<usize>,
    ) -> Self {
        let px = channels * height * width;
        assert_eq!(
            train_images.len(),
            train_labels.len() * px,
            "train image buffer inconsistent with labels"
        );
        assert_eq!(
            test_images.len(),
            test_labels.len() * px,
            "test image buffer inconsistent with labels"
        );
        assert!(
            train_labels
                .iter()
                .chain(&test_labels)
                .all(|l| *l < num_classes),
            "label out of range"
        );
        Dataset {
            channels,
            height,
            width,
            num_classes,
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    /// Image shape as `(channels, height, width)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Number of pixels (times channels) per example.
    pub fn example_len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of training examples.
    pub fn num_train(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test examples.
    pub fn num_test(&self) -> usize {
        self.test_labels.len()
    }

    /// Number of examples in `split`.
    pub fn len(&self, split: Split) -> usize {
        match split {
            Split::Train => self.num_train(),
            Split::Test => self.num_test(),
        }
    }

    /// Returns `true` if `split` holds no examples.
    pub fn is_empty(&self, split: Split) -> bool {
        self.len(split) == 0
    }

    /// Borrows the pixels of example `index` in `split`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for the split.
    pub fn image(&self, split: Split, index: usize) -> &[f32] {
        let px = self.example_len();
        let (buf, n) = match split {
            Split::Train => (&self.train_images, self.num_train()),
            Split::Test => (&self.test_images, self.num_test()),
        };
        assert!(index < n, "example index {index} out of bounds ({n})");
        &buf[index * px..(index + 1) * px]
    }

    /// Label of example `index` in `split`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for the split.
    pub fn label(&self, split: Split, index: usize) -> usize {
        match split {
            Split::Train => self.train_labels[index],
            Split::Test => self.test_labels[index],
        }
    }

    /// Iterates over `split` in contiguous mini-batches of at most
    /// `batch_size` examples (the final batch may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn batches(&self, split: Split, batch_size: usize) -> BatchIter<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        BatchIter {
            dataset: self,
            split,
            batch_size,
            cursor: 0,
        }
    }
}

/// A contiguous mini-batch view into a [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct Batch<'a> {
    /// Flattened images, `labels.len() × example_len` values in CHW order.
    pub images: &'a [f32],
    /// Class labels, one per example.
    pub labels: &'a [usize],
}

impl Batch<'_> {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the batch holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Iterator over mini-batches, produced by [`Dataset::batches`].
#[derive(Debug)]
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    split: Split,
    batch_size: usize,
    cursor: usize,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = Batch<'a>;

    fn next(&mut self) -> Option<Batch<'a>> {
        let n = self.dataset.len(self.split);
        if self.cursor >= n {
            return None;
        }
        let start = self.cursor;
        let end = (start + self.batch_size).min(n);
        self.cursor = end;
        let px = self.dataset.example_len();
        let (images, labels) = match self.split {
            Split::Train => (&self.dataset.train_images, &self.dataset.train_labels),
            Split::Test => (&self.dataset.test_images, &self.dataset.test_labels),
        };
        Some(Batch {
            // `cursor`/`end` are clamped to the split length above; the
            // grant covers both slice expressions.
            images: &images[start * px..end * px],
            labels: &labels[start..end],
        })
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        // 2 train + 1 test examples of 1x2x2 images, 2 classes.
        Dataset::from_parts(
            1,
            2,
            2,
            2,
            vec![0.0, 0.1, 0.2, 0.3, 1.0, 1.1, 1.2, 1.3],
            vec![0, 1],
            vec![0.5; 4],
            vec![1],
        )
    }

    #[test]
    fn shapes_and_counts() {
        let d = tiny();
        assert_eq!(d.image_shape(), (1, 2, 2));
        assert_eq!(d.example_len(), 4);
        assert_eq!(d.num_train(), 2);
        assert_eq!(d.num_test(), 1);
        assert_eq!(d.num_classes(), 2);
        assert!(!d.is_empty(Split::Train));
    }

    #[test]
    fn image_and_label_access() {
        let d = tiny();
        assert_eq!(d.image(Split::Train, 1), &[1.0, 1.1, 1.2, 1.3]);
        assert_eq!(d.label(Split::Train, 0), 0);
        assert_eq!(d.label(Split::Test, 0), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn image_out_of_bounds_panics() {
        tiny().image(Split::Test, 1);
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = tiny();
        let batches: Vec<_> = d.batches(Split::Train, 1).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].labels, &[0]);
        assert_eq!(batches[1].labels, &[1]);
    }

    #[test]
    fn final_partial_batch() {
        let d = tiny();
        let batches: Vec<_> = d.batches(Split::Train, 5).collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[0].images.len(), 8);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let d = tiny();
        let _ = d.batches(Split::Train, 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_rejected() {
        Dataset::from_parts(1, 1, 1, 2, vec![0.0], vec![5], vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn bad_buffer_rejected() {
        Dataset::from_parts(1, 2, 2, 2, vec![0.0; 3], vec![0], vec![], vec![]);
    }
}
