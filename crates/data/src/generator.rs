use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Dataset;

/// Parameters of the procedural dataset generator.
///
/// Each class is a smooth random prototype image; every example is its
/// class prototype with a random sub-pixel shift plus i.i.d. pixel noise.
/// The achievable test error of a well-sized classifier grows with
/// `noise_level` and shrinks with prototype separation, which lets the
/// MNIST-like and CIFAR-like presets land in the paper's respective error
/// regimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorOptions {
    /// Image channels (1 for MNIST-like, 3 for CIFAR-like).
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Standard deviation of the additive pixel noise.
    pub noise_level: f64,
    /// Maximum spatial jitter (pixels) applied to each example.
    pub max_shift: usize,
}

impl GeneratorOptions {
    /// Preset matching the paper's MNIST setting: 28×28 grayscale,
    /// 10 classes, low noise.
    pub fn mnist_like() -> Self {
        GeneratorOptions {
            channels: 1,
            height: 28,
            width: 28,
            num_classes: 10,
            noise_level: 0.25,
            max_shift: 2,
        }
    }

    /// Preset matching the paper's CIFAR-10 setting: 32×32 RGB,
    /// 10 classes, heavy noise.
    pub fn cifar10_like() -> Self {
        GeneratorOptions {
            channels: 3,
            height: 32,
            width: 32,
            num_classes: 10,
            noise_level: 0.9,
            max_shift: 3,
        }
    }
}

/// Generates an MNIST-like dataset (28×28×1, 10 classes, easy).
///
/// See [`synthetic_dataset`] for the generation procedure.
pub fn mnist_like(seed: u64, num_train: usize, num_test: usize) -> Dataset {
    synthetic_dataset(GeneratorOptions::mnist_like(), seed, num_train, num_test)
}

/// Generates a CIFAR-like dataset (32×32×3, 10 classes, hard).
///
/// See [`synthetic_dataset`] for the generation procedure.
pub fn cifar10_like(seed: u64, num_train: usize, num_test: usize) -> Dataset {
    synthetic_dataset(GeneratorOptions::cifar10_like(), seed, num_train, num_test)
}

/// Generates a procedural class-conditional dataset.
///
/// Class prototypes are sums of a few random 2-D cosine waves per channel
/// (smooth, band-limited patterns that convolutions can pick up). Each
/// example applies a random cyclic shift of up to `max_shift` pixels and
/// adds Gaussian pixel noise of standard deviation `noise_level`, then
/// clamps to `[0, 1]`.
///
/// Deterministic for a given `(options, seed, num_train, num_test)` tuple.
///
/// # Panics
///
/// Panics if `options.num_classes` is zero or the image has zero size.
pub fn synthetic_dataset(
    options: GeneratorOptions,
    seed: u64,
    num_train: usize,
    num_test: usize,
) -> Dataset {
    assert!(options.num_classes > 0, "need at least one class");
    assert!(
        options.channels * options.height * options.width > 0,
        "image must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let prototypes: Vec<Vec<f32>> = (0..options.num_classes)
        .map(|_| class_prototype(&mut rng, &options))
        .collect();

    let make_split = |count: usize, rng: &mut StdRng| {
        let px = options.channels * options.height * options.width;
        let mut images = Vec::with_capacity(count * px);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let label = i % options.num_classes;
            labels.push(label);
            render_example(rng, &options, &prototypes[label], &mut images);
        }
        (images, labels)
    };

    let (train_images, train_labels) = make_split(num_train, &mut rng);
    let (test_images, test_labels) = make_split(num_test, &mut rng);

    Dataset::from_parts(
        options.channels,
        options.height,
        options.width,
        options.num_classes,
        train_images,
        train_labels,
        test_images,
        test_labels,
    )
}

/// A smooth random prototype: per channel, a sum of 3 random cosine waves.
fn class_prototype(rng: &mut StdRng, opt: &GeneratorOptions) -> Vec<f32> {
    let mut proto = vec![0.0f32; opt.channels * opt.height * opt.width];
    for c in 0..opt.channels {
        let waves: Vec<(f64, f64, f64, f64)> = (0..3)
            .map(|_| {
                (
                    rng.random_range(0.5..3.0),                   // fy
                    rng.random_range(0.5..3.0),                   // fx
                    rng.random_range(0.0..std::f64::consts::TAU), // phase
                    rng.random_range(0.5..1.0),                   // amplitude
                )
            })
            .collect();
        for y in 0..opt.height {
            for x in 0..opt.width {
                let mut v = 0.0;
                for (fy, fx, phase, amp) in &waves {
                    let ty = y as f64 / opt.height as f64;
                    let tx = x as f64 / opt.width as f64;
                    v += amp * (std::f64::consts::TAU * (fy * ty + fx * tx) + phase).cos();
                }
                // Normalise to roughly [0, 1].
                let idx = (c * opt.height + y) * opt.width + x;
                proto[idx] = (0.5 + v / 6.0).clamp(0.0, 1.0) as f32;
            }
        }
    }
    proto
}

/// Renders one example: cyclic shift of the prototype plus pixel noise.
fn render_example(rng: &mut StdRng, opt: &GeneratorOptions, proto: &[f32], out: &mut Vec<f32>) {
    let shift_range = opt.max_shift as i64;
    let (dy, dx) = if shift_range > 0 {
        (
            rng.random_range(-shift_range..=shift_range),
            rng.random_range(-shift_range..=shift_range),
        )
    } else {
        (0, 0)
    };
    for c in 0..opt.channels {
        for y in 0..opt.height {
            for x in 0..opt.width {
                let sy = (y as i64 + dy).rem_euclid(opt.height as i64) as usize;
                let sx = (x as i64 + dx).rem_euclid(opt.width as i64) as usize;
                let base = proto[(c * opt.height + sy) * opt.width + sx];
                let noise = standard_normal(rng) * opt.noise_level;
                out.push((base as f64 + noise).clamp(0.0, 1.0) as f32);
            }
        }
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::Split;

    #[test]
    fn mnist_like_shape_and_balance() {
        let d = mnist_like(1, 100, 50);
        assert_eq!(d.image_shape(), (1, 28, 28));
        assert_eq!(d.num_classes(), 10);
        // Labels cycle through classes => balanced.
        let mut counts = [0usize; 10];
        for i in 0..d.num_train() {
            counts[d.label(Split::Train, i)] += 1;
        }
        assert_eq!(counts, [10; 10]);
    }

    #[test]
    fn cifar_like_shape() {
        let d = cifar10_like(2, 20, 10);
        assert_eq!(d.image_shape(), (3, 32, 32));
        assert_eq!(d.example_len(), 3 * 32 * 32);
    }

    #[test]
    fn pixels_in_unit_interval() {
        let d = cifar10_like(3, 30, 10);
        for i in 0..d.num_train() {
            assert!(d
                .image(Split::Train, i)
                .iter()
                .all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = mnist_like(7, 20, 10);
        let b = mnist_like(7, 20, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = mnist_like(7, 20, 10);
        let b = mnist_like(8, 20, 10);
        assert_ne!(a, b);
    }

    #[test]
    fn same_class_examples_more_similar_than_cross_class() {
        // The signal must dominate enough for learning to be possible:
        // average intra-class distance < average inter-class distance.
        let d = mnist_like(11, 100, 0);
        let dist = |a: &[f32], b: &[f32]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| ((x - y) * (x - y)) as f64)
                .sum::<f64>()
        };
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..40 {
            for j in 0..i {
                let dd = dist(d.image(Split::Train, i), d.image(Split::Train, j));
                if d.label(Split::Train, i) == d.label(Split::Train, j) {
                    intra = (intra.0 + dd, intra.1 + 1);
                } else {
                    inter = (inter.0 + dd, inter.1 + 1);
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            intra_mean < inter_mean,
            "intra {intra_mean} should be < inter {inter_mean}"
        );
    }

    #[test]
    fn cifar_noisier_than_mnist() {
        // The CIFAR-like preset must be harder: its intra/inter separation
        // ratio should be worse than the MNIST-like preset's.
        fn separation(d: &Dataset) -> f64 {
            let dist = |a: &[f32], b: &[f32]| -> f64 {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| ((x - y) * (x - y)) as f64)
                    .sum::<f64>()
                    / a.len() as f64
            };
            let (mut intra, mut ni) = (0.0, 0);
            let (mut inter, mut nx) = (0.0, 0);
            for i in 0..30 {
                for j in 0..i {
                    let dd = dist(d.image(Split::Train, i), d.image(Split::Train, j));
                    if d.label(Split::Train, i) == d.label(Split::Train, j) {
                        intra += dd;
                        ni += 1;
                    } else {
                        inter += dd;
                        nx += 1;
                    }
                }
            }
            (inter / nx as f64) / (intra / ni as f64)
        }
        let m = mnist_like(5, 60, 0);
        let c = cifar10_like(5, 60, 0);
        assert!(separation(&m) > separation(&c));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        let opt = GeneratorOptions {
            num_classes: 0,
            ..GeneratorOptions::mnist_like()
        };
        synthetic_dataset(opt, 0, 1, 1);
    }
}
