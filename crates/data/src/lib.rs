//! Synthetic image-classification datasets for the HyperPower reproduction.
//!
//! The paper trains AlexNet variants on MNIST and CIFAR-10 with Caffe. Real
//! dataset files are not available in this environment, so this crate
//! generates *procedural* stand-ins that exercise exactly the same code
//! path — multi-class image tensors fed through convolutional networks:
//!
//! * [`mnist_like`] — 28×28×1 images, 10 classes, "easy" (well-trained
//!   networks reach ≈1% test error, matching the paper's MNIST regime),
//! * [`cifar10_like`] — 32×32×3 images, 10 classes, "hard" (test error
//!   saturates around ≈20%, matching the paper's CIFAR-10 regime).
//!
//! Each class is defined by a random smooth prototype image; samples are
//! the prototype plus per-sample spatial jitter and pixel noise. Difficulty
//! is controlled by the noise-to-signal ratio. Every generator takes an
//! explicit seed and is fully deterministic.
//!
//! Users who have the *real* MNIST/CIFAR-10 files can load them instead
//! through the parsers in [`idx`].
//!
//! # Examples
//!
//! ```
//! use hyperpower_data::mnist_like;
//!
//! let ds = mnist_like(42, 128, 64);
//! assert_eq!(ds.num_train(), 128);
//! assert_eq!(ds.num_test(), 64);
//! assert_eq!(ds.image_shape(), (1, 28, 28));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod generator;
pub mod idx;

pub use dataset::{Batch, BatchIter, Dataset, Split};
pub use generator::{cifar10_like, mnist_like, synthetic_dataset, GeneratorOptions};
