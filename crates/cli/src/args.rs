//! Hand-rolled argument parsing for the `hyperpower` binary.
//!
//! Deliberately dependency-free: the grammar is tiny (one subcommand, a
//! handful of `--key value` options), and keeping it in plain Rust makes
//! the whole workspace buildable from the vendored crate set.

use std::fmt;

use hyperpower::{Budget, Method, Mode};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `hyperpower profile --pair <pair>`: profile the platform and print
    /// the fitted model diagnostics.
    Profile {
        /// Device–dataset pair.
        pair: Pair,
        /// Profiling sample count `L`.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
    /// `hyperpower run --pair <pair> --method <m>`: one optimization run,
    /// printing the trace summary (and optionally a CSV dump).
    Run {
        /// Device–dataset pair.
        pair: Pair,
        /// Search method.
        method: Method,
        /// Enhancement mode.
        mode: Mode,
        /// Stop criterion.
        budget: Budget,
        /// RNG seed.
        seed: u64,
        /// Worker threads for candidate evaluation (`None` ⇒ the
        /// `HYPERPOWER_WORKERS` environment variable, then 1). Never
        /// changes the result, only the wall-clock.
        workers: Option<usize>,
        /// Fault-injection profile name (`none`, `flaky-sensor`,
        /// `oom-heavy`); `None` ⇒ no fault injection.
        fault_profile: Option<String>,
        /// Checkpoint the committed trace to this path during the run.
        checkpoint: Option<String>,
        /// Write the checkpoint every N committed samples (default 1).
        checkpoint_every: usize,
        /// Resume from a checkpoint written by an interrupted run.
        resume: Option<String>,
        /// Write the full per-sample trace as CSV to this path.
        csv: Option<String>,
        /// Refit the constraint models online when measured drift crosses
        /// the threshold.
        recalibrate: bool,
        /// Drift-detection RMSPE threshold (`None` ⇒ the library default).
        drift_threshold: Option<f64>,
        /// Adaptive safety-margin step as a fraction of each budget
        /// (`None` ⇒ disabled).
        safety_margin: Option<f64>,
    },
    /// `hyperpower serve --study <SPEC>...`: host several named studies in
    /// one crash-safe ask–tell server and drive them to completion with
    /// simulated workers.
    Serve {
        /// The studies to host, in command-line order.
        studies: Vec<StudyArg>,
        /// Durability root: every study journals and snapshots under here.
        root: String,
        /// Simulated workers per study per scheduling round.
        workers: usize,
        /// Snapshot (and journal-rotation) cadence in commits.
        snapshot_every: usize,
        /// Reattach to existing journals instead of requiring fresh names.
        resume: bool,
        /// Hedge-deadline base in scheduler-clock seconds: a candidate
        /// whose single lease is older than this (plus seeded jitter) is
        /// speculatively re-dispatched. `Some(0.0)` disables hedging;
        /// `None` keeps the server default.
        hedge_after: Option<f64>,
        /// Per-study token-bucket admission rate in requests per
        /// scheduler-clock second. `Some(0.0)` disables the bucket;
        /// `None` keeps the server default (disabled).
        tenant_rate: Option<f64>,
    },
    /// `hyperpower fsck --root DIR [--salvage]`: scan a study store's
    /// journals and snapshots for integrity defects (corrupt frames,
    /// truncated tails, stale temps, header mismatches), optionally
    /// salvaging by truncating to the last valid frame.
    Fsck {
        /// The store directory to scan.
        root: String,
        /// Repair what determinism makes safe to repair.
        salvage: bool,
    },
    /// `hyperpower help`: usage text.
    Help,
}

/// One `--study NAME:METHOD:EVALS[:SEED[:PRIORITY]]` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyArg {
    /// Study name (journal/snapshot file stem).
    pub name: String,
    /// Search method.
    pub method: Method,
    /// Evaluation budget.
    pub evals: usize,
    /// RNG seed (default 0).
    pub seed: u64,
    /// Shedding priority — higher wins under global backpressure
    /// (default 1).
    pub priority: u32,
}

fn parse_study_arg(s: &str) -> Result<StudyArg, ParseError> {
    let parts: Vec<&str> = s.split(':').collect();
    if !(3..=5).contains(&parts.len()) {
        return Err(ParseError(format!(
            "--study expects NAME:METHOD:EVALS[:SEED[:PRIORITY]], got '{s}'"
        )));
    }
    let name = parts[0].to_string();
    if name.is_empty() {
        return Err(ParseError("--study name must be non-empty".into()));
    }
    let method = parse_method(parts[1])?;
    let evals: usize = parts[2]
        .parse()
        .map_err(|_| ParseError(format!("--study '{s}': EVALS expects an integer")))?;
    if evals == 0 {
        return Err(ParseError(format!("--study '{s}': EVALS must be positive")));
    }
    let seed: u64 = match parts.get(3) {
        Some(raw) => raw
            .parse()
            .map_err(|_| ParseError(format!("--study '{s}': SEED expects an integer")))?,
        None => 0,
    };
    let priority: u32 = match parts.get(4) {
        Some(raw) => raw
            .parse()
            .map_err(|_| ParseError(format!("--study '{s}': PRIORITY expects an integer")))?,
        None => 1,
    };
    Ok(StudyArg {
        name,
        method,
        evals,
        seed,
        priority,
    })
}

/// The paper's device–dataset pairs, as CLI values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pair {
    /// MNIST on GTX 1070.
    MnistGtx,
    /// CIFAR-10 on GTX 1070.
    CifarGtx,
    /// MNIST on Tegra TX1.
    MnistTegra,
    /// CIFAR-10 on Tegra TX1.
    CifarTegra,
}

impl Pair {
    /// All CLI spellings.
    pub const NAMES: [&'static str; 4] = ["mnist-gtx", "cifar-gtx", "mnist-tegra", "cifar-tegra"];
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed by `help` and on parse errors.
pub const USAGE: &str = "\
hyperpower — power- and memory-constrained hyper-parameter optimization

USAGE:
  hyperpower profile --pair <PAIR> [--samples N] [--seed N]
  hyperpower run --pair <PAIR> --method <METHOD> [--mode MODE]
                 [--evals N | --hours H] [--seed N] [--workers N]
                 [--fault-profile NAME] [--checkpoint PATH]
                 [--checkpoint-every N] [--resume PATH] [--csv PATH]
                 [--recalibrate] [--drift-threshold T] [--safety-margin F]
  hyperpower serve --study NAME:METHOD:EVALS[:SEED[:PRIORITY]] ...
                   [--root DIR] [--workers N] [--snapshot-every N]
                   [--resume] [--hedge-after SECS] [--tenant-rate R]
  hyperpower fsck [--root DIR] [--salvage]
  hyperpower help

PAIRS:    mnist-gtx | cifar-gtx | mnist-tegra | cifar-tegra
METHODS:  rand | rand-walk | hw-cwei | hw-ieci
MODES:    default | hyperpower        (default: hyperpower)
BUDGETS:  --evals N (function evaluations) or --hours H (virtual wall
          clock); default: the pair's paper budget (2 h / 5 h).
WORKERS:  --workers N evaluates candidates on N threads. The result is
          bit-identical for every N; only wall-clock changes. Default:
          the HYPERPOWER_WORKERS environment variable, then 1.
FAULTS:   --fault-profile injects a deterministic, seeded fault schedule:
          none | flaky-sensor | oom-heavy | drifting-hw | slow-worker |
          bit-rot. Failed trials are
          retried with backoff charged to virtual time; configurations
          that exhaust their retries are quarantined; drifting-hw also
          biases the power sensor linearly in virtual time.
HEALING:  --recalibrate refits the constraint models online when the
          measured drift RMSPE crosses --drift-threshold (default 0.15).
          --safety-margin F tightens the predicted-feasible region by a
          fraction F of each budget per measured constraint violation
          (and relaxes it again after sustained clean commits). Both are
          deterministic: commits are the only observation points, so the
          trace stays bit-identical across --workers.
RESUME:   --checkpoint PATH persists committed results during the run
          (atomically, every --checkpoint-every commits; default 1).
          --resume PATH restarts an interrupted run from a checkpoint:
          already-evaluated candidates are replayed from the cache and
          the final trace is bit-identical to an uninterrupted run.
SERVER:   serve hosts several named MNIST studies in one crash-safe
          ask-tell server: candidates go out under leases, tells are
          idempotent, and every study is journaled (write-ahead) and
          snapshotted (atomically, every --snapshot-every commits;
          default 8) under --root (default target/study-server). Kill the
          process at any instant and re-run with --resume: each study
          recovers and finishes with the exact bytes of an uninterrupted
          run. PRIORITY (default 1) settles who is shed first under
          global backpressure; higher wins. --hedge-after SECS re-issues
          any candidate whose lease has been silent that long (plus
          seeded jitter) as a speculative duplicate on a healthy worker —
          trace-neutral, first fulfilment wins (0 disables).
          --tenant-rate R admits at most R requests per virtual second
          per study through a token bucket (refused with a typed
          backpressure error, never a stall; 0 disables).
FSCK:     fsck scans every study under --root (default
          target/study-server): journal records and snapshots are
          CRC32-framed, so bit-rot, truncated tails, stale temp files
          and snapshot/journal header mismatches are all detected and
          reported. With --salvage it repairs what determinism makes
          safe: truncate the journal to its last valid frame, sweep
          stale temps, drop a defective snapshot when the journal still
          holds the full history — replay then reconverges to the exact
          committed bytes.
";

fn parse_pair(s: &str) -> Result<Pair, ParseError> {
    match s {
        "mnist-gtx" => Ok(Pair::MnistGtx),
        "cifar-gtx" => Ok(Pair::CifarGtx),
        "mnist-tegra" => Ok(Pair::MnistTegra),
        "cifar-tegra" => Ok(Pair::CifarTegra),
        other => Err(ParseError(format!(
            "unknown pair '{other}' (expected one of: {})",
            Pair::NAMES.join(", ")
        ))),
    }
}

fn parse_method(s: &str) -> Result<Method, ParseError> {
    match s {
        "rand" => Ok(Method::Rand),
        "rand-walk" => Ok(Method::RandWalk),
        "hw-cwei" => Ok(Method::HwCwei),
        "hw-ieci" => Ok(Method::HwIeci),
        other => Err(ParseError(format!(
            "unknown method '{other}' (expected rand, rand-walk, hw-cwei or hw-ieci)"
        ))),
    }
}

fn parse_mode(s: &str) -> Result<Mode, ParseError> {
    match s {
        "default" => Ok(Mode::Default),
        "hyperpower" => Ok(Mode::HyperPower),
        other => Err(ParseError(format!(
            "unknown mode '{other}' (expected default or hyperpower)"
        ))),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("flag {flag} requires a value")))
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] with a user-facing message for unknown
/// subcommands, flags, values, or missing required options.
pub fn parse(args: &[&str]) -> Result<Command, ParseError> {
    let mut it = args.iter().copied();
    let sub = it.next().unwrap_or("help");
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "profile" => {
            let mut pair = None;
            let mut samples = 100usize;
            let mut seed = 0u64;
            while let Some(flag) = it.next() {
                match flag {
                    "--pair" => pair = Some(parse_pair(take_value(flag, &mut it)?)?),
                    "--samples" => {
                        samples = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--samples expects an integer".into()))?
                    }
                    "--seed" => {
                        seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--seed expects an integer".into()))?
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            let pair = pair.ok_or_else(|| ParseError("--pair is required".into()))?;
            if samples == 0 {
                return Err(ParseError("--samples must be positive".into()));
            }
            Ok(Command::Profile {
                pair,
                samples,
                seed,
            })
        }
        "run" => {
            let mut pair = None;
            let mut method = None;
            let mut mode = Mode::HyperPower;
            let mut budget = None;
            let mut seed = 0u64;
            let mut workers = None;
            let mut fault_profile = None;
            let mut checkpoint = None;
            let mut checkpoint_every = 1usize;
            let mut resume = None;
            let mut csv = None;
            let mut recalibrate = false;
            let mut drift_threshold = None;
            let mut safety_margin = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--pair" => pair = Some(parse_pair(take_value(flag, &mut it)?)?),
                    "--method" => method = Some(parse_method(take_value(flag, &mut it)?)?),
                    "--mode" => mode = parse_mode(take_value(flag, &mut it)?)?,
                    "--evals" => {
                        let n: usize = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--evals expects an integer".into()))?;
                        budget = Some(Budget::Evaluations(n));
                    }
                    "--hours" => {
                        let h: f64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--hours expects a number".into()))?;
                        budget = Some(Budget::VirtualHours(h));
                    }
                    "--seed" => {
                        seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--seed expects an integer".into()))?
                    }
                    "--workers" => {
                        let n: usize = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--workers expects an integer".into()))?;
                        if n == 0 {
                            return Err(ParseError("--workers must be positive".into()));
                        }
                        workers = Some(n);
                    }
                    "--fault-profile" => {
                        fault_profile = Some(take_value(flag, &mut it)?.to_string())
                    }
                    "--checkpoint" => checkpoint = Some(take_value(flag, &mut it)?.to_string()),
                    "--checkpoint-every" => {
                        let n: usize = take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--checkpoint-every expects an integer".into())
                        })?;
                        if n == 0 {
                            return Err(ParseError("--checkpoint-every must be positive".into()));
                        }
                        checkpoint_every = n;
                    }
                    "--resume" => resume = Some(take_value(flag, &mut it)?.to_string()),
                    "--csv" => csv = Some(take_value(flag, &mut it)?.to_string()),
                    "--recalibrate" => recalibrate = true,
                    "--drift-threshold" => {
                        let t: f64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--drift-threshold expects a number".into()))?;
                        if !(t.is_finite() && t > 0.0) {
                            return Err(ParseError(
                                "--drift-threshold must be positive and finite".into(),
                            ));
                        }
                        drift_threshold = Some(t);
                    }
                    "--safety-margin" => {
                        let f: f64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--safety-margin expects a number".into()))?;
                        if !(f.is_finite() && f > 0.0 && f < 1.0) {
                            return Err(ParseError(
                                "--safety-margin must be a fraction in (0, 1)".into(),
                            ));
                        }
                        safety_margin = Some(f);
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            let pair = pair.ok_or_else(|| ParseError("--pair is required".into()))?;
            let method = method.ok_or_else(|| ParseError("--method is required".into()))?;
            let budget = budget.unwrap_or(match pair {
                Pair::MnistGtx | Pair::MnistTegra => Budget::VirtualHours(2.0),
                Pair::CifarGtx | Pair::CifarTegra => Budget::VirtualHours(5.0),
            });
            Ok(Command::Run {
                pair,
                method,
                mode,
                budget,
                seed,
                workers,
                fault_profile,
                checkpoint,
                checkpoint_every,
                resume,
                csv,
                recalibrate,
                drift_threshold,
                safety_margin,
            })
        }
        "serve" => {
            let mut studies = Vec::new();
            let mut root = String::from("target/study-server");
            let mut workers = 1usize;
            let mut snapshot_every = 8usize;
            let mut resume = false;
            let mut hedge_after = None;
            let mut tenant_rate = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--study" => studies.push(parse_study_arg(take_value(flag, &mut it)?)?),
                    "--root" => root = take_value(flag, &mut it)?.to_string(),
                    "--hedge-after" => {
                        let s: f64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--hedge-after expects a number".into()))?;
                        if !(s.is_finite() && s >= 0.0) {
                            return Err(ParseError(
                                "--hedge-after must be a non-negative number of seconds".into(),
                            ));
                        }
                        hedge_after = Some(s);
                    }
                    "--tenant-rate" => {
                        let r: f64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--tenant-rate expects a number".into()))?;
                        if !(r.is_finite() && r >= 0.0) {
                            return Err(ParseError(
                                "--tenant-rate must be a non-negative rate per second".into(),
                            ));
                        }
                        tenant_rate = Some(r);
                    }
                    "--workers" => {
                        let n: usize = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--workers expects an integer".into()))?;
                        if n == 0 {
                            return Err(ParseError("--workers must be positive".into()));
                        }
                        workers = n;
                    }
                    "--snapshot-every" => {
                        let n: usize = take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--snapshot-every expects an integer".into())
                        })?;
                        if n == 0 {
                            return Err(ParseError("--snapshot-every must be positive".into()));
                        }
                        snapshot_every = n;
                    }
                    "--resume" => resume = true,
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            if studies.is_empty() {
                return Err(ParseError("at least one --study is required".into()));
            }
            Ok(Command::Serve {
                studies,
                root,
                workers,
                snapshot_every,
                resume,
                hedge_after,
                tenant_rate,
            })
        }
        "fsck" => {
            let mut root = String::from("target/study-server");
            let mut salvage = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--root" => root = take_value(flag, &mut it)?.to_string(),
                    "--salvage" => salvage = true,
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Fsck { root, salvage })
        }
        other => Err(ParseError(format!(
            "unknown subcommand '{other}' (expected profile, run, serve, fsck or help)"
        ))),
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn help_variants() {
        for args in [&[][..], &["help"][..], &["--help"][..], &["-h"][..]] {
            assert_eq!(parse(args).unwrap(), Command::Help);
        }
    }

    #[test]
    fn profile_defaults_and_overrides() {
        let c = parse(&["profile", "--pair", "mnist-gtx"]).unwrap();
        assert_eq!(
            c,
            Command::Profile {
                pair: Pair::MnistGtx,
                samples: 100,
                seed: 0
            }
        );
        let c = parse(&[
            "profile",
            "--pair",
            "cifar-tegra",
            "--samples",
            "50",
            "--seed",
            "7",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Profile {
                pair: Pair::CifarTegra,
                samples: 50,
                seed: 7
            }
        );
    }

    #[test]
    fn run_full_form() {
        let c = parse(&[
            "run",
            "--pair",
            "cifar-gtx",
            "--method",
            "hw-ieci",
            "--mode",
            "default",
            "--evals",
            "25",
            "--seed",
            "3",
            "--workers",
            "4",
            "--csv",
            "/tmp/t.csv",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Run {
                pair: Pair::CifarGtx,
                method: Method::HwIeci,
                mode: Mode::Default,
                budget: Budget::Evaluations(25),
                seed: 3,
                workers: Some(4),
                fault_profile: None,
                checkpoint: None,
                checkpoint_every: 1,
                resume: None,
                csv: Some("/tmp/t.csv".into()),
                recalibrate: false,
                drift_threshold: None,
                safety_margin: None,
            }
        );
    }

    #[test]
    fn self_healing_flags() {
        let c = parse(&[
            "run",
            "--pair",
            "mnist-gtx",
            "--method",
            "hw-ieci",
            "--recalibrate",
            "--drift-threshold",
            "0.2",
            "--safety-margin",
            "0.05",
        ])
        .unwrap();
        let Command::Run {
            recalibrate,
            drift_threshold,
            safety_margin,
            ..
        } = c
        else {
            panic!("expected run");
        };
        assert!(recalibrate);
        assert_eq!(drift_threshold, Some(0.2));
        assert_eq!(safety_margin, Some(0.05));

        // Defaults: healing fully off.
        let c = parse(&["run", "--pair", "mnist-gtx", "--method", "rand"]).unwrap();
        let Command::Run {
            recalibrate,
            drift_threshold,
            safety_margin,
            ..
        } = c
        else {
            panic!("expected run");
        };
        assert!(!recalibrate);
        assert_eq!(drift_threshold, None);
        assert_eq!(safety_margin, None);

        // Out-of-domain values are rejected with specific messages.
        for (flag, bad) in [
            ("--drift-threshold", "0"),
            ("--drift-threshold", "nan"),
            ("--safety-margin", "1.5"),
            ("--safety-margin", "-0.1"),
        ] {
            let err =
                parse(&["run", "--pair", "mnist-gtx", "--method", "rand", flag, bad]).unwrap_err();
            assert!(err.0.contains(flag), "message {:?} names the flag", err.0);
        }
    }

    #[test]
    fn fault_and_resume_flags() {
        let c = parse(&[
            "run",
            "--pair",
            "mnist-gtx",
            "--method",
            "rand",
            "--fault-profile",
            "flaky-sensor",
            "--checkpoint",
            "/tmp/run.ckpt",
            "--checkpoint-every",
            "5",
            "--resume",
            "/tmp/prev.ckpt",
        ])
        .unwrap();
        let Command::Run {
            fault_profile,
            checkpoint,
            checkpoint_every,
            resume,
            ..
        } = c
        else {
            panic!("expected run");
        };
        assert_eq!(fault_profile.as_deref(), Some("flaky-sensor"));
        assert_eq!(checkpoint.as_deref(), Some("/tmp/run.ckpt"));
        assert_eq!(checkpoint_every, 5);
        assert_eq!(resume.as_deref(), Some("/tmp/prev.ckpt"));

        // Defaults: no faults, no checkpointing, write-every-commit.
        let c = parse(&["run", "--pair", "mnist-gtx", "--method", "rand"]).unwrap();
        let Command::Run {
            fault_profile,
            checkpoint,
            checkpoint_every,
            resume,
            ..
        } = c
        else {
            panic!("expected run");
        };
        assert_eq!(fault_profile, None);
        assert_eq!(checkpoint, None);
        assert_eq!(checkpoint_every, 1);
        assert_eq!(resume, None);

        assert!(parse(&[
            "run",
            "--pair",
            "mnist-gtx",
            "--method",
            "rand",
            "--checkpoint-every",
            "0"
        ])
        .unwrap_err()
        .0
        .contains("positive"));
    }

    #[test]
    fn workers_defaults_to_none_and_rejects_bad_values() {
        let c = parse(&["run", "--pair", "mnist-gtx", "--method", "rand"]).unwrap();
        let Command::Run { workers, .. } = c else {
            panic!("expected run");
        };
        assert_eq!(workers, None);
        assert!(parse(&[
            "run",
            "--pair",
            "mnist-gtx",
            "--method",
            "rand",
            "--workers",
            "0"
        ])
        .unwrap_err()
        .0
        .contains("positive"));
        assert!(parse(&[
            "run",
            "--pair",
            "mnist-gtx",
            "--method",
            "rand",
            "--workers",
            "two"
        ])
        .unwrap_err()
        .0
        .contains("integer"));
    }

    #[test]
    fn run_defaults_to_paper_budget_and_hyperpower_mode() {
        let c = parse(&["run", "--pair", "mnist-tegra", "--method", "rand"]).unwrap();
        let Command::Run { mode, budget, .. } = c else {
            panic!("expected run");
        };
        assert_eq!(mode, Mode::HyperPower);
        assert_eq!(budget, Budget::VirtualHours(2.0));
        let c = parse(&["run", "--pair", "cifar-gtx", "--method", "rand"]).unwrap();
        let Command::Run { budget, .. } = c else {
            panic!("expected run");
        };
        assert_eq!(budget, Budget::VirtualHours(5.0));
    }

    #[test]
    fn hours_budget() {
        let c = parse(&[
            "run",
            "--pair",
            "mnist-gtx",
            "--method",
            "rand-walk",
            "--hours",
            "1.5",
        ])
        .unwrap();
        let Command::Run { budget, method, .. } = c else {
            panic!("expected run");
        };
        assert_eq!(budget, Budget::VirtualHours(1.5));
        assert_eq!(method, Method::RandWalk);
    }

    #[test]
    fn error_messages_are_specific() {
        assert!(parse(&["frobnicate"]).unwrap_err().0.contains("subcommand"));
        assert!(parse(&["run", "--method", "rand"])
            .unwrap_err()
            .0
            .contains("--pair is required"));
        assert!(parse(&["run", "--pair", "mnist-gtx"])
            .unwrap_err()
            .0
            .contains("--method is required"));
        assert!(parse(&["run", "--pair", "venus", "--method", "rand"])
            .unwrap_err()
            .0
            .contains("unknown pair"));
        assert!(parse(&["run", "--pair", "mnist-gtx", "--method", "sgd"])
            .unwrap_err()
            .0
            .contains("unknown method"));
        assert!(parse(&["profile", "--pair"])
            .unwrap_err()
            .0
            .contains("requires a value"));
        assert!(parse(&["profile", "--pair", "mnist-gtx", "--samples", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&["profile", "--pair", "mnist-gtx", "--samples", "x"])
            .unwrap_err()
            .0
            .contains("integer"));
    }

    #[test]
    fn serve_parses_studies_and_defaults() {
        let c = parse(&[
            "serve",
            "--study",
            "alpha:rand:6",
            "--study",
            "beta:rand-walk:5:42:3",
            "--root",
            "/tmp/srv",
            "--workers",
            "4",
            "--snapshot-every",
            "2",
            "--resume",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                studies: vec![
                    StudyArg {
                        name: "alpha".into(),
                        method: Method::Rand,
                        evals: 6,
                        seed: 0,
                        priority: 1,
                    },
                    StudyArg {
                        name: "beta".into(),
                        method: Method::RandWalk,
                        evals: 5,
                        seed: 42,
                        priority: 3,
                    },
                ],
                root: "/tmp/srv".into(),
                workers: 4,
                snapshot_every: 2,
                resume: true,
                hedge_after: None,
                tenant_rate: None,
            }
        );

        let c = parse(&["serve", "--study", "solo:hw-cwei:4"]).unwrap();
        let Command::Serve {
            root,
            workers,
            snapshot_every,
            resume,
            hedge_after,
            tenant_rate,
            ..
        } = c
        else {
            panic!("expected serve");
        };
        assert_eq!(root, "target/study-server");
        assert_eq!(workers, 1);
        assert_eq!(snapshot_every, 8);
        assert!(!resume);
        assert_eq!(hedge_after, None);
        assert_eq!(tenant_rate, None);
    }

    #[test]
    fn serve_supervision_flags() {
        let c = parse(&[
            "serve",
            "--study",
            "a:rand:6",
            "--hedge-after",
            "300",
            "--tenant-rate",
            "0.5",
        ])
        .unwrap();
        let Command::Serve {
            hedge_after,
            tenant_rate,
            ..
        } = c
        else {
            panic!("expected serve");
        };
        assert_eq!(hedge_after, Some(300.0));
        assert_eq!(tenant_rate, Some(0.5));

        // Zero is the explicit off switch, not an error.
        let c = parse(&["serve", "--study", "a:rand:6", "--hedge-after", "0"]).unwrap();
        let Command::Serve { hedge_after, .. } = c else {
            panic!("expected serve");
        };
        assert_eq!(hedge_after, Some(0.0));

        for (flag, bad) in [
            ("--hedge-after", "-1"),
            ("--hedge-after", "inf"),
            ("--hedge-after", "soon"),
            ("--tenant-rate", "-0.5"),
            ("--tenant-rate", "nan"),
        ] {
            assert!(
                parse(&["serve", "--study", "a:rand:6", flag, bad]).is_err(),
                "{flag} {bad} must be rejected"
            );
        }
    }

    #[test]
    fn fsck_parses_root_and_salvage() {
        assert_eq!(
            parse(&["fsck"]).unwrap(),
            Command::Fsck {
                root: "target/study-server".into(),
                salvage: false
            }
        );
        assert_eq!(
            parse(&["fsck", "--root", "/tmp/store", "--salvage"]).unwrap(),
            Command::Fsck {
                root: "/tmp/store".into(),
                salvage: true
            }
        );
        assert!(parse(&["fsck", "--frobnicate"]).is_err());
        assert!(parse(&["fsck", "--root"]).unwrap_err().0.contains("value"));
    }

    #[test]
    fn serve_rejects_malformed_studies() {
        assert!(parse(&["serve"]).unwrap_err().0.contains("--study"));
        for bad in [
            "alpha",
            "alpha:rand",
            "alpha:sgd:6",
            "alpha:rand:0",
            "alpha:rand:x",
            ":rand:6",
            "a:rand:6:s",
            "a:rand:6:1:p",
            "a:rand:6:1:2:9",
        ] {
            assert!(
                parse(&["serve", "--study", bad]).is_err(),
                "'{bad}' must be rejected"
            );
        }
        assert!(parse(&["serve", "--study", "a:rand:6", "--workers", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(
            parse(&["serve", "--study", "a:rand:6", "--snapshot-every", "0"])
                .unwrap_err()
                .0
                .contains("positive")
        );
    }

    #[test]
    fn usage_mentions_everything() {
        for name in Pair::NAMES {
            assert!(USAGE.contains(name));
        }
        for m in ["rand", "rand-walk", "hw-cwei", "hw-ieci"] {
            assert!(USAGE.contains(m));
        }
        for f in [
            "flaky-sensor",
            "oom-heavy",
            "drifting-hw",
            "--checkpoint",
            "--resume",
            "--recalibrate",
            "--drift-threshold",
            "--safety-margin",
            "serve",
            "--study",
            "--root",
            "--snapshot-every",
            "--resume",
            "slow-worker",
            "bit-rot",
            "--hedge-after",
            "--tenant-rate",
            "fsck",
            "--salvage",
        ] {
            assert!(USAGE.contains(f), "usage is missing {f}");
        }
    }
}
