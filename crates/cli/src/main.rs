//! `hyperpower` — the command-line face of the reproduction.
//!
//! ```text
//! hyperpower profile --pair cifar-gtx
//! hyperpower run --pair cifar-gtx --method hw-ieci --evals 30 --csv trace.csv
//! ```
//!
//! See `hyperpower help` for the full grammar.

// Experiment binaries are terminal programs: printing results and
// panicking on setup failures are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod args;

use std::path::PathBuf;
use std::process::ExitCode;

use args::{parse, Command, Pair, StudyArg, USAGE};
use std::collections::BTreeMap;

use hyperpower::{
    Budget, Budgets, CheckpointConfig, ConstraintOracle, DriftConfig, EarlyTermination,
    ExecutorOptions, Method, Mode, Objective, RetryPolicy, Scenario, SearchSpace, Session,
    StudySpec,
};
use hyperpower_gpu_sim::{DeviceProfile, FaultProfile, Gpu, TrainingCostModel};
use hyperpower_server::{
    fsck_store, ServerConfig, ServerError, StudyServer, StudySetup, SyntheticObjective,
};

fn scenario_for(pair: Pair) -> Scenario {
    match pair {
        Pair::MnistGtx => Scenario::mnist_gtx1070(),
        Pair::CifarGtx => Scenario::cifar10_gtx1070(),
        Pair::MnistTegra => Scenario::mnist_tegra_tx1(),
        Pair::CifarTegra => Scenario::cifar10_tegra_tx1(),
    }
}

/// Hosts the requested studies in one crash-safe server and drives them
/// to completion with `workers` simulated workers per study per round.
fn serve(
    studies: &[StudyArg],
    root: &str,
    workers: usize,
    snapshot_every: usize,
    resume: bool,
    hedge_after: Option<f64>,
    tenant_rate: Option<f64>,
) -> Result<(), ServerError> {
    let mut config = ServerConfig {
        root: PathBuf::from(root),
        snapshot_every_commits: snapshot_every,
        ..ServerConfig::default()
    };
    if let Some(secs) = hedge_after {
        config.hedge_after_s = secs;
    }
    if let Some(rate) = tenant_rate {
        config.tenant_rate_per_s = rate;
    }
    let mut server = StudyServer::new(config)?;
    // The BO methods screen candidates through the paper's constraint
    // oracle; profile and fit it once per distinct seed.
    let mut oracles: BTreeMap<u64, ConstraintOracle> = BTreeMap::new();
    for arg in studies {
        let oracle = match arg.method {
            Method::HwCwei | Method::HwIeci => {
                if let std::collections::btree_map::Entry::Vacant(slot) = oracles.entry(arg.seed) {
                    let session = Session::new(Scenario::mnist_gtx1070(), arg.seed)
                        .map_err(ServerError::Core)?;
                    println!(
                        "profiled constraint models for seed {} in {:.0} virtual seconds",
                        arg.seed,
                        session.profiling_secs()
                    );
                    slot.insert(session.oracle().clone());
                }
                oracles.get(&arg.seed).cloned()
            }
            Method::Rand | Method::RandWalk => None,
        };
        let setup = StudySetup {
            space: SearchSpace::mnist(),
            gpu: Gpu::new(DeviceProfile::gtx_1070(), arg.seed),
            oracle,
            spec: StudySpec {
                method: arg.method,
                mode: Mode::HyperPower,
                budget: Budget::Evaluations(arg.evals),
                seed: arg.seed,
                budgets: Budgets::default(),
                cost: TrainingCostModel::default(),
                early_termination: Some(EarlyTermination::default()),
                fault_profile: FaultProfile::none(),
                retry: RetryPolicy::default(),
                drift: DriftConfig::default(),
            },
            priority: arg.priority,
        };
        if resume {
            let recovered = server.open_study(&arg.name, setup)?;
            if recovered > 0 {
                println!(
                    "{}: recovered {recovered} committed sample(s) from the journal",
                    arg.name
                );
            }
        } else {
            server.create_study(&arg.name, setup)?;
        }
    }

    let objective = SyntheticObjective;
    let mut now_s = 0.0;
    let mut total_reclaimed = 0usize;
    let mut total_hedged = 0usize;
    loop {
        let mut all_finished = true;
        now_s += 60.0;
        let report = server.tick_hedge(now_s);
        total_reclaimed += report.reclaimed;
        total_hedged += report.hedged.len();
        // Hedged duplicates race the original lease; whichever tell
        // lands first commits, the other resolves as a duplicate.
        for (study, candidate) in report.hedged {
            let result = objective.evaluate(&candidate.decoded, None, candidate.eval_seed)?;
            match server.tell(&study, candidate.lease_id, &result) {
                Ok(_) => {}
                Err(ServerError::Overloaded { .. })
                | Err(ServerError::Backpressure { .. })
                | Err(ServerError::CircuitOpen { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        for arg in studies {
            if server.is_finished(&arg.name)? {
                continue;
            }
            all_finished = false;
            let batch = match server.ask(&arg.name, workers, now_s) {
                Ok(batch) => batch,
                // Backpressure: skip this round, retry once work drains.
                Err(ServerError::Overloaded { .. })
                | Err(ServerError::Backpressure { .. })
                | Err(ServerError::CircuitOpen { .. }) => continue,
                Err(e) => return Err(e),
            };
            for candidate in batch {
                let result = objective.evaluate(&candidate.decoded, None, candidate.eval_seed)?;
                server.tell(&arg.name, candidate.lease_id, &result)?;
            }
        }
        if all_finished {
            break;
        }
    }
    // Supervision summary, printed only when something happened: default
    // (inert) serves keep the legacy output byte-identical.
    if total_reclaimed > 0 || total_hedged > 0 {
        let mut superseded = 0u64;
        for arg in studies {
            let (_, lost) = server.hedge_stats(&arg.name)?;
            superseded += lost;
        }
        println!(
            "supervision: {total_reclaimed} lease(s) reclaimed, {total_hedged} hedged \
             re-dispatch(es), {superseded} superseded"
        );
    }

    for arg in studies {
        let trace = server.trace(&arg.name)?;
        println!(
            "{} / {} / evals {}: {} samples queried, {} evaluated, {:.2} h virtual time",
            arg.name,
            arg.method,
            arg.evals,
            trace.queried(),
            trace.evaluations(),
            trace.total_time_s / 3600.0
        );
        match trace.best_feasible() {
            Some(best) => println!(
                "  best feasible design: {:.2}% test error at {:.1} W",
                best.error * 100.0,
                best.power_w
            ),
            None => println!("  no feasible design found"),
        }
    }
    println!("journals and snapshots under {root}");
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = raw.iter().map(String::as_str).collect();
    let command = match parse(&refs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    match command {
        Command::Help => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Command::Serve {
            studies,
            root,
            workers,
            snapshot_every,
            resume,
            hedge_after,
            tenant_rate,
        } => match serve(
            &studies,
            &root,
            workers,
            snapshot_every,
            resume,
            hedge_after,
            tenant_rate,
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(ServerError::StudyExists(name)) => {
                eprintln!(
                    "error: study {name:?} already has a journal under {root} \
                     (pass --resume to reattach, or pick a fresh --root)"
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Fsck { root, salvage } => match fsck_store(&PathBuf::from(&root), salvage) {
            Ok(report) => {
                println!("{report}");
                if report.clean() {
                    ExitCode::SUCCESS
                } else if salvage && report.recoverable() {
                    // Defects found but every study was repaired back to
                    // a replayable prefix: the store is usable again.
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: cannot scan {root}: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Profile {
            pair,
            samples,
            seed,
        } => {
            let mut scenario = scenario_for(pair);
            scenario.profiling_samples = samples;
            let name = scenario.name.clone();
            match Session::new(scenario, seed) {
                Ok(session) => {
                    println!(
                        "{name}: profiled {samples} configurations in {:.0} virtual seconds",
                        session.profiling_secs()
                    );
                    let models = session.models();
                    println!(
                        "  power model  : RMSPE {:.2}%",
                        models.power.cv_rmspe() * 100.0
                    );
                    match &models.memory {
                        Some(m) => {
                            println!("  memory model : RMSPE {:.2}%", m.cv_rmspe() * 100.0)
                        }
                        None => println!("  memory model : -- (platform has no memory API)"),
                    }
                    if let Some(l) = &models.latency {
                        println!(
                            "  latency model: RMSPE {:.2}% (log-linear)",
                            l.cv_rmspe() * 100.0
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Command::Run {
            pair,
            method,
            mode,
            budget,
            seed,
            workers,
            fault_profile,
            checkpoint,
            checkpoint_every,
            resume,
            csv,
            recalibrate,
            drift_threshold,
            safety_margin,
        } => {
            let scenario = scenario_for(pair);
            let name = scenario.name.clone();
            let chance = scenario.dataset.chance_error;
            let mut session = match Session::new(scenario, seed) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // --workers only changes wall-clock: the trace is bit-identical
            // for every thread count (the flag overrides HYPERPOWER_WORKERS).
            let mut options = match workers {
                Some(w) => ExecutorOptions::default().with_workers(w),
                None => ExecutorOptions::from_env(),
            };
            if let Some(name) = fault_profile {
                match FaultProfile::parse(&name) {
                    Some(profile) => options = options.with_fault_profile(profile),
                    None => {
                        eprintln!(
                            "error: unknown fault profile '{name}' (expected none, \
                             flaky-sensor, oom-heavy, drifting-hw, slow-worker or bit-rot)"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            if recalibrate {
                options = options.with_recalibrate(true);
            }
            if let Some(t) = drift_threshold {
                options = options.with_drift_threshold(t);
            }
            if let Some(f) = safety_margin {
                options = options.with_safety_margin(f);
            }
            if let Some(path) = checkpoint {
                let mut config = CheckpointConfig::every_commit(path);
                config.every_commits = checkpoint_every;
                options = options.with_checkpoint(config);
            }
            if let Some(path) = resume {
                options = options.with_resume_from(path);
            }
            let trace = match session.run_seeded_with(method, mode, budget, seed, &options) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{name} / {method} / {mode}: {} samples queried, {} evaluated, {:.2} h virtual time",
                trace.queried(),
                trace.evaluations(),
                trace.total_time_s / 3600.0
            );
            // Self-healing summary, printed only when something happened:
            // default (inert) runs keep the legacy output byte-identical.
            let recalibrations = trace.recalibration_count();
            let degradation_events = trace.degradation_count();
            if recalibrations > 0 || degradation_events > 0 || trace.final_drift_rmspe().is_some() {
                let cv = session.models().power.cv_rmspe();
                let live = trace
                    .final_drift_rmspe()
                    .map(|r| format!("{:.2}%", r * 100.0))
                    .unwrap_or_else(|| "--".into());
                println!(
                    "self-healing: {recalibrations} recalibration(s), {degradation_events} \
                     degradation(s), live drift RMSPE {live} (profiling cv {:.2}%)",
                    cv * 100.0
                );
            }
            match trace.best_feasible() {
                Some(best) => {
                    println!(
                        "best feasible design: {:.2}% test error at {:.1} W{} (found after {:.2} h)",
                        best.error * 100.0,
                        best.power_w,
                        best.memory_bytes
                            .map(|m| format!(", {:.3} GiB", m as f64 / (1u64 << 30) as f64))
                            .unwrap_or_default(),
                        best.timestamp_s / 3600.0
                    );
                }
                None => println!(
                    "no feasible design found (chance error level is {:.0}%)",
                    chance * 100.0
                ),
            }
            if let Some(path) = csv {
                let file = match std::fs::File::create(&path) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("error: cannot create {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = trace.write_csv(std::io::BufWriter::new(file)) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("trace written to {path}");
            }
            ExitCode::SUCCESS
        }
    }
}
