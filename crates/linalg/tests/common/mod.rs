//! Frozen naive reference kernels — the pre-blocking implementations of
//! `Matrix::matmul`/`gram`/`matvec` and `Cholesky`, copied verbatim at the
//! moment the blocked kernels replaced them.
//!
//! These are the oracles of the accumulation-order contract (DESIGN.md
//! §2a): the blocked kernels in `hyperpower_linalg::block` must reproduce
//! their outputs *bit-for-bit*, because the 12 golden traces at the
//! workspace root pin every downstream f64 the GP loop emits. Do not
//! "improve" these loops — their whole value is that they never change.

// Oracle code mirrors the original element-at-a-time kernels, panics and all.
#![allow(clippy::unwrap_used, clippy::expect_used, dead_code)]

use hyperpower_linalg::Matrix;

/// The original element-at-a-time `Matrix::matmul`, zero-skip included.
pub fn naive_matmul(a: &Matrix, rhs: &Matrix) -> Matrix {
    assert_eq!(a.cols(), rhs.rows(), "naive_matmul shape");
    let mut out = Matrix::zeros(a.rows(), rhs.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let v = a[(i, k)];
            if v == 0.0 {
                continue;
            }
            for j in 0..rhs.cols() {
                out[(i, j)] += v * rhs[(k, j)];
            }
        }
    }
    out
}

/// The original `Matrix::gram`: upper triangle row-by-row with the
/// zero-skip, then a mirror copy into the lower triangle.
pub fn naive_gram(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.cols(), x.cols());
    for i in 0..x.rows() {
        let r = x.row(i);
        for a in 0..x.cols() {
            let ra = r[a];
            if ra == 0.0 {
                continue;
            }
            for b in a..x.cols() {
                out[(a, b)] += ra * r[b];
            }
        }
    }
    for a in 0..x.cols() {
        for b in 0..a {
            out[(a, b)] = out[(b, a)];
        }
    }
    out
}

/// The original `Matrix::matvec`: one `vector::dot` fold per row.
pub fn naive_matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols(), "naive_matvec shape");
    (0..a.rows())
        .map(|i| hyperpower_linalg::vector::dot(a.row(i), x))
        .collect()
}

/// The original left-looking `Cholesky::factor` loop. Returns the factor,
/// or the `(pivot, value)` of the first non-positive/non-finite pivot —
/// exactly the payload of `Error::NotPositiveDefinite`.
pub fn naive_cholesky(a: &Matrix) -> Result<Matrix, (usize, f64)> {
    assert!(a.is_square(), "naive_cholesky shape");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err((i, sum));
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// The original forward substitution `L·y = b`.
pub fn naive_solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "naive_solve_lower shape");
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for (k, &yk) in y.iter().enumerate().take(i) {
            sum -= l[(i, k)] * yk;
        }
        y[i] = sum / l[(i, i)];
    }
    y
}

/// The original backward substitution `Lᵀ·x = y`.
pub fn naive_solve_lower_transpose(l: &Matrix, y: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(y.len(), n, "naive_solve_lower_transpose shape");
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            sum -= l[(k, i)] * xk;
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Asserts two matrices are bit-identical, reporting the first differing
/// element with both bit patterns.
pub fn assert_bits_eq(label: &str, expected: &Matrix, actual: &Matrix) {
    assert_eq!(expected.shape(), actual.shape(), "{label}: shape");
    for i in 0..expected.rows() {
        for j in 0..expected.cols() {
            let (e, a) = (expected[(i, j)], actual[(i, j)]);
            assert!(
                e.to_bits() == a.to_bits(),
                "{label}: bit mismatch at ({i}, {j}): naive {e:?} ({:#018x}) vs blocked {a:?} ({:#018x})",
                e.to_bits(),
                a.to_bits()
            );
        }
    }
}

/// Slice flavour of [`assert_bits_eq`].
pub fn assert_slice_bits_eq(label: &str, expected: &[f64], actual: &[f64]) {
    assert_eq!(expected.len(), actual.len(), "{label}: length");
    for (i, (e, a)) in expected.iter().zip(actual).enumerate() {
        assert!(
            e.to_bits() == a.to_bits(),
            "{label}: bit mismatch at {i}: naive {e:?} ({:#018x}) vs blocked {a:?} ({:#018x})",
            e.to_bits(),
            a.to_bits()
        );
    }
}
