//! Property-based tests for the linear-algebra kernels.

// Test-support code: strategies build exact values and assert round-trips
// bit-for-bit; panicking helpers are correct in a test harness.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use hyperpower_linalg::{ridge_least_squares, stats, vector, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-3, 3].
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f64..3.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized to shape"))
    })
}

/// Strategy: a random symmetric positive-definite matrix built as
/// `B·Bᵀ + n·I` (guaranteed SPD).
fn spd_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data).expect("sized to shape");
            let mut a = b.matmul(&b.transpose()).expect("square product");
            a.add_diagonal(n as f64);
            a
        })
    })
}

proptest! {
    #[test]
    fn cholesky_reconstructs_spd(a in spd_strategy(8)) {
        let chol = Cholesky::factor(&a).expect("SPD by construction");
        let back = chol.reconstruct();
        prop_assert!(a.max_abs_diff(&back).unwrap() < 1e-8);
    }

    #[test]
    fn cholesky_solve_residual_small(a in spd_strategy(8)) {
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let residual = vector::sub(&a.matvec(&x).unwrap(), &b);
        prop_assert!(vector::norm2(&residual) < 1e-6 * (1.0 + vector::norm2(&b)));
    }

    #[test]
    fn solve_composes_from_triangular_solves_bitwise(a in spd_strategy(8)) {
        // `solve` promises exactly forward-then-backward substitution; the
        // composition must be bit-identical, not merely close, because the
        // GP hot path mixes the composed and the split forms freely.
        let chol = Cholesky::factor(&a).expect("SPD by construction");
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73) - 1.1).collect();
        let composed = chol.solve(&b).unwrap();
        let y = chol.solve_lower(&b).unwrap();
        let split = chol.solve_lower_transpose(&y).unwrap();
        for (c, s) in composed.iter().zip(&split) {
            prop_assert_eq!(c.to_bits(), s.to_bits());
        }
        // Round trip through the factor: L·y == b and L·Lᵀ·x == b up to
        // substitution rounding.
        let l = chol.factor_l();
        let ly = l.matvec(&y).unwrap();
        let residual = vector::sub(&ly, &b);
        prop_assert!(vector::norm2(&residual) < 1e-9 * (1.0 + vector::norm2(&b)));
        let llt_x = l.matvec(&l.transpose().matvec(&composed).unwrap()).unwrap();
        let residual = vector::sub(&llt_x, &b);
        prop_assert!(vector::norm2(&residual) < 1e-6 * (1.0 + vector::norm2(&b)));
    }

    #[test]
    fn jitter_ladder_factor_solves_consistently(
        (a, b) in (1usize..=8).prop_flat_map(|n| {
            // Rank-deficient Gram matrix from a single row: always needs
            // the jitter ladder for n > 1.
            (
                proptest::collection::vec(-2.0f64..2.0, n),
                proptest::collection::vec(-3.0f64..3.0, n),
            )
        }).prop_map(|(row, b)| {
            let n = row.len();
            let x = Matrix::from_vec(1, n, row).expect("sized to shape");
            (x.gram(), b)
        })
    ) {
        let n = a.rows();
        let (chol, jitter) = Cholesky::factor_with_jitter(&a, 1e-10, 30)
            .expect("ladder must terminate on a PSD matrix");
        prop_assert!(jitter >= 0.0);
        // The factor the ladder returns is exactly the factor of the
        // jittered matrix, so solving with it must round-trip against
        // A + jitter·I — same contract as the un-jittered path.
        let mut aj = a.clone();
        aj.add_diagonal(jitter);
        let refactored = Cholesky::factor(&aj).expect("ladder already factored this");
        prop_assert_eq!(chol.factor_l(), refactored.factor_l());
        let x = chol.solve(&b).unwrap();
        let reconstructed = aj.matvec(&x).unwrap();
        let residual = vector::sub(&reconstructed, &b);
        // The jittered system is potentially ill-conditioned (that is the
        // point of the ladder); bound the relative residual loosely.
        prop_assert!(
            vector::norm2(&residual) <= 1e-3 * (1.0 + vector::norm2(&b) + vector::norm2(&x)),
            "jitter {} n {} residual {}",
            jitter, n, vector::norm2(&residual)
        );
    }

    #[test]
    fn cholesky_log_det_is_finite(a in spd_strategy(8)) {
        let chol = Cholesky::factor(&a).unwrap();
        prop_assert!(chol.log_det().is_finite());
    }

    #[test]
    fn transpose_involution(a in matrix_strategy(8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(a in matrix_strategy(8)) {
        let g = a.gram();
        for i in 0..g.rows() {
            // Diagonal of a Gram matrix is a sum of squares.
            prop_assert!(g[(i, i)] >= -1e-12);
            for j in 0..g.cols() {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matmul_associative_with_vector(a in spd_strategy(6)) {
        // (A*A)*x == A*(A*x)
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 1.0).collect();
        let lhs = a.matmul(&a).unwrap().matvec(&x).unwrap();
        let rhs = a.matvec(&a.matvec(&x).unwrap()).unwrap();
        let diff = vector::sub(&lhs, &rhs);
        prop_assert!(vector::norm2(&diff) < 1e-6 * (1.0 + vector::norm2(&lhs)));
    }

    #[test]
    fn least_squares_recovers_planted_weights(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 1..5),
        rows in 8usize..20,
        seed_vals in proptest::collection::vec(0.1f64..5.0, 200)
    ) {
        let d = coeffs.len();
        let x = Matrix::from_fn(rows, d, |i, j| seed_vals[(i * d + j) % seed_vals.len()] + (i * 7 + j * 3) as f64 % 5.0);
        let y: Vec<f64> = (0..rows).map(|i| vector::dot(x.row(i), &coeffs)).collect();
        if let Ok(fit) = ridge_least_squares(&x, &y, 1e-9) {
            let preds: Vec<f64> = (0..rows).map(|i| fit.predict(x.row(i))).collect();
            let diff = vector::sub(&preds, &y);
            prop_assert!(vector::norm2(&diff) < 1e-4 * (1.0 + vector::norm2(&y)));
        }
    }

    #[test]
    fn rmspe_scale_invariant(
        actual in proptest::collection::vec(1.0f64..100.0, 1..20),
        scale in 0.5f64..2.0
    ) {
        let predicted: Vec<f64> = actual.iter().map(|a| a * scale).collect();
        let r = stats::rmspe(&predicted, &actual).unwrap();
        prop_assert!((r - (scale - 1.0).abs()).abs() < 1e-9);
    }

    #[test]
    fn std_dev_nonnegative(values in proptest::collection::vec(-100.0f64..100.0, 2..50)) {
        prop_assert!(stats::std_dev(&values).unwrap() >= 0.0);
    }

    #[test]
    fn geometric_mean_between_min_and_max(values in proptest::collection::vec(0.1f64..50.0, 1..20)) {
        let g = stats::geometric_mean(&values).unwrap();
        let lo = stats::min_finite(&values).unwrap();
        let hi = stats::max_finite(&values).unwrap();
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
    }
}
