//! Bit-exactness proof: blocked kernels vs frozen naive oracles.
//!
//! The blocked, register-tiled kernels behind `Matrix::matmul`/`gram`/
//! `matvec` and `Cholesky` promise the accumulation-order contract of
//! DESIGN.md §2a: same per-output-element operation sequence as the naive
//! loops they replaced, hence bit-for-bit identical results. This suite
//! holds them to it with property tests against the frozen oracles in
//! `tests/common/mod.rs`, across adversarial shapes — dimensions of 1,
//! dimensions straddling the register-tile (4×8) and panel (32) boundaries,
//! matrices salted with exact zeros (the `== 0.0` skip is observable:
//! `0.0·∞` is NaN and `-0.0 + 0.0` flips sign), ill-conditioned SPD
//! matrices, and indefinite matrices where even the *failure* must be
//! bit-identical (same pivot index, same pivot value bits).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

mod common;

use common::{
    assert_bits_eq, assert_slice_bits_eq, naive_cholesky, naive_gram, naive_matmul, naive_matvec,
    naive_solve_lower, naive_solve_lower_transpose,
};
use hyperpower_linalg::{Cholesky, Error, Matrix};
use proptest::prelude::*;
use proptest::sample::select;

/// Entries for adversarial matrices: mostly smooth values, salted with
/// exact zeros (to exercise the skip path), exact negative zeros, and huge
/// or tiny magnitudes (to exercise rounding-order sensitivity).
fn entry_strategy() -> impl Strategy<Value = f64> {
    (select(vec![0u8, 0, 0, 0, 0, 1, 2, 3, 4]), -3.0f64..3.0).prop_map(|(kind, v)| match kind {
        0 => v,
        1 => 0.0,
        2 => -0.0,
        3 => v * 1e16,
        _ => v * 1e-16,
    })
}

/// Dimensions chosen to straddle the register tile (MR=4, NR=8) and panel
/// (PANEL=32) boundaries: 1, tile-exact, tile±1, panel±1.
fn dim_strategy() -> impl Strategy<Value = usize> {
    select(vec![1usize, 2, 3, 4, 5, 7, 8, 9, 16, 31, 32, 33, 40])
}

fn matrix_of(r: usize, c: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(entry_strategy(), r * c)
        .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized to shape"))
}

/// SPD-ish strategy spanning well-conditioned to numerically indefinite:
/// `B·Bᵀ + d·I` where `d` ranges from a dominant diagonal down to exactly
/// zero (rank-deficient for most draws, so the factorization *fails* — and
/// the failure must match the oracle bit-for-bit too).
fn spd_spectrum_strategy() -> impl Strategy<Value = Matrix> {
    (
        dim_strategy(),
        select(vec![8.0f64, 8.0, 1.0, 1.0, 1e-9, 1e-15, 0.0]),
    )
        .prop_flat_map(|(n, diag)| {
            proptest::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
                let b = Matrix::from_vec(n, n, data).expect("sized to shape");
                let mut a = b.matmul(&b.transpose()).expect("square product");
                a.add_diagonal(diag);
                a
            })
        })
}

proptest! {
    #[test]
    fn matmul_bit_equals_naive(
        (a, b) in (dim_strategy(), dim_strategy(), dim_strategy()).prop_flat_map(|(m, k, n)| {
            (matrix_of(m, k), matrix_of(k, n))
        })
    ) {
        let blocked = a.matmul(&b).expect("shapes agree");
        assert_bits_eq("matmul", &naive_matmul(&a, &b), &blocked);
    }

    #[test]
    fn gram_bit_equals_naive(
        x in (dim_strategy(), dim_strategy()).prop_flat_map(|(r, c)| matrix_of(r, c))
    ) {
        assert_bits_eq("gram", &naive_gram(&x), &x.gram());
    }

    #[test]
    fn matvec_bit_equals_naive(
        (a, v) in (dim_strategy(), dim_strategy()).prop_flat_map(|(m, k)| {
            (matrix_of(m, k), proptest::collection::vec(entry_strategy(), k))
        })
    ) {
        let blocked = a.matvec(&v).expect("shapes agree");
        assert_slice_bits_eq("matvec", &naive_matvec(&a, &v), &blocked);
    }

    #[test]
    fn cholesky_bit_equals_naive_across_conditioning(a in spd_spectrum_strategy()) {
        match (naive_cholesky(&a), Cholesky::factor(&a)) {
            (Ok(l_ref), Ok(chol)) => {
                assert_bits_eq("cholesky L", &l_ref, chol.factor_l());
            }
            (Err((pivot_ref, value_ref)), Err(Error::NotPositiveDefinite { pivot, value })) => {
                prop_assert_eq!(pivot_ref, pivot, "first bad pivot index differs");
                prop_assert_eq!(
                    value_ref.to_bits(),
                    value.to_bits(),
                    "pivot value bits differ: naive {:?} vs blocked {:?}",
                    value_ref,
                    value
                );
            }
            (naive, blocked) => {
                panic!(
                    "factorization outcomes diverged: naive ok={} vs blocked {:?}",
                    naive.is_ok(),
                    blocked.err()
                );
            }
        }
    }

    #[test]
    fn triangular_solves_bit_equal_naive(
        (a, rhs) in spd_spectrum_strategy().prop_flat_map(|a| {
            let n = a.rows();
            (Just(a), proptest::collection::vec(entry_strategy(), n))
        })
    ) {
        // Indefinite draws are covered by the factorization property.
        if let Ok(chol) = Cholesky::factor(&a) {
            let l = chol.factor_l();

            let fwd = chol.solve_lower(&rhs).expect("length matches");
            assert_slice_bits_eq("solve_lower", &naive_solve_lower(l, &rhs), &fwd);

            let bwd = chol.solve_lower_transpose(&fwd).expect("length matches");
            assert_slice_bits_eq(
                "solve_lower_transpose",
                &naive_solve_lower_transpose(l, &naive_solve_lower(l, &rhs)),
                &bwd,
            );

            let full = chol.solve(&rhs).expect("length matches");
            assert_slice_bits_eq("solve", &bwd, &full);
        }
    }

    #[test]
    fn solve_matrix_bit_equals_per_column_solves(
        (a, b) in spd_spectrum_strategy().prop_flat_map(|a| {
            let n = a.rows();
            (Just(a), (1usize..=9).prop_flat_map(move |c| matrix_of(n, c)))
        })
    ) {
        if let Ok(chol) = Cholesky::factor(&a) {
            let l = chol.factor_l();
            let solved = chol.solve_matrix(&b).expect("shapes agree");
            for j in 0..b.cols() {
                let col_ref =
                    naive_solve_lower_transpose(l, &naive_solve_lower(l, &b.col(j)));
                let col_blocked: Vec<f64> = solved.col_iter(j).collect();
                assert_slice_bits_eq("solve_matrix column", &col_ref, &col_blocked);
            }
        }
    }

    #[test]
    fn solve_lower_columns_bit_equals_per_column(
        (a, b) in spd_spectrum_strategy().prop_flat_map(|a| {
            let n = a.rows();
            (Just(a), (1usize..=9).prop_flat_map(move |c| matrix_of(n, c)))
        })
    ) {
        if let Ok(chol) = Cholesky::factor(&a) {
            let solved = chol.solve_lower_columns(&b).expect("shapes agree");
            for j in 0..b.cols() {
                let col_ref = naive_solve_lower(chol.factor_l(), &b.col(j));
                let col_blocked: Vec<f64> = solved.col_iter(j).collect();
                assert_slice_bits_eq("solve_lower_columns column", &col_ref, &col_blocked);
            }
        }
    }
}

// Degenerate shapes the strategies cannot reach (proptest dims start at 1,
// and `Matrix::from_rows` rejects empties — but `zeros`/`from_vec` allow
// zero-sized matrices and the kernels must not panic on them).

#[test]
fn empty_matmul_is_empty() {
    let a = Matrix::zeros(0, 3);
    let b = Matrix::zeros(3, 0);
    let prod = a.matmul(&b).unwrap();
    assert_eq!(prod.shape(), (0, 0));
    // And a k-dimension of zero yields an all-zero (never garbage) result.
    let a = Matrix::zeros(2, 0);
    let b = Matrix::zeros(0, 2);
    let prod = a.matmul(&b).unwrap();
    assert_eq!(prod, Matrix::zeros(2, 2));
}

#[test]
fn empty_cholesky_factors() {
    let chol = Cholesky::factor(&Matrix::zeros(0, 0)).unwrap();
    assert_eq!(chol.dim(), 0);
    assert_eq!(chol.solve(&[]).unwrap(), Vec::<f64>::new());
}

#[test]
fn one_by_one_matches_naive() {
    let a = Matrix::from_vec(1, 1, vec![4.0]).unwrap();
    let chol = Cholesky::factor(&a).unwrap();
    assert_eq!(chol.factor_l()[(0, 0)].to_bits(), 2.0f64.to_bits());
    let prod = a.matmul(&a).unwrap();
    assert_eq!(
        prod[(0, 0)].to_bits(),
        naive_matmul(&a, &a)[(0, 0)].to_bits()
    );
}

#[test]
fn zero_skip_is_semantically_observable_and_preserved() {
    // a has an exact 0.0 where b holds ∞: the naive kernel skips the
    // product (0·∞ = NaN would otherwise poison the row). The blocked
    // kernel must skip identically — this pins the skip, not just speed.
    let a = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 3.0]]).unwrap();
    let b = Matrix::from_rows(&[&[f64::INFINITY, 1.0], &[1.0, 1.0]]).unwrap();
    let blocked = a.matmul(&b).unwrap();
    assert_bits_eq("matmul with inf", &naive_matmul(&a, &b), &blocked);
    assert!(blocked[(0, 0)].is_finite(), "skip must prevent 0·∞ = NaN");
    assert!(blocked[(1, 0)].is_infinite());
}
