//! Speedup ratchet for the blocked linalg kernels.
//!
//! `BENCH_linalg.json` at the workspace root commits the facts about the
//! `benches/linalg_hotpath.rs` workload: the corpus checksums (so the
//! measured bits can never silently change), the reference timings on the
//! machine that recorded them, and a *relative* floor — the blocked
//! `matmul` must stay at least `matmul_speedup_floor`× faster than the
//! frozen naive oracle in `tests/common/mod.rs`, measured side by side on
//! whatever machine runs the test. A ratio ratchet cannot flake on slow CI
//! hardware the way an absolute-throughput floor can, and it pins exactly
//! the claim the blocked kernels exist to make.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

mod common;

use std::time::Instant;

use common::naive_matmul;
use hyperpower_linalg::corpus;

const BENCH_FILE: &str = "BENCH_linalg.json";

fn bench_text() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(BENCH_FILE);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()))
}

fn committed(key: &str, text: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let start = text
        .find(&pat)
        .unwrap_or_else(|| panic!("{BENCH_FILE} missing key {key}"))
        + pat.len();
    let digits: String = text[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("{BENCH_FILE}: key {key} is not a number"))
}

/// Best-of-`reps` wall time of `f`, after one warm-up call.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let _ = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let _ = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn corpus_checksums_match_committed_reference() {
    let text = bench_text();
    let n = committed("n", &text) as usize;
    for (key, m) in [
        ("checksum_a", corpus::dense(1, n, n)),
        ("checksum_b", corpus::dense(2, n, n)),
        ("checksum_spd", corpus::spd(5, n)),
    ] {
        assert_eq!(
            f64::from(corpus::checksum(&m)),
            committed(key, &text),
            "seeded corpus changed bits ({key}): the committed timings no \
             longer describe this workload — refresh {BENCH_FILE}"
        );
    }
}

#[test]
fn blocked_matmul_keeps_committed_speedup_over_naive() {
    let text = bench_text();
    let n = committed("n", &text) as usize;
    let floor = committed("matmul_speedup_floor", &text);

    let a = corpus::dense(1, n, n);
    let b = corpus::dense(2, n, n);

    let naive_secs = best_secs(3, || naive_matmul(&a, &b));
    let blocked_secs = best_secs(3, || a.matmul(&b).expect("square product"));

    // The speedup only counts because the result is identical: the blocked
    // product must match the oracle bit-for-bit while being faster.
    let reference = naive_matmul(&a, &b);
    let blocked = a.matmul(&b).expect("square product");
    assert_eq!(
        reference.as_slice().len(),
        blocked.as_slice().len(),
        "shape drifted"
    );
    for (i, (r, v)) in reference
        .as_slice()
        .iter()
        .zip(blocked.as_slice())
        .enumerate()
    {
        assert_eq!(
            r.to_bits(),
            v.to_bits(),
            "matmul element {i} diverged from the naive oracle"
        );
    }

    let speedup = naive_secs / blocked_secs;
    eprintln!(
        "matmul {n}x{n}: naive {naive_secs:.4}s, blocked {blocked_secs:.4}s, \
         speedup {speedup:.2}x (floor {floor}x)"
    );
    assert!(
        speedup >= floor,
        "blocked matmul speedup regressed: {speedup:.2}x < committed floor \
         {floor}x ({BENCH_FILE})"
    );
}

/// The blocked product recorded in `BENCH_linalg.json` is pinned by bits,
/// not just by speed: the committed checksum of `A·B` guards against a
/// kernel change that is fast but wrong (or right but re-associated).
#[test]
fn matmul_product_checksum_matches_committed_reference() {
    let text = bench_text();
    let n = committed("n", &text) as usize;
    let a = corpus::dense(1, n, n);
    let b = corpus::dense(2, n, n);
    let prod = a.matmul(&b).expect("square product");
    assert_eq!(
        f64::from(corpus::checksum(&prod)),
        committed("checksum_product", &text),
        "matmul result bits changed: the accumulation-order contract \
         (DESIGN.md §2a) forbids this without a golden re-bless"
    );
    // And the SPD factor, which exercises cholesky + the panel solves.
    let spd = corpus::spd(5, n);
    let chol = hyperpower_linalg::Cholesky::factor(&spd).expect("SPD by construction");
    assert_eq!(
        f64::from(corpus::checksum(chol.factor_l())),
        committed("checksum_factor", &text),
        "cholesky factor bits changed: the accumulation-order contract \
         (DESIGN.md §2a) forbids this without a golden re-bless"
    );
}
