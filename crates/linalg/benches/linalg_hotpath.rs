//! Hot-path throughput of the blocked linalg kernels.
//!
//! Every workload comes from the seeded corpus in
//! [`hyperpower_linalg::corpus`] so the numbers committed to
//! `BENCH_linalg.json` (workspace root) always describe the same bits;
//! `tests/bench_ratchet.rs` pins the corpus checksums and fails the build
//! if the blocked kernels lose their recorded speedup over the frozen
//! naive loops.
//!
//! Workload sizes match the ratchet: n = 256 for `matmul`/`matvec`/
//! `cholesky`/`solve_matrix` (the GP hot path's working size), 256×64 for
//! `gram` (tall-thin, the kernel-matrix shape).

// Bench-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hyperpower_linalg::{corpus, Cholesky};

/// Must match `n` in `BENCH_linalg.json`.
const N: usize = 256;

fn matmul_hotpath(c: &mut Criterion) {
    let a = corpus::dense(1, N, N);
    let b = corpus::dense(2, N, N);
    c.bench_function(&format!("matmul/{N}x{N}"), |bch| {
        bch.iter(|| black_box(&a).matmul(black_box(&b)).expect("square product"))
    });
}

fn gram_hotpath(c: &mut Criterion) {
    let x = corpus::dense(3, N, N / 4);
    c.bench_function(&format!("gram/{N}x{}", N / 4), |bch| {
        bch.iter(|| black_box(&x).gram())
    });
}

fn matvec_hotpath(c: &mut Criterion) {
    let a = corpus::dense(1, N, N);
    let v = corpus::vector(4, N);
    c.bench_function(&format!("matvec/{N}x{N}"), |bch| {
        bch.iter(|| black_box(&a).matvec(black_box(&v)).expect("length matches"))
    });
}

fn cholesky_hotpath(c: &mut Criterion) {
    let a = corpus::spd(5, N);
    c.bench_function(&format!("cholesky/{N}"), |bch| {
        bch.iter(|| Cholesky::factor(black_box(&a)).expect("SPD by construction"))
    });
}

fn solve_matrix_hotpath(c: &mut Criterion) {
    let a = corpus::spd(5, N);
    let chol = Cholesky::factor(&a).expect("SPD by construction");
    let b = corpus::dense(6, N, 8);
    c.bench_function(&format!("solve_matrix/{N}x8"), |bch| {
        bch.iter(|| {
            black_box(&chol)
                .solve_matrix(black_box(&b))
                .expect("shapes agree")
        })
    });
}

criterion_group!(
    benches,
    matmul_hotpath,
    gram_hotpath,
    matvec_hotpath,
    cholesky_hotpath,
    solve_matrix_hotpath
);
criterion_main!(benches);
