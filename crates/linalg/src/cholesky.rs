use crate::{Error, Matrix, Result};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// The factorization is computed once and can then be reused for multiple
/// solves, log-determinant queries and sampling transforms — exactly the
/// access pattern of Gaussian-process regression, where the kernel matrix is
/// factored once per fit and solved against many right-hand sides.
///
/// # Examples
///
/// ```
/// use hyperpower_linalg::Matrix;
///
/// # fn main() -> Result<(), hyperpower_linalg::Error> {
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]])?;
/// let chol = a.cholesky()?;
/// // L is lower-triangular with positive diagonal.
/// assert!((chol.factor_l()[(0, 0)] - 5.0).abs() < 1e-12);
/// // log|A| via the factorization.
/// assert!(chol.log_det().is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
    /// Cached `Lᵀ` (row-major), so backward substitution — which cannot be
    /// panel-reordered without changing the per-element accumulation order —
    /// still reads its k-loop contiguously. Derived from `l` at factor time.
    lt: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so callers may pass a matrix
    /// whose upper triangle is stale.
    ///
    /// The factorization is the blocked right-looking algorithm in
    /// `crate::block`; it produces a factor bit-identical to the naive
    /// left-looking loop (pinned by `tests/reference_kernels.rs`), and on
    /// failure reports the same first bad pivot with the bit-identical
    /// pivot value.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] if `a` is not square.
    /// * [`Error::NonFiniteInput`] if `a` contains NaN or infinity.
    /// * [`Error::NotPositiveDefinite`] if a non-positive pivot arises.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if !a.is_finite() {
            return Err(Error::NonFiniteInput);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        crate::block::cholesky_factor(n, a.as_slice(), l.buf_mut())
            .map_err(|(pivot, value)| Error::NotPositiveDefinite { pivot, value })?;
        // Inputs were checked above; this catches factor-internal
        // overflow/underflow before L escapes into GP solves.
        crate::debug_assert_finite!("cholesky factor L", l.as_slice());
        let lt = l.transpose();
        Ok(Cholesky { l, lt })
    }

    /// Factors `a + jitter·I`, escalating `jitter` by ×10 up to `max_tries`
    /// times if the matrix is numerically indefinite.
    ///
    /// This is the standard trick for kernel matrices that are positive
    /// definite in exact arithmetic but borderline in floating point.
    ///
    /// Returns the factorization together with the jitter that was actually
    /// applied.
    ///
    /// # Errors
    ///
    /// Propagates the last factorization error if all attempts fail.
    pub fn factor_with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_tries: usize,
    ) -> Result<(Self, f64)> {
        match Self::factor(a) {
            Ok(c) => return Ok((c, 0.0)),
            Err(Error::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        let mut jitter = initial_jitter;
        let mut last_err = Error::NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        for _ in 0..max_tries {
            let mut aj = a.clone();
            aj.add_diagonal(jitter);
            match Self::factor(&aj) {
                Ok(c) => return Ok((c, jitter)),
                Err(e) => {
                    last_err = e;
                    jitter *= 10.0;
                }
            }
        }
        Err(last_err)
    }

    /// The lower-triangular factor `L`.
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b` using the factorization (forward then backward
    /// substitution).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_lower_transpose(&y)
    }

    /// Solves the lower-triangular system `L·y = b` (forward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::ShapeMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("rhs of length {}", b.len()),
            });
        }
        let mut y = b.to_vec();
        crate::block::solve_lower_multi(n, self.l.as_slice(), 1, &mut y);
        Ok(y)
    }

    /// Solves the upper-triangular system `Lᵀ·x = y` (backward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `y.len() != self.dim()`.
    pub fn solve_lower_transpose(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if y.len() != n {
            return Err(Error::ShapeMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("rhs of length {}", y.len()),
            });
        }
        let mut x = y.to_vec();
        crate::block::solve_lower_transpose_multi(n, self.lt.as_slice(), 1, &mut x);
        Ok(x)
    }

    /// Solves `L·Y = B` for every column of `B` in one blocked pass:
    /// column `j` of the result is `solve_lower(b.col(j))`, bit-for-bit.
    ///
    /// A row-major matrix with RHS in the columns is exactly the layout the
    /// multi-RHS kernel wants (components contiguous across right-hand
    /// sides), so each `L` panel row is loaded once and reused across all
    /// columns instead of once per column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_lower_columns(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(Error::ShapeMismatch {
                expected: format!("rhs with {n} rows"),
                found: format!("rhs with {} rows", b.rows()),
            });
        }
        let mut y = b.clone();
        crate::block::solve_lower_multi(n, self.l.as_slice(), y.cols(), y.buf_mut());
        Ok(y)
    }

    /// Solves `A·X = B` for every column of `B` (forward then backward
    /// substitution, both multi-RHS; no per-column allocation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        let mut out = self.solve_lower_columns(b)?;
        crate::block::solve_lower_transpose_multi(n, self.lt.as_slice(), out.cols(), out.buf_mut());
        Ok(out)
    }

    /// Natural logarithm of `det(A) = det(L)² = (∏ Lᵢᵢ)²`.
    pub fn log_det(&self) -> f64 {
        let log_pivots: Vec<f64> = (0..self.dim()).map(|i| self.l[(i, i)].ln()).collect();
        crate::vector::sum_ordered(&log_pivots) * 2.0
    }

    /// Reconstructs `A = L·Lᵀ` (mainly useful in tests).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| {
            (0..=i.min(j))
                .map(|k| self.l[(i, k)] * self.l[(j, k)])
                .sum()
        })
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]).unwrap()
    }

    #[test]
    fn factor_known_matrix() {
        // Classic textbook example with exact integer factor.
        let c = spd3().cholesky().unwrap();
        let l = c.factor_l();
        let expected =
            Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[3.0, 3.0, 0.0], &[-1.0, 1.0, 3.0]]).unwrap();
        assert!(l.max_abs_diff(&expected).unwrap() < 1e-12);
    }

    #[test]
    fn reconstruct_roundtrip() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        assert!(c.reconstruct().max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = c.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn log_det_matches_product_of_pivots() {
        let c = spd3().cholesky().unwrap();
        // det = (5*3*3)^2 = 2025
        assert!((c.log_det() - 2025.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let err = a.cholesky().unwrap_err();
        assert!(matches!(err, Error::NotPositiveDefinite { pivot: 1, .. }));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a).unwrap_err(),
            Error::NotSquare { rows: 2, cols: 3 }
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(a.cholesky().unwrap_err(), Error::NonFiniteInput));
    }

    #[test]
    fn jitter_recovers_borderline_matrix() {
        // Rank-deficient matrix: needs jitter to factor.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let (c, jitter) = Cholesky::factor_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(jitter > 0.0);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn jitter_zero_for_well_conditioned() {
        let (_, jitter) = Cholesky::factor_with_jitter(&spd3(), 1e-10, 5).unwrap();
        assert_eq!(jitter, 0.0);
    }

    #[test]
    fn solve_matrix_identity_inverts() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let inv = c.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn solve_wrong_length_rejected() {
        let c = spd3().cholesky().unwrap();
        assert!(c.solve(&[1.0, 2.0]).is_err());
    }
}
