//! Householder-QR least squares.
//!
//! The ridge/normal-equations route in [`crate::ridge_least_squares`]
//! squares the condition number of the design matrix; for well-scaled
//! profiling data that is harmless, but QR solves the same problem at the
//! original conditioning and needs no regularisation parameter. Offered
//! as the numerically robust alternative (and cross-validated against the
//! normal equations in the tests).

use crate::{Error, LeastSquaresFit, Matrix, Result};

/// Solves `min_β ‖y − X·β‖²` via Householder QR factorization.
///
/// Requires `x.rows() >= x.cols()` (at least as many observations as
/// features) and full column rank.
///
/// # Errors
///
/// * [`Error::Empty`] if `x` has no rows or columns.
/// * [`Error::ShapeMismatch`] if `y.len() != x.rows()` or the system is
///   underdetermined.
/// * [`Error::NonFiniteInput`] on NaN/infinite inputs.
/// * [`Error::SingularTriangular`] if `x` is (numerically) rank deficient.
///
/// # Examples
///
/// ```
/// use hyperpower_linalg::{qr_least_squares, Matrix};
///
/// # fn main() -> Result<(), hyperpower_linalg::Error> {
/// let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]])?;
/// let y = [2.0, 3.0, 5.0];
/// let fit = qr_least_squares(&x, &y)?;
/// assert!((fit.coefficients[0] - 2.0).abs() < 1e-12);
/// assert!((fit.coefficients[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn qr_least_squares(x: &Matrix, y: &[f64]) -> Result<LeastSquaresFit> {
    let (m, n) = x.shape();
    if m == 0 || n == 0 {
        return Err(Error::Empty);
    }
    if y.len() != m {
        return Err(Error::ShapeMismatch {
            expected: format!("{m} targets"),
            found: format!("{} targets", y.len()),
        });
    }
    if m < n {
        return Err(Error::ShapeMismatch {
            expected: format!("at least {n} observations"),
            found: format!("{m} observations"),
        });
    }
    if !x.is_finite() || y.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFiniteInput);
    }

    // Work on the augmented matrix [X | y]: applying each reflector to the
    // extra column yields Qᵀy for free.
    let mut a = Matrix::from_fn(m, n + 1, |i, j| if j < n { x[(i, j)] } else { y[i] });

    for col in 0..n {
        // Householder vector for column `col`, rows col..m.
        let mut norm2 = 0.0;
        for i in col..m {
            norm2 += a[(i, col)] * a[(i, col)];
        }
        let norm = norm2.sqrt();
        if norm == 0.0 {
            return Err(Error::SingularTriangular { index: col });
        }
        let alpha = if a[(col, col)] > 0.0 { -norm } else { norm };
        // v = x - alpha·e1 (stored temporarily), normalised implicitly via
        // v_norm2.
        let mut v = vec![0.0; m - col];
        v[0] = a[(col, col)] - alpha;
        for i in col + 1..m {
            v[i - col] = a[(i, col)];
        }
        let v_norm2: f64 = v.iter().map(|t| t * t).sum();
        if v_norm2 == 0.0 {
            // Column already triangular; nothing to reflect.
            continue;
        }
        // Apply H = I − 2·v·vᵀ/‖v‖² to the remaining columns (incl. y).
        for j in col..=n {
            let mut dot = 0.0;
            for i in col..m {
                dot += v[i - col] * a[(i, j)];
            }
            let scale = 2.0 * dot / v_norm2;
            for i in col..m {
                a[(i, j)] -= scale * v[i - col];
            }
        }
        // Enforce exact triangularity below the diagonal.
        a[(col, col)] = alpha;
        for i in col + 1..m {
            a[(i, col)] = 0.0;
        }
    }

    // Back-substitute R·β = (Qᵀy)[..n].
    let mut coefficients = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = a[(i, n)];
        for j in i + 1..n {
            sum -= a[(i, j)] * coefficients[j];
        }
        let r_ii = a[(i, i)];
        if r_ii == 0.0 || !r_ii.is_finite() {
            return Err(Error::SingularTriangular { index: i });
        }
        coefficients[i] = sum / r_ii;
    }

    // Residual diagnostics on the original data.
    let predictions = x.matvec(&coefficients)?;
    let rss: f64 = predictions
        .iter()
        .zip(y)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    let mean_y = y.iter().sum::<f64>() / m as f64;
    let tss: f64 = y.iter().map(|t| (t - mean_y) * (t - mean_y)).sum();
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { f64::NAN };

    Ok(LeastSquaresFit {
        coefficients,
        residual_sum_of_squares: rss,
        r_squared,
    })
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::ridge_least_squares;

    #[test]
    fn exact_fit_recovers_coefficients() {
        let x = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[0.0, 1.0, 1.5],
            &[1.0, 0.0, 2.0],
            &[2.0, 1.0, 1.0],
            &[0.5, 0.5, 0.5],
        ])
        .unwrap();
        let beta = [2.0, -1.0, 0.5];
        let y: Vec<f64> = (0..5)
            .map(|i| crate::vector::dot(x.row(i), &beta))
            .collect();
        let fit = qr_least_squares(&x, &y).unwrap();
        for (c, b) in fit.coefficients.iter().zip(&beta) {
            assert!((c - b).abs() < 1e-12);
        }
        assert!(fit.residual_sum_of_squares < 1e-20);
    }

    #[test]
    fn agrees_with_normal_equations_when_well_conditioned() {
        let x = Matrix::from_fn(20, 4, |i, j| ((i * 7 + j * 3) % 11) as f64 + 1.0);
        let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let qr = qr_least_squares(&x, &y).unwrap();
        let ne = ridge_least_squares(&x, &y, 1e-12).unwrap();
        for (a, b) in qr.coefficients.iter().zip(&ne.coefficients) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn survives_lauchli_conditioning() {
        // Läuchli matrix: columns nearly parallel; the normal equations
        // lose eps² and go singular in f64 while QR stays accurate.
        let eps = 1e-8;
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[eps, 0.0], &[0.0, eps]]).unwrap();
        let y = [2.0, eps, eps]; // exact solution β = (1, 1)
        let fit = qr_least_squares(&x, &y).unwrap();
        assert!((fit.coefficients[0] - 1.0).abs() < 1e-4);
        assert!((fit.coefficients[1] - 1.0).abs() < 1e-4);
        // Unregularised normal equations fail on the same input.
        assert!(ridge_least_squares(&x, &y, 0.0).is_err());
    }

    #[test]
    fn overdetermined_noise_minimised() {
        // y = 3x with one outlier: QR returns the least-squares slope.
        let x = Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let y = [3.0, 6.0, 9.0, 12.0, 20.0];
        let fit = qr_least_squares(&x, &y).unwrap();
        // Slope = Σxy/Σx² = (3+12+27+48+100)/55 = 190/55.
        assert!((fit.coefficients[0] - 190.0 / 55.0).abs() < 1e-12);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn error_paths() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        // Underdetermined.
        assert!(matches!(
            qr_least_squares(&x, &[1.0]).unwrap_err(),
            Error::ShapeMismatch { .. }
        ));
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        // Wrong target length.
        assert!(qr_least_squares(&x, &[1.0]).is_err());
        // Non-finite input.
        assert!(qr_least_squares(&x, &[f64::NAN, 1.0]).is_err());
        // Rank deficient (zero column).
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]).unwrap();
        assert!(matches!(
            qr_least_squares(&x, &[1.0, 2.0, 3.0]).unwrap_err(),
            Error::SingularTriangular { .. }
        ));
    }
}
