//! Free functions on `&[f64]` slices.
//!
//! These are the handful of BLAS-1 style operations the workspace needs.
//! All functions panic on length mismatches — at this level a mismatch is a
//! programming error, not a recoverable condition.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean (ℓ₂) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Strictly left-to-right sum of a slice.
///
/// This is the workspace's blessed order-sensitive reduction (analyzer
/// rule R14): callers that must produce bit-identical traces sum through
/// it instead of open-coding `+=` in a loop, so the sequential
/// association order is pinned in exactly one place and a future
/// parallel/SIMD refactor of the caller cannot silently reorder it.
pub fn sum_ordered(a: &[f64]) -> f64 {
    // Deliberately dormant grant, kept as documentation of the blessing:
    // analyze::allow(R14, R16): this fold *is* the blessed ordered reduction.
    a.iter().fold(0.0, |acc, x| acc + x)
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn dot_hand_computed() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norm2_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn squared_distance_symmetric() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(squared_distance(&a, &b), 25.0);
        assert_eq!(squared_distance(&b, &a), 25.0);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[5.0, 3.0], &[2.0, 1.0]), vec![3.0, 2.0]);
    }

    #[test]
    fn sum_ordered_is_left_to_right() {
        // With this magnitude spread, left-to-right and right-to-left
        // association produce different doubles; pin the former.
        let xs = [1e16, 1.0, -1e16, 1.0];
        assert_eq!(sum_ordered(&xs), xs.iter().fold(0.0, |a, x| a + x));
        // 1e16 + 1.0 rounds back to 1e16 (ulp is 2.0 up there), so the
        // first 1.0 vanishes and only the last survives the cancellation.
        assert_eq!(sum_ordered(&xs), 1.0);
        assert_eq!(sum_ordered(&[]), 0.0);
    }
}
