//! Typed hardware units for the HyperPower constraint pipeline.
//!
//! HyperPower's premise is that power (watts) and memory (mebibytes) are
//! a-priori-predictable quantities folded into the acquisition function,
//! so a silent unit mix-up — joules where watts were meant, bytes compared
//! against a mebibyte budget — corrupts every downstream table without
//! failing a single test. These newtypes make the unit part of the type:
//! a [`Watts`] value cannot be passed where [`Joules`] is expected, and
//! `Watts × Seconds` *is* `Joules` by construction.
//!
//! The wrappers are deliberately thin: `#[repr(transparent)]` over `f64`,
//! `Copy`, and free to construct (`Watts(85.0)`) and unwrap (`.get()`),
//! so they cost nothing on the model-evaluation hot path. Only
//! dimensionally meaningful arithmetic is implemented:
//!
//! * same-unit `+`/`-` and ordering,
//! * scaling by a bare `f64` (`*`, `/`),
//! * the ratio of two same-unit values (`Watts / Watts → f64`),
//! * the physical cross products `Watts × Seconds = Joules` (and the
//!   inverse divisions).
//!
//! Anything else — adding watts to seconds, comparing mebibytes against a
//! raw byte count — is a compile error. The static-analysis pass
//! (`hyperpower-analyze`, rule R6) enforces the complementary convention
//! for quantities that stay as raw `f64`: their names must carry a unit
//! suffix (`_w`, `_s`, `_j`, `_mib`, `_bytes`, …).
//!
//! # Examples
//!
//! ```
//! use hyperpower_linalg::units::{Joules, Mebibytes, Seconds, Watts};
//!
//! let power = Watts(85.0);
//! let latency = Seconds(0.002);
//! let energy: Joules = power * latency;
//! assert!((energy.get() - 0.17).abs() < 1e-12);
//!
//! // Budget check in consistent units, regardless of the source scale.
//! let measured = Mebibytes::from_bytes(1.3e9);
//! let budget = Mebibytes::from_gib(1.25);
//! assert!(measured < budget);
//! ```
//!
//! Mixing units is rejected at compile time — energy cannot stand in for
//! power in a budget comparison:
//!
//! ```compile_fail,E0308
//! use hyperpower_linalg::units::{Joules, Seconds, Watts};
//!
//! let power_budget = Watts(85.0);
//! let energy: Joules = Watts(80.0) * Seconds(1.0);
//! // ERROR: `Joules` and `Watts` are different types.
//! assert!(energy <= power_budget);
//! ```
//!
//! Nor can two different units be added:
//!
//! ```compile_fail,E0308
//! use hyperpower_linalg::units::{Seconds, Watts};
//!
//! let nonsense = Watts(85.0) + Seconds(1.0);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $symbol:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[repr(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw magnitude in this unit.
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// The raw magnitude in this unit.
            pub const fn get(self) -> f64 {
                self.0
            }

            /// True when the magnitude is finite (neither NaN nor ±∞).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The smaller of two values (NaN-safe total order).
            pub fn min(self, other: Self) -> Self {
                if other.0.total_cmp(&self.0).is_lt() {
                    other
                } else {
                    self
                }
            }

            /// The larger of two values (NaN-safe total order).
            pub fn max(self, other: Self) -> Self {
                if other.0.total_cmp(&self.0).is_gt() {
                    other
                } else {
                    self
                }
            }

            /// Clamps the magnitude into `[lo, hi]`.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// Total order on the magnitudes (use for sorting/extrema so a
            /// NaN reading cannot panic a comparator).
            pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)?;
                write!(f, " {}", $symbol)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// The dimensionless ratio of two same-unit values.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// Electrical power in watts — the `P(z)` of the paper's Eq. 1 and the
    /// `P(z) ≤ P_B` budget check.
    Watts,
    "W"
);

unit_newtype!(
    /// Energy in joules. Obtained as `Watts × Seconds`; never construct one
    /// from a power reading directly.
    Joules,
    "J"
);

unit_newtype!(
    /// Time in seconds (inference latency, virtual-clock durations).
    Seconds,
    "s"
);

unit_newtype!(
    /// Memory in mebibytes (2²⁰ bytes) — the `M(z)` of the paper's Eq. 2
    /// and the `M(z) ≤ M_B` budget check. Constructed from raw byte counts
    /// or GiB budgets via [`Mebibytes::from_bytes`] / [`Mebibytes::from_gib`]
    /// so every scale conversion happens in exactly one place.
    Mebibytes,
    "MiB"
);

/// Bytes per mebibyte.
const BYTES_PER_MIB: f64 = 1024.0 * 1024.0;

/// Mebibytes per gibibyte.
const MIB_PER_GIB: f64 = 1024.0;

impl Mebibytes {
    /// Converts a raw byte count (e.g. an NVML reading) to mebibytes.
    pub fn from_bytes(bytes: f64) -> Self {
        Mebibytes(bytes / BYTES_PER_MIB)
    }

    /// Converts a GiB figure (the paper quotes budgets as 1.15/1.25 GB) to
    /// mebibytes.
    pub fn from_gib(gib: f64) -> Self {
        Mebibytes(gib * MIB_PER_GIB)
    }

    /// The magnitude as raw bytes.
    pub fn as_bytes(self) -> f64 {
        self.0 * BYTES_PER_MIB
    }

    /// The magnitude in GiB.
    pub fn as_gib(self) -> f64 {
        self.0 / MIB_PER_GIB
    }
}

impl Seconds {
    /// Converts milliseconds to seconds.
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms / 1000.0)
    }

    /// The magnitude in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1000.0
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Power sustained for a duration is energy: `W × s = J`.
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    /// Power sustained for a duration is energy: `s × W = J`.
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Energy over time is mean power: `J / s = W`.
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Energy at a power level takes time: `J / W = s`.
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let p = Watts(85.0);
        assert_eq!(p.get(), 85.0);
        assert_eq!(Watts::new(85.0), p);
        assert_eq!(Watts::ZERO.get(), 0.0);
        assert_eq!(Watts::default(), Watts::ZERO);
    }

    #[test]
    fn same_unit_arithmetic() {
        assert_eq!(Watts(40.0) + Watts(5.0), Watts(45.0));
        assert_eq!(Watts(40.0) - Watts(5.0), Watts(35.0));
        assert_eq!(-Watts(2.0), Watts(-2.0));
        let mut p = Watts(1.0);
        p += Watts(2.0);
        p -= Watts(0.5);
        assert_eq!(p, Watts(2.5));
        assert_eq!(Watts(10.0) * 2.0, Watts(20.0));
        assert_eq!(2.0 * Watts(10.0), Watts(20.0));
        assert_eq!(Watts(10.0) / 2.0, Watts(5.0));
        assert_eq!(Watts(10.0) / Watts(4.0), 2.5);
        let total: Watts = [Watts(1.0), Watts(2.0)].into_iter().sum();
        assert_eq!(total, Watts(3.0));
    }

    #[test]
    fn ordering_and_extrema() {
        assert!(Watts(10.0) < Watts(12.0));
        assert_eq!(Watts(10.0).max(Watts(12.0)), Watts(12.0));
        assert_eq!(Watts(10.0).min(Watts(12.0)), Watts(10.0));
        assert_eq!(Watts(200.0).clamp(Watts(45.0), Watts(150.0)), Watts(150.0));
        // NaN-safe extrema never pick the NaN over a real reading.
        assert_eq!(Watts(f64::NAN).min(Watts(1.0)), Watts(1.0));
        assert!(!Watts(f64::NAN).is_finite());
        assert!(Watts(1.0).is_finite());
        assert!(Seconds(1.0).total_cmp(&Seconds(2.0)).is_lt());
    }

    #[test]
    fn power_times_time_is_energy() {
        let e: Joules = Watts(100.0) * Seconds(0.5);
        assert_eq!(e, Joules(50.0));
        assert_eq!(Seconds(0.5) * Watts(100.0), Joules(50.0));
        assert_eq!(e / Seconds(0.5), Watts(100.0));
        assert_eq!(e / Watts(100.0), Seconds(0.5));
    }

    #[test]
    fn memory_scale_conversions() {
        assert_eq!(Mebibytes::from_bytes(1024.0 * 1024.0), Mebibytes(1.0));
        assert_eq!(Mebibytes::from_gib(1.0), Mebibytes(1024.0));
        assert_eq!(Mebibytes(1.0).as_bytes(), 1024.0 * 1024.0);
        assert_eq!(Mebibytes(512.0).as_gib(), 0.5);
        // Round trip.
        let m = Mebibytes::from_gib(1.25);
        assert!((Mebibytes::from_bytes(m.as_bytes()).get() - m.get()).abs() < 1e-9);
    }

    #[test]
    fn seconds_scale_conversions() {
        assert_eq!(Seconds::from_millis(4.0), Seconds(0.004));
        assert_eq!(Seconds(0.004).as_millis(), 4.0);
    }

    #[test]
    fn display_carries_the_symbol() {
        assert_eq!(format!("{}", Watts(85.0)), "85 W");
        assert_eq!(format!("{:.2}", Seconds(0.5)), "0.50 s");
        assert_eq!(format!("{}", Joules(1.5)), "1.5 J");
        assert_eq!(format!("{}", Mebibytes(1024.0)), "1024 MiB");
    }
}
