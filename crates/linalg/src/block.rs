//! Cache-blocked, register-tiled kernels behind [`Matrix`](crate::Matrix)
//! and [`Cholesky`](crate::Cholesky).
//!
//! # The accumulation-order contract
//!
//! Every kernel in this module is a *layout* optimization, never a
//! *reassociation*: for each output element, the sequence of floating-point
//! operations that produces it — the order of the k-loop, the placement of
//! the final divide, the `== 0.0` skip in `matmul`/`gram` — is exactly the
//! sequence the naive element-at-a-time loops in `matrix.rs`/`cholesky.rs`
//! used before this module existed. Blocking only changes *which output
//! elements are in flight at once* (register tiles over output rows and
//! columns, panels over the factorization), which is invisible to IEEE-754
//! arithmetic. The frozen naive kernels live on as test oracles in
//! `tests/reference_kernels.rs`, which property-tests bit-exactness of every
//! kernel here against them; the 12 golden traces at the workspace root pin
//! the same contract end-to-end.
//!
//! Legal moves when extending this module (see DESIGN.md §2a):
//! * tile output rows/columns; hoist loads; pack panels into contiguous
//!   scratch (an f64 copied through memory is the same f64);
//! * split a reduction loop into sequential chunks executed in increasing
//!   order with the running value carried between chunks (in a register or
//!   in memory — both are exact).
//!
//! Illegal moves:
//! * reordering or splitting a reduction into independent partial sums;
//! * dropping or widening a `== 0.0` skip (`0.0 * inf` is NaN, and adding
//!   `±0.0` can flip the sign of a `-0.0` accumulator);
//! * dividing before the accumulation finishes, or fusing multiply-add
//!   (Rust never contracts `a*b + c` on its own; keep it that way).

/// Rows per register tile: each micro-kernel keeps `MR` output rows of
/// accumulators live so a loaded `rhs` element is reused `MR` times.
pub const MR: usize = 4;

/// Columns per register tile: `MR * NR` f64 accumulators fit in the vector
/// register file, so the k-loop runs without touching the output in memory.
pub const NR: usize = 8;

/// Panel width for the blocked Cholesky factorization and the blocked
/// triangular solves. Tuned for the workspace's n ≈ 64–512 range: a panel
/// of `PANEL` columns (≤ 32·8 bytes per row) stays L1-resident across the
/// trailing update that reuses it O(n) times.
pub const PANEL: usize = 32;

/// Rows of the `matmul` micro-tile. 4×8 keeps the accumulator tile (8 YMM
/// registers at the x86-64-v3 target the workspace builds for — see
/// `.cargo/config.toml`) plus a `b`-row vector and an `a` broadcast inside
/// the 16-register vector file; the crate forbids `unsafe`, so the kernels
/// rely on auto-vectorization for their SIMD.
const MM_R: usize = 4;

/// Columns of the `matmul` micro-tile (see [`MM_R`]).
const MM_N: usize = 8;

/// Full-tile `matmul` micro-kernel for rows with no exact-`0.0` operand:
/// `acc[r] += arows[r][k] · bp[k·MM_N..]` for every k, in increasing k.
///
/// `bp` is the packed `kdim`×`MM_N` column panel of `b`. Everything here is
/// zipped iterators on purpose: with no slice indexing there is no panic
/// path, so LLVM keeps the whole 4×8 accumulator tile in registers across
/// the k-loop and vectorizes the column dimension (a bounds check inside
/// the loop forces the tile back to the stack every iteration, because the
/// caller's `acc` must be consistent if the check ever unwound).
/// `#[inline(never)]` keeps that property: compiled in isolation the
/// optimizer sees only noalias parameters, while inlined into the tile
/// loops of [`matmul_into`] the surrounding state defeats the register
/// promotion. The call overhead is amortized over `kdim · MM_R · MM_N`
/// multiply-adds.
#[inline(never)]
fn tile_kernel_clean(arows: &[&[f64]; MM_R], bp: &[f64], acc: &mut [[f64; MM_N]; MM_R]) {
    let [a0s, a1s, a2s, a3s] = *arows;
    let [acc0, acc1, acc2, acc3] = acc;
    for ((((brow, &a0), &a1), &a2), &a3) in
        bp.chunks_exact(MM_N).zip(a0s).zip(a1s).zip(a2s).zip(a3s)
    {
        for (s, &bv) in acc0.iter_mut().zip(brow) {
            *s += a0 * bv;
        }
        for (s, &bv) in acc1.iter_mut().zip(brow) {
            *s += a1 * bv;
        }
        for (s, &bv) in acc2.iter_mut().zip(brow) {
            *s += a2 * bv;
        }
        for (s, &bv) in acc3.iter_mut().zip(brow) {
            *s += a3 * bv;
        }
    }
}

/// Full-tile `matmul` micro-kernel with the naive `== 0.0` skip.
///
/// Same shape as [`tile_kernel_clean`] — zipped, panic-free, isolated — but
/// each row's update is guarded exactly as the naive loop guards it. Per
/// output element the sequence is identical either way; the clean variant
/// exists because a per-k compare costs as much as the arithmetic it gates.
#[inline(never)]
fn tile_kernel_skip(arows: &[&[f64]; MM_R], bp: &[f64], acc: &mut [[f64; MM_N]; MM_R]) {
    let [a0s, a1s, a2s, a3s] = *arows;
    let [acc0, acc1, acc2, acc3] = acc;
    for ((((brow, &a0), &a1), &a2), &a3) in
        bp.chunks_exact(MM_N).zip(a0s).zip(a1s).zip(a2s).zip(a3s)
    {
        if a0 != 0.0 {
            for (s, &bv) in acc0.iter_mut().zip(brow) {
                *s += a0 * bv;
            }
        }
        if a1 != 0.0 {
            for (s, &bv) in acc1.iter_mut().zip(brow) {
                *s += a1 * bv;
            }
        }
        if a2 != 0.0 {
            for (s, &bv) in acc2.iter_mut().zip(brow) {
                *s += a2 * bv;
            }
        }
        if a3 != 0.0 {
            for (s, &bv) in acc3.iter_mut().zip(brow) {
                *s += a3 * bv;
            }
        }
    }
}

/// `out = a · b` for row-major `a` (m×k), `b` (k×n), `out` (m×n, zeroed).
///
/// Register-tiled over `MM_R`×`MM_N` output blocks; per output element the
/// k-loop is sequential in increasing k with the naive kernel's exact
/// `a[(i,k)] == 0.0` skip, so every element is bit-identical to
/// `for i { for k { if a != 0 { for j { out += a * b } } } }`.
pub(crate) fn matmul_into(m: usize, kdim: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(out.len(), m * n);
    // One pass over `a` up front: rows with no exact zero never take the
    // `== 0.0` skip, so tiles made of clean rows can run a branch-free
    // k-loop — the identical operation sequence, minus a per-k check that
    // would otherwise cost as much as the arithmetic.
    let row_clean: Vec<bool> = (0..m)
        .map(|i| !a[i * kdim..(i + 1) * kdim].contains(&0.0))
        .collect();
    // j0 outer: the kdim×MM_N panel of `b` a tile column reads stays
    // cache-resident while every row tile sweeps over it; with i0 outer
    // each row tile would re-stream all of `b` instead. Loop order over
    // *tiles* is free under the contract — it never changes the
    // per-element operation sequence.
    let mut j0 = 0;
    let mut bp = vec![0.0f64; 0];
    while j0 < n {
        let jw = (n - j0).min(MM_N);
        // Pack the b panel contiguously (bit-exact copy): the k-loop then
        // streams 64-byte lines instead of stride-n rows.
        bp.resize(kdim * jw, 0.0);
        for k in 0..kdim {
            bp[k * jw..(k + 1) * jw].copy_from_slice(&b[k * n + j0..k * n + j0 + jw]);
        }
        let mut i0 = 0;
        while i0 < m {
            let ih = (m - i0).min(MM_R);
            // The accumulator tile lives in registers for the whole k-loop.
            let mut acc = [[0.0f64; MM_N]; MM_R];
            if ih == MM_R && jw == MM_N {
                let arows: [&[f64]; MM_R] =
                    core::array::from_fn(|r| &a[(i0 + r) * kdim..(i0 + r + 1) * kdim]);
                if row_clean[i0..i0 + MM_R].iter().all(|&c| c) {
                    // No operand in these rows hits the `== 0.0` skip, so
                    // running every row unconditionally is the identical
                    // sequence. (NaN rows land here too: NaN is not
                    // `== 0.0`, so the naive loop does not skip it either.)
                    tile_kernel_clean(&arows, &bp, &mut acc);
                } else {
                    tile_kernel_skip(&arows, &bp, &mut acc);
                }
            } else {
                // Edge tiles (ih < MM_R or jw < MM_N) run the same
                // operation sequence on a partial tile.
                for k in 0..kdim {
                    let brow = &bp[k * jw..k * jw + jw];
                    for (r, accr) in acc.iter_mut().enumerate().take(ih) {
                        let av = a[(i0 + r) * kdim + k];
                        if av == 0.0 {
                            continue;
                        }
                        for (c, bv) in brow.iter().enumerate() {
                            accr[c] += av * bv;
                        }
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(ih) {
                out[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw].copy_from_slice(&accr[..jw]);
            }
            i0 += MM_R;
        }
        j0 += MM_N;
    }
}

/// `out[i] = dot(a.row(i), x)` for row-major `a` (m×k).
///
/// Processes `MR` rows per pass so each `x[k]` load is amortized. Per row
/// the accumulation is `-0.0 + a[i,0]·x[0] + a[i,1]·x[1] + …` — the exact
/// fold of [`crate::vector::dot`], whose `Iterator::sum` starts from the
/// IEEE additive identity `-0.0` (observable: a dot product whose only
/// nonzero-free products are `-0.0` sums to `-0.0`, not `+0.0`).
pub(crate) fn matvec_into(m: usize, kdim: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(x.len(), kdim);
    debug_assert_eq!(out.len(), m);
    let mut i0 = 0;
    while i0 < m {
        let ih = (m - i0).min(MR);
        let mut acc = [-0.0f64; MR];
        for (k, &xv) in x.iter().enumerate() {
            for (r, accr) in acc.iter_mut().enumerate().take(ih) {
                *accr += a[(i0 + r) * kdim + k] * xv;
            }
        }
        out[i0..i0 + ih].copy_from_slice(&acc[..ih]);
        i0 += MR;
    }
}

/// Upper triangle of `out = xᵀ·x` for row-major `x` (rows×cols), then a
/// mirror copy into the lower triangle — the naive `gram` contract.
///
/// The reduction runs over the rows of `x` in increasing order with the
/// naive kernel's `row[a] == 0.0` skip; register tiles cover `MR`×`NR`
/// output blocks. Tiles strictly below the diagonal are skipped; tiles
/// crossing it compute a few sub-diagonal lanes and discard them (the
/// stores are guarded to `b >= a`), which never touches observable state.
pub(crate) fn gram_into(rows: usize, cols: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(out.len(), cols * cols);
    let mut a0 = 0;
    while a0 < cols {
        let ah = (cols - a0).min(MR);
        // First tile column that intersects the upper triangle b >= a0.
        let mut b0 = (a0 / NR) * NR;
        while b0 < cols {
            let bw = (cols - b0).min(NR);
            let mut acc = [[0.0f64; NR]; MR];
            for i in 0..rows {
                let row = &x[i * cols..(i + 1) * cols];
                for (r, accr) in acc.iter_mut().enumerate().take(ah) {
                    let ra = row[a0 + r];
                    if ra == 0.0 {
                        continue;
                    }
                    for (c, rb) in row[b0..b0 + bw].iter().enumerate() {
                        accr[c] += ra * rb;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(ah) {
                let arow = a0 + r;
                for (c, &v) in accr.iter().enumerate().take(bw) {
                    let bcol = b0 + c;
                    if bcol >= arow {
                        out[arow * cols + bcol] = v;
                    }
                }
            }
            b0 += NR;
        }
        a0 += MR;
    }
    for a in 0..cols {
        for b in 0..a {
            out[a * cols + b] = out[b * cols + a];
        }
    }
}

/// Blocked right-looking Cholesky: factors the lower triangle of `a` (n×n,
/// row-major) into `l` (pre-zeroed n×n).
///
/// Returns `Err((pivot, value))` on the first non-positive or non-finite
/// pivot — the same index and the bit-identical pivot value the naive
/// left-looking loop reports, because pivots are visited in the same order
/// and every intermediate is produced by the same operation sequence:
/// element (i, j) accumulates `a[i,j] − Σ_{k<j} l[i,k]·l[j,k]` with k
/// strictly increasing (earlier panels are subtracted by the trailing
/// update, the in-panel remainder by the panel factorization), then takes
/// the same `sqrt`/divide.
pub(crate) fn cholesky_factor(n: usize, a: &[f64], l: &mut [f64]) -> Result<(), (usize, f64)> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(l.len(), n * n);
    // Workspace: the lower triangle of `a`, updated in place panel by panel.
    for i in 0..n {
        for j in 0..=i {
            l[i * n + j] = a[i * n + j];
        }
    }
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + PANEL).min(n);
        // Factor the diagonal block (left-looking within the panel; the
        // contributions of columns < k0 are already subtracted).
        for i in k0..k1 {
            for j in k0..=i {
                let mut sum = l[i * n + j];
                for k in k0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err((i, sum));
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Panel solve: rows below the diagonal block against the panel.
        for i in k1..n {
            for j in k0..k1 {
                let mut sum = l[i * n + j];
                for k in k0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = sum / l[j * n + j];
            }
        }
        // Trailing update: w[i,j] −= Σ_{k in panel} l[i,k]·l[j,k] for the
        // remaining lower triangle, k strictly increasing per element.
        if k1 < n {
            trailing_update(n, k0, k1, l);
        }
        k0 = k1;
    }
    Ok(())
}

/// Rank-`k1-k0` update of the trailing lower triangle, register-tiled.
///
/// Packs the panel transposed (`pt[k][j] = l[j][k]`) so the micro-kernel
/// reads both operands contiguously; packing copies f64 values bit-exactly.
fn trailing_update(n: usize, k0: usize, k1: usize, l: &mut [f64]) {
    let kw = k1 - k0;
    let tn = n - k1;
    let mut pt = vec![0.0f64; kw * tn];
    for j in 0..tn {
        for (k, ptk) in pt.chunks_exact_mut(tn).enumerate() {
            ptk[j] = l[(k1 + j) * n + k0 + k];
        }
    }
    let mut i0 = k1;
    while i0 < n {
        let ih = (n - i0).min(MR);
        let mut j0 = k1;
        // Only tiles intersecting the lower triangle j <= i.
        while j0 < n && j0 < i0 + ih {
            let jw = (n - j0).min(NR);
            let mut acc = [[0.0f64; NR]; MR];
            for (r, accr) in acc.iter_mut().enumerate().take(ih) {
                accr[..jw].copy_from_slice(&l[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw]);
            }
            for (k, ptk) in pt.chunks_exact(tn).enumerate() {
                let pj = &ptk[j0 - k1..j0 - k1 + jw];
                for (r, accr) in acc.iter_mut().enumerate().take(ih) {
                    let lik = l[(i0 + r) * n + k0 + k];
                    for (c, &pv) in pj.iter().enumerate() {
                        accr[c] -= lik * pv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(ih) {
                let irow = i0 + r;
                for (c, &v) in accr.iter().enumerate().take(jw) {
                    let jcol = j0 + c;
                    if jcol <= irow {
                        l[irow * n + jcol] = v;
                    }
                }
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// Blocked forward substitution `L·Y = B` for `nrhs` right-hand sides
/// stored column-wise: `y[i * nrhs + r]` is component `i` of RHS `r`.
///
/// On entry `y` holds `B`; on exit it holds `Y`. Per (element, RHS) the
/// operation sequence is the naive single-RHS `solve_lower`: subtract
/// `l[i,k]·y[k]` for k = 0..i in increasing order (earlier panels via the
/// trailing update, the in-panel remainder in place), then divide by
/// `l[i,i]`. Carrying the partial value through memory between panels is
/// exact; only the L traffic changes (each panel row is loaded once and
/// reused across all RHS).
pub(crate) fn solve_lower_multi(n: usize, l: &[f64], nrhs: usize, y: &mut [f64]) {
    debug_assert_eq!(l.len(), n * n);
    debug_assert_eq!(y.len(), n * nrhs);
    let mut a0 = 0;
    while a0 < n {
        let a1 = (a0 + PANEL).min(n);
        for i in a0..a1 {
            let (head, tail) = y.split_at_mut(i * nrhs);
            let yi = &mut tail[..nrhs];
            for k in a0..i {
                let lik = l[i * n + k];
                let yk = &head[k * nrhs..(k + 1) * nrhs];
                for (yv, &kv) in yi.iter_mut().zip(yk) {
                    *yv -= lik * kv;
                }
            }
            let d = l[i * n + i];
            for yv in yi.iter_mut() {
                *yv /= d;
            }
        }
        for i in a1..n {
            let (head, tail) = y.split_at_mut(i * nrhs);
            let yi = &mut tail[..nrhs];
            for k in a0..a1 {
                let lik = l[i * n + k];
                let yk = &head[k * nrhs..(k + 1) * nrhs];
                for (yv, &kv) in yi.iter_mut().zip(yk) {
                    *yv -= lik * kv;
                }
            }
        }
        a0 = a1;
    }
}

/// Backward substitution `Lᵀ·X = Y` for `nrhs` right-hand sides stored
/// column-wise (`y[i * nrhs + r]`), reading `L` through its cached
/// transpose `lt` (`lt[i * n + k] = l[k * n + i]`).
///
/// Backward substitution cannot be panel-reordered without changing the
/// per-element k order (element i needs x[k] for *all* k > i before it can
/// finish), so the blocking here is layout-only: the transposed factor
/// makes the k-loop a contiguous read, and the RHS dimension vectorizes.
/// Per (element, RHS): subtract `l[k,i]·x[k]` for k = i+1..n in increasing
/// order, then divide — the naive `solve_lower_transpose` sequence.
pub(crate) fn solve_lower_transpose_multi(n: usize, lt: &[f64], nrhs: usize, y: &mut [f64]) {
    debug_assert_eq!(lt.len(), n * n);
    debug_assert_eq!(y.len(), n * nrhs);
    for i in (0..n).rev() {
        let (_, tail) = y.split_at_mut(i * nrhs);
        let (yi, xs) = tail.split_at_mut(nrhs);
        for k in i + 1..n {
            let lki = lt[i * n + k];
            let xk = &xs[(k - i - 1) * nrhs..(k - i) * nrhs];
            for (yv, &kv) in yi.iter_mut().zip(xk) {
                *yv -= lki * kv;
            }
        }
        let d = lt[i * n + i];
        for yv in yi.iter_mut() {
            *yv /= d;
        }
    }
}
