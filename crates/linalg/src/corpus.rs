//! Deterministic seeded corpus for the linalg hot-path benchmarks.
//!
//! The criterion benches (`benches/linalg_hotpath.rs`) and the throughput
//! ratchet (`tests/bench_ratchet.rs`, `BENCH_linalg.json` at the workspace
//! root) must measure the *same* workload forever — otherwise the committed
//! throughput numbers silently change meaning. This module generates that
//! workload from fixed seeds via the workspace's seeded-`StdRng`-only rand
//! stand-in (registered as an analyzer R8 RNG root), and exposes a
//! [`checksum`] so the ratchet can pin the corpus bits alongside the
//! numbers.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Matrix;

/// Seed for every corpus matrix; the per-matrix `tag` offsets it so the
/// operands of one benchmark are not bit-correlated.
pub const CORPUS_SEED: u64 = 0x4C41_4C47; // "LALG"

/// Dense `rows`×`cols` matrix with entries uniform in [-1, 1).
pub fn dense(tag: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(CORPUS_SEED ^ tag);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    // Shape is consistent by construction.
    Matrix::from_vec(rows, cols, data).unwrap_or_else(|_| Matrix::zeros(rows, cols))
}

/// Symmetric positive-definite `n`×`n` matrix: uniform off-diagonal noise
/// in [-1, 1) made diagonally dominant by adding `n` to the diagonal.
pub fn spd(tag: u64, n: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(CORPUS_SEED ^ tag);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = rng.random_range(-1.0..1.0);
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
        m[(i, i)] += n as f64;
    }
    m
}

/// Dense vector with entries uniform in [-1, 1).
pub fn vector(tag: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(CORPUS_SEED ^ tag);
    (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
}

/// Order-sensitive 32-bit checksum over the exact f64 bit patterns of a
/// matrix. Committed in `BENCH_linalg.json` next to the throughput floors
/// so the measured workload can never drift without the ratchet noticing.
pub fn checksum(m: &Matrix) -> u32 {
    let mut acc: u32 = 0x811C_9DC5;
    for v in m.as_slice() {
        for b in v.to_bits().to_le_bytes() {
            acc = (acc ^ u32::from(b)).wrapping_mul(0x0100_0193);
        }
    }
    acc
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(checksum(&dense(1, 16, 16)), checksum(&dense(1, 16, 16)));
        assert_eq!(checksum(&spd(2, 16)), checksum(&spd(2, 16)));
        assert_ne!(checksum(&dense(1, 16, 16)), checksum(&dense(2, 16, 16)));
    }

    #[test]
    fn spd_factors_cleanly() {
        let a = spd(7, 48);
        assert!(a.cholesky().is_ok());
    }
}
