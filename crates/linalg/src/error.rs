use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The requested shape is inconsistent with the supplied data, or two
    /// operands have incompatible dimensions.
    ShapeMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization failed because the matrix is not positive
    /// definite (a non-positive pivot was encountered).
    NotPositiveDefinite {
        /// Index of the pivot at which the failure was detected.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// A triangular solve encountered a zero (or non-finite) diagonal entry.
    SingularTriangular {
        /// Index of the zero diagonal entry.
        index: usize,
    },
    /// An input contained NaN or infinity where finite values are required.
    NonFiniteInput,
    /// The operation requires a non-empty input.
    Empty,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            Error::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            Error::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} = {value:.6e})"
            ),
            Error::SingularTriangular { index } => {
                write!(f, "triangular matrix is singular at diagonal index {index}")
            }
            Error::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
            Error::Empty => write!(f, "operation requires non-empty input"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::ShapeMismatch {
                expected: "3x3".into(),
                found: "2x3".into(),
            },
            Error::NotSquare { rows: 2, cols: 3 },
            Error::NotPositiveDefinite {
                pivot: 1,
                value: -0.5,
            },
            Error::SingularTriangular { index: 0 },
            Error::NonFiniteInput,
            Error::Empty,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
