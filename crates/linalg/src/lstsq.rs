use crate::{Cholesky, Error, Matrix, Result};

/// Result of a (ridge-regularised) least-squares fit.
///
/// Produced by [`ridge_least_squares`]; holds the fitted coefficients plus
/// the residual diagnostics most callers want immediately after a fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LeastSquaresFit {
    /// Fitted coefficient vector, one entry per design-matrix column.
    pub coefficients: Vec<f64>,
    /// Sum of squared residuals `‖y − X·β‖²` on the training data.
    pub residual_sum_of_squares: f64,
    /// Coefficient of determination R² on the training data (1 − RSS/TSS).
    /// `NaN` when the targets are constant (TSS = 0).
    pub r_squared: f64,
}

impl LeastSquaresFit {
    /// Predicts the target for a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of coefficients.
    pub fn predict(&self, x: &[f64]) -> f64 {
        crate::vector::dot(&self.coefficients, x)
    }
}

/// Solves the ridge-regularised least-squares problem
/// `min_β ‖y − X·β‖² + ridge·‖β‖²` via the normal equations
/// `(XᵀX + ridge·I)·β = Xᵀy`.
///
/// The normal-equations route is numerically adequate here: the design
/// matrices in this workspace are small (≤ a few hundred rows, ≤ a few tens
/// of columns) and a positive `ridge` keeps the system well conditioned.
/// This is exactly the estimator behind HyperPower's linear power and memory
/// models (paper Eq. 1–2).
///
/// # Errors
///
/// * [`Error::Empty`] if `x` has no rows or no columns.
/// * [`Error::ShapeMismatch`] if `y.len() != x.rows()`.
/// * [`Error::NonFiniteInput`] if any input is NaN/infinite.
/// * [`Error::NotPositiveDefinite`] if the regularised normal matrix cannot
///   be factored (only possible when `ridge == 0` and `x` is rank deficient).
///
/// # Examples
///
/// ```
/// use hyperpower_linalg::{ridge_least_squares, Matrix};
///
/// # fn main() -> Result<(), hyperpower_linalg::Error> {
/// // y = 2*x0 + 3*x1, recover the planted coefficients.
/// let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]])?;
/// let y = [2.0, 3.0, 5.0, 7.0];
/// let fit = ridge_least_squares(&x, &y, 0.0)?;
/// assert!((fit.coefficients[0] - 2.0).abs() < 1e-10);
/// assert!((fit.coefficients[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn ridge_least_squares(x: &Matrix, y: &[f64], ridge: f64) -> Result<LeastSquaresFit> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(Error::Empty);
    }
    if y.len() != x.rows() {
        return Err(Error::ShapeMismatch {
            expected: format!("{} targets", x.rows()),
            found: format!("{} targets", y.len()),
        });
    }
    if !x.is_finite() || y.iter().any(|v| !v.is_finite()) || !ridge.is_finite() || ridge < 0.0 {
        return Err(Error::NonFiniteInput);
    }

    let mut normal = x.gram();
    if ridge > 0.0 {
        normal.add_diagonal(ridge);
    }
    // Xᵀy
    let xt_y: Vec<f64> = (0..x.cols())
        .map(|j| (0..x.rows()).map(|i| x[(i, j)] * y[i]).sum())
        .collect();

    let chol = Cholesky::factor(&normal)?;
    let coefficients = chol.solve(&xt_y)?;
    crate::debug_assert_finite!("ridge_least_squares coefficients", &coefficients);

    let predictions = x.matvec(&coefficients)?;
    let rss: f64 = predictions
        .iter()
        .zip(y)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    let mean_y = y.iter().sum::<f64>() / y.len() as f64;
    let tss: f64 = y.iter().map(|t| (t - mean_y) * (t - mean_y)).sum();
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { f64::NAN };

    Ok(LeastSquaresFit {
        coefficients,
        residual_sum_of_squares: rss,
        r_squared,
    })
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn recovers_planted_coefficients_exactly() {
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 2.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0],
            &[2.0, 1.0, 1.0],
            &[1.0, 3.0, 2.0],
        ])
        .unwrap();
        let beta = [1.5, -2.0, 0.75];
        let y: Vec<f64> = (0..x.rows())
            .map(|i| crate::vector::dot(x.row(i), &beta))
            .collect();
        let fit = ridge_least_squares(&x, &y, 0.0).unwrap();
        for (c, b) in fit.coefficients.iter().zip(&beta) {
            assert!((c - b).abs() < 1e-10);
        }
        assert!(fit.residual_sum_of_squares < 1e-18);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]).unwrap();
        let y = [2.0, 2.0, 2.0];
        let fit0 = ridge_least_squares(&x, &y, 0.0).unwrap();
        let fit1 = ridge_least_squares(&x, &y, 10.0).unwrap();
        assert!((fit0.coefficients[0] - 2.0).abs() < 1e-12);
        assert!(fit1.coefficients[0] < fit0.coefficients[0]);
        assert!(fit1.coefficients[0] > 0.0);
    }

    #[test]
    fn rank_deficient_needs_ridge() {
        // Two identical columns: singular without regularisation.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let y = [2.0, 4.0, 6.0];
        assert!(ridge_least_squares(&x, &y, 0.0).is_err());
        let fit = ridge_least_squares(&x, &y, 1e-6).unwrap();
        // Ridge splits weight evenly between the identical columns.
        assert!((fit.coefficients[0] - fit.coefficients[1]).abs() < 1e-6);
    }

    #[test]
    fn mismatched_targets_rejected() {
        let x = Matrix::identity(3);
        assert!(matches!(
            ridge_least_squares(&x, &[1.0, 2.0], 0.0).unwrap_err(),
            Error::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let x = Matrix::identity(2);
        assert!(ridge_least_squares(&x, &[f64::NAN, 1.0], 0.0).is_err());
        assert!(ridge_least_squares(&x, &[1.0, 1.0], -1.0).is_err());
    }

    #[test]
    fn constant_targets_have_nan_r_squared() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let fit = ridge_least_squares(&x, &[3.0, 3.0], 1e-9).unwrap();
        assert!(fit.r_squared.is_nan());
    }

    #[test]
    fn predict_uses_coefficients() {
        let fit = LeastSquaresFit {
            coefficients: vec![2.0, -1.0],
            residual_sum_of_squares: 0.0,
            r_squared: 1.0,
        };
        assert_eq!(fit.predict(&[3.0, 4.0]), 2.0);
    }
}
