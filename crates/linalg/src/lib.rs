//! Dense linear-algebra kernels for the HyperPower reproduction.
//!
//! This crate provides the small set of numerical routines the rest of the
//! workspace needs:
//!
//! * [`Matrix`] — a row-major dense matrix of `f64` with the usual
//!   constructors, element access and BLAS-like operations,
//! * [`Cholesky`] — factorization of symmetric positive-definite matrices,
//!   with solves and log-determinants (the workhorse of Gaussian-process
//!   regression in `hyperpower-gp`),
//! * [`ridge_least_squares`] — ℓ₂-regularised linear regression via the
//!   normal equations (the workhorse of the power/memory predictive models
//!   in `hyperpower`),
//! * [`qr_least_squares`] — Householder-QR least squares, the numerically
//!   robust (regularisation-free) alternative,
//! * [`vector`] — free functions on `&[f64]` slices (dot products, norms,
//!   axpy),
//! * [`stats`] — descriptive statistics (mean, standard deviation, RMSPE)
//!   used when reporting experiment tables,
//! * [`units`] — typed hardware units ([`units::Watts`],
//!   [`units::Mebibytes`], [`units::Seconds`], [`units::Joules`]) so the
//!   constraint pipeline's `P(z) ≤ P_B` / `M(z) ≤ M_B` checks are
//!   type-safe at the API boundary.
//!
//! Everything is implemented from scratch in safe Rust. The hot kernels
//! (`matmul`/`gram`/`matvec`, the Cholesky factorization and its triangular
//! solves) are cache-blocked and register-tiled in [`block`] under a strict
//! accumulation-order contract: blocking changes memory layout and reuse,
//! never the per-output-element operation sequence, so every result is
//! bit-for-bit identical to the naive element-at-a-time loops (which live
//! on as frozen test oracles in `tests/reference_kernels.rs`). See
//! DESIGN.md §2a for the contract and the legal/illegal transformation
//! catalog.
//!
//! # Examples
//!
//! Solving a symmetric positive-definite system:
//!
//! ```
//! use hyperpower_linalg::Matrix;
//!
//! # fn main() -> Result<(), hyperpower_linalg::Error> {
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
//! let chol = a.cholesky()?;
//! let x = chol.solve(&[8.0, 7.0])?;
//! assert!((x[0] - 1.25).abs() < 1e-12);
//! assert!((x[1] - 1.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
mod cholesky;
pub mod corpus;
mod error;
pub mod guards;
mod lstsq;
mod matrix;
mod qr;
pub mod stats;
pub mod units;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::Error;
pub use lstsq::{ridge_least_squares, LeastSquaresFit};
pub use matrix::Matrix;
pub use qr::qr_least_squares;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
