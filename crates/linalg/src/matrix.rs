use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{Cholesky, Error, Result};

/// A dense, row-major matrix of `f64` values.
///
/// The matrix is the basic currency of the numerical code in this workspace:
/// Gaussian-process kernels, design matrices for the power/memory models and
/// covariance matrices are all `Matrix` values. Storage is a single `Vec`
/// in row-major order. The hot products ([`Matrix::matmul`],
/// [`Matrix::gram`], [`Matrix::matvec`]) are cache-blocked and
/// register-tiled in `crate::block` under a strict accumulation-order
/// contract: per output element they execute the exact operation sequence
/// of the naive element-at-a-time loops, so results are bit-for-bit
/// identical to the pre-blocking implementation (see DESIGN.md §2a and
/// `tests/reference_kernels.rs`).
///
/// # Examples
///
/// ```
/// use hyperpower_linalg::Matrix;
///
/// # fn main() -> Result<(), hyperpower_linalg::Error> {
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::ShapeMismatch {
                expected: format!("{} elements for {rows}x{cols}", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] if there are no rows or the rows are empty,
    /// and [`Error::ShapeMismatch`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(Error::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(Error::ShapeMismatch {
                    expected: format!("row of length {cols}"),
                    found: format!("row {i} of length {}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// Allocates per call; hot loops should use [`Matrix::col_iter`] or
    /// [`Matrix::copy_col_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        self.col_iter(j).collect()
    }

    /// Iterates over column `j` without allocating (strided walk over the
    /// row-major buffer).
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        self.data[j..].iter().step_by(self.cols.max(1)).copied()
    }

    /// Copies column `j` into a caller-provided buffer of length
    /// `self.rows()` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()` or `out.len() != self.rows()`.
    pub fn copy_col_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        assert_eq!(out.len(), self.rows, "copy_col_into: buffer length");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.data[i * self.cols + j];
        }
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Mutably borrows the underlying row-major buffer (crate-internal:
    /// the blocked kernels in `crate::block` write through this).
    pub(crate) fn buf_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(Error::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", x.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        crate::block::matvec_into(self.rows, self.cols, &self.data, x, &mut out);
        Ok(out)
    }

    /// Matrix-matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::block::matmul_into(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (always symmetric positive semi-definite).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        crate::block::gram_into(self.rows, self.cols, &self.data, &mut out.data);
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a copy scaled by `factor`.
    pub fn scale(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Adds `value` to every diagonal entry in place (useful for jitter /
    /// ridge terms).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, value: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            let c = self.cols;
            self.data[i * c + i] += value;
        }
    }

    /// Computes the Cholesky factorization of this symmetric
    /// positive-definite matrix. See [`Cholesky`].
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not square, contains non-finite
    /// entries, or is not positive definite.
    pub fn cholesky(&self) -> Result<Cholesky> {
        Cholesky::factor(self)
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Result<f64> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn col_accessors_agree() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        for j in 0..m.cols() {
            let owned = m.col(j);
            let via_iter: Vec<f64> = m.col_iter(j).collect();
            assert_eq!(owned, via_iter);
            let mut buf = vec![0.0; m.rows()];
            m.copy_col_into(j, &mut buf);
            assert_eq!(owned, buf);
        }
        // Single-column matrix: the stride degenerates to 1.
        let thin = Matrix::from_rows(&[&[1.5], &[-2.5]]).unwrap();
        assert_eq!(thin.col_iter(0).collect::<Vec<_>>(), vec![1.5, -2.5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn col_iter_out_of_bounds_panics() {
        let m = Matrix::identity(2);
        let _ = m.col_iter(2);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[1.0]]).unwrap_err();
        assert!(matches!(err, Error::ShapeMismatch { .. }));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(err, Error::ShapeMismatch { .. }));
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(matches!(Matrix::from_rows(&[]).unwrap_err(), Error::Empty));
    }

    #[test]
    fn identity_matvec_is_identity() {
        let eye = Matrix::identity(3);
        let x = [1.0, -2.0, 3.5];
        assert_eq!(eye.matvec(&x).unwrap(), x.to_vec());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_equals_transpose_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&expected).unwrap() < 1e-12);
    }

    #[test]
    fn add_diagonal_adds_jitter() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diagonal(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(2, 2)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m}").is_empty());
    }

    #[test]
    fn scale_and_add() {
        let a = Matrix::identity(2);
        let b = a.scale(3.0).add(&a).unwrap();
        assert_eq!(b[(0, 0)], 4.0);
        assert_eq!(b[(0, 1)], 0.0);
    }
}
