//! Finiteness guards for numerical boundaries.
//!
//! NaN or infinity entering a Cholesky factorization, a least-squares
//! solve or a GP posterior does not crash — it silently poisons every
//! downstream result (acquisition values, incumbent selection, constraint
//! predictions). The [`debug_assert_finite!`] macro makes those
//! boundaries loud in debug/test builds while compiling to nothing in
//! release builds, where the typed `NonFiniteInput`-style errors remain
//! the contract. The static-analysis pass (`hyperpower-analyze`, rule R5)
//! requires the guard at each declared boundary file.

/// Returns the index and value of the first non-finite element, if any.
///
/// Used by [`debug_assert_finite!`] to produce an actionable panic
/// message; exported so the macro can reference it from other crates.
#[must_use]
pub fn first_non_finite(values: &[f64]) -> Option<(usize, f64)> {
    values
        .iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, v)| (i, *v))
}

/// Debug-build assertion that every element of a `&[f64]` slice is finite.
///
/// The first argument names the boundary (it appears in the panic
/// message); the second is the slice to check. For a scalar, pass
/// `std::slice::from_ref(&x)`. Compiles to nothing when
/// `debug_assertions` are off, so release hot paths pay zero cost.
///
/// # Examples
///
/// ```
/// use hyperpower_linalg::debug_assert_finite;
///
/// let mean = vec![0.5, 1.5];
/// debug_assert_finite!("gp posterior mean", &mean);
/// ```
///
/// ```should_panic
/// use hyperpower_linalg::debug_assert_finite;
///
/// let poisoned = vec![0.5, f64::NAN];
/// debug_assert_finite!("objective", &poisoned); // panics in debug builds
/// ```
#[macro_export]
macro_rules! debug_assert_finite {
    ($what:expr, $values:expr) => {
        debug_assert!(
            $crate::guards::first_non_finite($values).is_none(),
            "non-finite value at {}: {:?} (index, value)",
            $what,
            $crate::guards::first_non_finite($values)
        );
    };
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn finds_first_non_finite() {
        assert_eq!(first_non_finite(&[1.0, 2.0]), None);
        let (i, v) = first_non_finite(&[1.0, f64::NAN, f64::INFINITY]).unwrap();
        assert_eq!(i, 1);
        assert!(v.is_nan());
        assert_eq!(
            first_non_finite(&[f64::NEG_INFINITY]),
            Some((0, f64::NEG_INFINITY))
        );
    }

    #[test]
    fn macro_passes_on_finite_input() {
        let xs = [0.0, -1.5, 1e300];
        debug_assert_finite!("test slice", &xs);
    }

    #[test]
    #[should_panic(expected = "non-finite value")]
    fn macro_panics_on_nan_in_debug() {
        let xs = [0.0, f64::NAN];
        debug_assert_finite!("test slice", &xs);
        // Release builds compile the guard away; keep the test honest there.
        if !cfg!(debug_assertions) {
            panic!("non-finite value (release-mode stand-in)");
        }
    }
}
