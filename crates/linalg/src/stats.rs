//! Descriptive statistics used throughout the experiment harnesses.
//!
//! The paper reports means, standard deviations, geometric-mean speedups and
//! Root Mean Square Percentage Error (RMSPE, Table 1); this module provides
//! those estimators. Functions return `None` on empty (or otherwise
//! undefined) inputs instead of panicking, so harness code can surface
//! missing cells the way the paper prints "–" for failed runs.

/// Arithmetic mean, or `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator), or `None` when fewer than
/// two values are supplied.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

/// Geometric mean, or `None` if the slice is empty or contains non-positive
/// values. The paper uses the geometric mean to aggregate speedups across
/// runs (Tables 3 and 5).
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Root Mean Square Percentage Error between predictions and actuals, as a
/// fraction (multiply by 100 for percent). This is the accuracy metric of
/// the paper's Table 1.
///
/// Returns `None` if the slices are empty, have different lengths, or any
/// actual value is zero (the percentage error would be undefined).
pub fn rmspe(predicted: &[f64], actual: &[f64]) -> Option<f64> {
    if predicted.is_empty() || predicted.len() != actual.len() {
        return None;
    }
    if actual.contains(&0.0) {
        return None;
    }
    let mse: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| {
            let e = (p - a) / a;
            e * e
        })
        .sum::<f64>()
        / predicted.len() as f64;
    Some(mse.sqrt())
}

/// Minimum of a slice, ignoring NaNs; `None` if no finite values exist.
pub fn min_finite(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Maximum of a slice, ignoring NaNs; `None` if no finite values exist.
pub fn max_finite(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn mean_hand_computed() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn std_dev_hand_computed() {
        // Sample std of [2, 4, 4, 4, 5, 5, 7, 9] with n-1 denominator.
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = std_dev(&v).unwrap();
        assert!((s - 2.13809).abs() < 1e-4);
        assert_eq!(std_dev(&[1.0]), None);
    }

    #[test]
    fn geometric_mean_of_speedups() {
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[1.0, -1.0]), None);
        assert_eq!(geometric_mean(&[]), None);
    }

    #[test]
    fn rmspe_perfect_prediction_is_zero() {
        let a = [10.0, 20.0, 30.0];
        assert_eq!(rmspe(&a, &a), Some(0.0));
    }

    #[test]
    fn rmspe_hand_computed() {
        // 10% error on every point -> RMSPE = 0.10.
        let actual = [100.0, 200.0];
        let predicted = [110.0, 220.0];
        let r = rmspe(&predicted, &actual).unwrap();
        assert!((r - 0.10).abs() < 1e-12);
    }

    #[test]
    fn rmspe_undefined_cases() {
        assert_eq!(rmspe(&[], &[]), None);
        assert_eq!(rmspe(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(rmspe(&[1.0], &[0.0]), None);
    }

    #[test]
    fn min_max_ignore_nan() {
        let v = [f64::NAN, 3.0, -1.0, f64::INFINITY];
        assert_eq!(min_finite(&v), Some(-1.0));
        assert_eq!(max_finite(&v), Some(3.0));
        assert_eq!(min_finite(&[f64::NAN]), None);
    }
}
