//! Property-based tests for the GPU simulator.

// Test-support code: strategies build exact values and assert round-trips
// bit-for-bit; panicking helpers are correct in a test harness.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use hyperpower_gpu_sim::{
    analyze, CommitQueue, DeviceProfile, Gpu, Joules, Mebibytes, Seconds, TrainingCostModel, Watts,
    WorkerClock,
};
use hyperpower_nn::{ArchSpec, LayerSpec};
use proptest::prelude::*;

fn cifar_arch_strategy() -> impl Strategy<Value = ArchSpec> {
    (
        20usize..=80,
        2usize..=5,
        1usize..=3,
        20usize..=80,
        2usize..=5,
        1usize..=3,
        200usize..=700,
    )
        .prop_map(|(f1, k1, p1, f2, k2, p2, u)| {
            ArchSpec::new(
                (3, 32, 32),
                10,
                vec![
                    LayerSpec::conv(f1, k1),
                    LayerSpec::pool(p1),
                    LayerSpec::conv(f2, k2),
                    LayerSpec::pool(p2),
                    LayerSpec::dense(u),
                ],
            )
            .expect("paper ranges always valid")
        })
}

proptest! {
    #[test]
    fn power_within_physical_envelope(spec in cifar_arch_strategy()) {
        for device in [DeviceProfile::gtx_1070(), DeviceProfile::tegra_tx1()] {
            let r = analyze(&device, &spec);
            prop_assert!(r.power >= Watts(device.idle_power_w - 1e-9));
            prop_assert!(r.power <= Watts(device.max_power_w + 1e-9));
            prop_assert!((0.0..=1.0).contains(&r.utilization));
            prop_assert!(r.latency > Seconds::ZERO);
        }
    }

    #[test]
    fn memory_at_least_baseline(spec in cifar_arch_strategy()) {
        let device = DeviceProfile::gtx_1070();
        let r = analyze(&device, &spec);
        prop_assert!(r.memory >= Mebibytes(device.baseline_memory_mib));
    }

    #[test]
    fn memory_monotone_in_fc_width(
        f in 20usize..=80, k in 2usize..=5, u in 200usize..=699
    ) {
        let device = DeviceProfile::gtx_1070();
        let base = |units: usize| {
            analyze(
                &device,
                &ArchSpec::new(
                    (3, 32, 32),
                    10,
                    vec![LayerSpec::conv(f, k), LayerSpec::pool(2), LayerSpec::dense(units)],
                )
                .unwrap(),
            )
            .memory
        };
        prop_assert!(base(u + 1) > base(u));
    }

    #[test]
    fn memory_monotone_in_feature_count(
        f in 20usize..=79, k in 2usize..=5, u in 200usize..=700
    ) {
        let device = DeviceProfile::gtx_1070();
        let base = |features: usize| {
            analyze(
                &device,
                &ArchSpec::new(
                    (3, 32, 32),
                    10,
                    vec![LayerSpec::conv(features, k), LayerSpec::pool(2), LayerSpec::dense(u)],
                )
                .unwrap(),
            )
            .memory
        };
        prop_assert!(base(f + 1) > base(f));
    }

    #[test]
    fn energy_is_power_times_latency(spec in cifar_arch_strategy()) {
        // The typed identity `Watts × Seconds = Joules` must agree with the
        // raw-magnitude product for every architecture on every device.
        for device in [DeviceProfile::gtx_1070(), DeviceProfile::tegra_tx1()] {
            let r = analyze(&device, &spec);
            let typed: Joules = r.power * r.latency;
            prop_assert_eq!(r.energy_per_example(), typed);
            let raw_j = r.power.get() * r.latency.get();
            prop_assert!((r.energy_per_example().get() - raw_j).abs() <= 1e-12 * raw_j.abs());
            prop_assert!(r.energy_per_example() > Joules::ZERO);
        }
    }

    #[test]
    fn measurements_scatter_within_bounds(spec in cifar_arch_strategy(), seed in 0u64..100) {
        let device = DeviceProfile::gtx_1070();
        let truth = analyze(&device, &spec);
        let mut gpu = Gpu::new(device.clone(), seed);
        for _ in 0..5 {
            let p = gpu.measure_power(&spec);
            prop_assert!((p - truth.power).get().abs() < 8.0 * device.power_noise_w);
            let m = gpu.measure_memory(&spec).unwrap();
            let noise_mib = (m - truth.memory).get().abs();
            prop_assert!(noise_mib < 8.0 * device.memory_noise_mib);
        }
    }

    #[test]
    fn tegra_memory_always_unsupported(spec in cifar_arch_strategy(), seed in 0u64..50) {
        let mut gpu = Gpu::new(DeviceProfile::tegra_tx1(), seed);
        prop_assert!(gpu.measure_memory(&spec).is_err());
    }

    #[test]
    fn training_cost_scales_with_epochs(
        spec in cifar_arch_strategy(), epochs in 1usize..60, examples in 1000usize..60_000
    ) {
        let cost = TrainingCostModel::default();
        let t1 = cost.training_secs(&spec, examples, epochs);
        let t2 = cost.training_secs(&spec, examples, epochs + 1);
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 > t1);
        // Linearity in epochs (overhead aside).
        let per_epoch = cost.epoch_secs(&spec, examples);
        prop_assert!((t2 - t1 - per_epoch).abs() < 1e-6 * per_epoch.max(1.0));
    }

    #[test]
    fn analysis_is_deterministic(spec in cifar_arch_strategy()) {
        let device = DeviceProfile::tegra_tx1();
        prop_assert_eq!(analyze(&device, &spec), analyze(&device, &spec));
    }

    #[test]
    fn commit_queue_drains_sorted_without_loss(
        entries in proptest::collection::vec((0.0f64..1e6, 0u32..1_000_000), 0..64)
    ) {
        // Sequence numbers are the push index: unique by construction, like
        // the executor's proposal-order counter.
        let mut q = CommitQueue::new();
        for (seq, (t, payload)) in entries.iter().enumerate() {
            q.push(*t, seq as u64, *payload);
        }
        prop_assert_eq!(q.len(), entries.len());

        let mut popped = Vec::new();
        while let Some(triple) = q.pop_min() {
            popped.push(triple);
        }
        prop_assert!(q.is_empty());
        // Conservation: every pushed item comes back exactly once.
        prop_assert_eq!(popped.len(), entries.len());
        let mut seqs: Vec<u64> = popped.iter().map(|(_, s, _)| *s).collect();
        seqs.sort_unstable();
        prop_assert_eq!(seqs, (0..entries.len() as u64).collect::<Vec<_>>());
        for (t, s, payload) in &popped {
            prop_assert_eq!((*t, *payload), entries[*s as usize]);
        }
        // Ordering: non-decreasing (time, seq) keys.
        for pair in popped.windows(2) {
            let (t0, s0, _) = pair[0];
            let (t1, s1, _) = pair[1];
            prop_assert!(
                t0 < t1 || (t0 == t1 && s0 < s1),
                "out of order: ({t0}, {s0}) before ({t1}, {s1})"
            );
        }
    }

    #[test]
    fn worker_clock_earliest_is_argmin_with_index_tiebreak(
        advances in proptest::collection::vec((0usize..4, 0.0f64..1e5), 1..40)
    ) {
        let mut clock = WorkerClock::new(4);
        for (w, dt) in advances {
            clock.advance_secs(w, dt);
        }
        let e = clock.earliest();
        for w in 0..4 {
            let (te, tw) = (clock.seconds(e), clock.seconds(w));
            // No strictly earlier worker; ties resolve to the lowest index.
            prop_assert!(te <= tw, "worker {w} at {tw} earlier than chosen {e} at {te}");
            if tw == te {
                prop_assert!(e <= w);
            }
        }
        prop_assert!(clock.latest_secs() >= clock.seconds(e));
    }
}
