use hyperpower_linalg::units::{Joules, Mebibytes, Seconds, Watts};
use hyperpower_nn::{ArchSpec, LayerShapeReport};

use crate::DeviceProfile;

/// Noise-free ground truth for one architecture on one device.
///
/// Produced by [`analyze`]; the sensor layer ([`crate::Gpu`]) adds
/// measurement noise on top of these values. The hardware quantities carry
/// their units in the type — `power * latency` *is* [`Joules`], and mixing
/// e.g. watts into a memory comparison is a compile error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceReport {
    /// Mean inference latency per example.
    pub latency: Seconds,
    /// Mean board power during sustained inference.
    pub power: Watts,
    /// Device memory consumed while the network is resident.
    pub memory: Mebibytes,
    /// Time-weighted mean compute utilisation in `[0, 1]`.
    pub utilization: f64,
}

impl InferenceReport {
    /// Energy per inference example (`power × latency`) — the efficiency
    /// metric the paper's follow-up work (NeuralPower \[10\]) optimizes
    /// directly. The unit algebra makes this definitionally correct:
    /// `Watts × Seconds = Joules`.
    pub fn energy_per_example(&self) -> Joules {
        self.power * self.latency
    }
}

/// Per-layer roofline costs at the device's inference batch size.
struct LayerCost {
    /// Execution time in seconds.
    time_s: f64,
    /// Compute utilisation `t_compute / max(t_compute, t_memory)`.
    utilization: f64,
    /// Occupancy factor in `[0, 1]`: how much of the device the layer's
    /// parallelism can keep busy.
    occupancy: f64,
}

fn layer_cost(device: &DeviceProfile, layer: &LayerShapeReport) -> LayerCost {
    let batch = device.inference_batch as f64;
    let flops = layer.flops as f64 * batch;
    let (ic, ih, iw) = layer.input;
    let in_bytes = (ic * ih * iw) as f64 * batch * 4.0;
    let out_bytes = layer.activations as f64 * batch * 4.0;
    let param_bytes = layer.params as f64 * 4.0;
    let bytes = in_bytes + out_bytes + param_bytes;

    let t_compute = flops / (device.peak_gflops * 1e9);
    let t_memory = bytes / (device.mem_bandwidth_gbps * 1e9);
    // Kernel-launch floor: even trivial layers cost a few microseconds.
    let time_s = t_compute.max(t_memory).max(3e-6);
    let utilization = if time_s > 0.0 {
        t_compute / time_s
    } else {
        0.0
    };
    // Parallelism: output elements, with a split-K factor for dense layers
    // (GEMM libraries parallelise the reduction dimension when the output
    // tile alone cannot fill the device).
    let k_split = if layer.kind == "dense" || layer.kind == "classifier" {
        8.0
    } else {
        1.0
    };
    let out_elems = layer.activations as f64 * batch * k_split;
    let occupancy = 1.0 - (-(out_elems / device.occupancy_saturation_elems)).exp();
    LayerCost {
        time_s,
        utilization,
        occupancy,
    }
}

/// Computes the noise-free inference power, memory, latency and utilisation
/// of `spec` on `device`.
///
/// **Power** is a time-weighted mix of per-layer draws: each layer draws
/// `idle + (max − idle)·(0.18 + 0.82·u·occ)` where `u` is its roofline
/// compute utilisation and `occ` its occupancy. The model is deliberately
/// *non-linear* in the structural hyper-parameters (roofline max, occupancy
/// exponential), so the paper's linear predictive model (Eq. 1) fits well
/// but not perfectly — matching the 4–7% RMSPE of Table 1.
///
/// **Memory** is `baseline + 2.0 × (3·params + batch·Σ activations +
/// im2col workspace)` in bytes: parameters are held in triplicate
/// (weights + gradient + momentum buffers, as Caffe keeps them for a net
/// loaded from training), activations are resident per batch element, and
/// the largest convolution contributes a (capped) im2col workspace. The 2.0 factor
/// models allocator slack.
///
/// This function never fails: every validated [`ArchSpec`] has a
/// well-defined cost on every device.
pub fn analyze(device: &DeviceProfile, spec: &ArchSpec) -> InferenceReport {
    let walk = spec.shape_walk();
    let batch = device.inference_batch as f64;

    let mut times_s = Vec::with_capacity(walk.len());
    let mut power_terms = Vec::with_capacity(walk.len());
    let mut util_terms = Vec::with_capacity(walk.len());
    for layer in &walk {
        let cost = layer_cost(device, layer);
        // Memory-bound kernels still draw substantial power (the memory
        // subsystem is not free), hence the 0.45 utilisation floor inside
        // the activity term.
        let activity = cost.occupancy * (0.45 + 0.55 * cost.utilization);
        let draw_fraction = 0.15 + 0.85 * activity;
        let power =
            device.idle_power_w + (device.max_power_w - device.idle_power_w) * draw_fraction;
        times_s.push(cost.time_s);
        power_terms.push(cost.time_s * power);
        util_terms.push(cost.time_s * cost.utilization);
    }
    // The layer walk is in network order; sum_ordered pins the
    // left-to-right association so the report stays bit-identical across
    // refactors of this loop (analyzer rule R14).
    let total_time = hyperpower_linalg::vector::sum_ordered(&times_s);
    let weighted_power = hyperpower_linalg::vector::sum_ordered(&power_terms);
    let weighted_util = hyperpower_linalg::vector::sum_ordered(&util_terms);
    let power_w = if total_time > 0.0 {
        weighted_power / total_time
    } else {
        device.idle_power_w
    };
    let utilization = if total_time > 0.0 {
        weighted_util / total_time
    } else {
        0.0
    };

    // Memory model.
    let params: f64 = walk.iter().map(|l| l.params as f64).sum();
    let total_activations: f64 = walk.iter().map(|l| l.activations as f64).sum::<f64>() + {
        let (c, h, w) = spec.input_shape();
        (c * h * w) as f64
    };
    let im2col = walk
        .iter()
        .filter(|l| l.kind == "conv")
        .map(|l| {
            let (ic, _, _) = l.input;
            let (_, oh, ow) = l.output;
            // k² recovered from flops: flops = 2·oc·ic·k²·oh·ow.
            let (oc, _, _) = l.output;
            let k2 = l.flops as f64 / (2.0 * (oc * ic * oh * ow) as f64);
            k2 * ic as f64 * (oh * ow) as f64 * batch * 4.0
        })
        .fold(0.0, f64::max)
        // cuDNN-style workspace limit: the framework falls back to
        // implicit-GEMM algorithms rather than allocate unbounded im2col
        // buffers.
        .min(64.0 * 1024.0 * 1024.0);
    let dynamic_bytes = 2.0 * (3.0 * params * 4.0 + batch * total_activations * 4.0 + im2col);
    let memory = Mebibytes(device.baseline_memory_mib) + Mebibytes::from_bytes(dynamic_bytes);

    InferenceReport {
        latency: Seconds(total_time / batch),
        power: Watts(power_w),
        memory,
        utilization,
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use hyperpower_nn::LayerSpec;

    fn cifar_arch(features: usize, kernel: usize, units: usize) -> ArchSpec {
        ArchSpec::new(
            (3, 32, 32),
            10,
            vec![
                LayerSpec::conv(features, kernel),
                LayerSpec::pool(2),
                LayerSpec::conv(features, kernel),
                LayerSpec::pool(2),
                LayerSpec::dense(units),
            ],
        )
        .unwrap()
    }

    fn mnist_arch(features: usize, kernel: usize, units: usize) -> ArchSpec {
        ArchSpec::new(
            (1, 28, 28),
            10,
            vec![
                LayerSpec::conv(features, kernel),
                LayerSpec::pool(2),
                LayerSpec::dense(units),
            ],
        )
        .unwrap()
    }

    #[test]
    fn power_within_device_envelope() {
        let gtx = DeviceProfile::gtx_1070();
        for (f, k, u) in [(20, 2, 200), (50, 3, 400), (80, 5, 700)] {
            let r = analyze(&gtx, &cifar_arch(f, k, u));
            assert!(r.power >= Watts(gtx.idle_power_w), "power {}", r.power);
            assert!(r.power <= Watts(gtx.max_power_w), "power {}", r.power);
        }
    }

    #[test]
    fn bigger_networks_draw_more_power() {
        let gtx = DeviceProfile::gtx_1070();
        let small = analyze(&gtx, &cifar_arch(20, 2, 200));
        let large = analyze(&gtx, &cifar_arch(80, 5, 700));
        assert!(
            large.power > small.power + Watts(5.0),
            "large {} vs small {}",
            large.power,
            small.power
        );
    }

    #[test]
    fn power_spread_makes_budget_selective() {
        // The paper's 90 W budget (CIFAR on GTX 1070) must split the space:
        // some configurations below, some above.
        let gtx = DeviceProfile::gtx_1070();
        let mut below = 0;
        let mut above = 0;
        for f in [20, 35, 50, 65, 80] {
            for k in [2, 3, 4, 5] {
                for u in [200, 450, 700] {
                    let p = analyze(&gtx, &cifar_arch(f, k, u)).power;
                    if p <= Watts(90.0) {
                        below += 1;
                    } else {
                        above += 1;
                    }
                }
            }
        }
        // The feasible region is deliberately small (the paper's default
        // methods waste most samples on violations), but must exist.
        assert!(below >= 3, "only {below} configs under budget");
        assert!(above >= 20, "only {above} configs over budget");
    }

    #[test]
    fn tegra_power_spread_crosses_budgets() {
        let tegra = DeviceProfile::tegra_tx1();
        let mnist_small = analyze(&tegra, &mnist_arch(20, 2, 200)).power;
        let mnist_large = analyze(&tegra, &mnist_arch(80, 5, 700)).power;
        // 10 W budget should separate small from large MNIST nets.
        assert!(mnist_small < Watts(10.0), "small draws {mnist_small}");
        assert!(mnist_large > Watts(10.0), "large draws {mnist_large}");
        let cifar_large = analyze(&tegra, &cifar_arch(80, 5, 700)).power;
        assert!(cifar_large > Watts(12.0), "large CIFAR draws {cifar_large}");
    }

    #[test]
    fn memory_spread_crosses_gtx_budgets() {
        let gtx = DeviceProfile::gtx_1070();
        let cifar_small = analyze(&gtx, &cifar_arch(20, 2, 200)).memory;
        let cifar_large = analyze(&gtx, &cifar_arch(80, 5, 700)).memory;
        assert!(
            cifar_small < Mebibytes::from_gib(1.25),
            "small CIFAR {cifar_small}"
        );
        assert!(
            cifar_large > Mebibytes::from_gib(1.25),
            "large CIFAR {cifar_large}"
        );
        let mnist_small = analyze(&gtx, &mnist_arch(20, 2, 200)).memory;
        let mnist_large = analyze(&gtx, &mnist_arch(80, 5, 700)).memory;
        assert!(
            mnist_small < Mebibytes::from_gib(1.15),
            "small MNIST {mnist_small}"
        );
        assert!(
            mnist_large > Mebibytes::from_gib(1.15),
            "large MNIST {mnist_large}"
        );
    }

    #[test]
    fn memory_monotone_in_units() {
        let gtx = DeviceProfile::gtx_1070();
        let a = analyze(&gtx, &mnist_arch(40, 3, 200)).memory;
        let b = analyze(&gtx, &mnist_arch(40, 3, 700)).memory;
        assert!(b > a);
    }

    #[test]
    fn latency_positive_and_batch_scaled() {
        let gtx = DeviceProfile::gtx_1070();
        let r = analyze(&gtx, &cifar_arch(50, 3, 400));
        assert!(r.latency > Seconds::ZERO);
        assert!(
            r.latency < Seconds(0.1),
            "per-example latency {}",
            r.latency
        );
    }

    #[test]
    fn utilization_in_unit_interval() {
        for device in [DeviceProfile::gtx_1070(), DeviceProfile::tegra_tx1()] {
            let r = analyze(&device, &cifar_arch(50, 4, 500));
            assert!((0.0..=1.0).contains(&r.utilization));
        }
    }

    #[test]
    fn tegra_saturates_easier_than_gtx() {
        // The same net keeps a bigger fraction of the small device busy.
        // `Watts / Watts` is the dimensionless fraction.
        let spec = cifar_arch(40, 3, 400);
        let tegra = analyze(&DeviceProfile::tegra_tx1(), &spec);
        let gtx = analyze(&DeviceProfile::gtx_1070(), &spec);
        let tegra_frac = (tegra.power - Watts(1.8)) / Watts(14.5 - 1.8);
        let gtx_frac = (gtx.power - Watts(45.0)) / Watts(150.0 - 45.0);
        assert!(tegra_frac > gtx_frac);
    }

    #[test]
    fn energy_is_power_times_latency() {
        let gtx = DeviceProfile::gtx_1070();
        let r = analyze(&gtx, &cifar_arch(40, 3, 300));
        let direct: Joules = r.power * r.latency;
        assert!((r.energy_per_example() - direct).get().abs() < 1e-15);
        assert!(r.energy_per_example() > Joules::ZERO);
        // Bigger nets cost more energy per example.
        let big = analyze(&gtx, &cifar_arch(80, 5, 700));
        assert!(big.energy_per_example() > r.energy_per_example());
    }

    #[test]
    fn deterministic() {
        let gtx = DeviceProfile::gtx_1070();
        let spec = cifar_arch(33, 4, 321);
        assert_eq!(analyze(&gtx, &spec), analyze(&gtx, &spec));
    }
}
