//! Deterministic fault injection for the simulated GPU fleet.
//!
//! A production HPO service survives the failures real fleets produce —
//! OOM aborts near the memory capacity, driver crashes, flaky sensors,
//! stalled workers — and this module lets the *simulated* fleet produce
//! them reproducibly. A [`FaultPlan`] is a pure function of the run seed,
//! the proposal (query) index and the attempt number: it never reads the
//! wall clock, never touches the proposal RNG and never touches the
//! [`Gpu`](crate::Gpu) sensor stream, so
//!
//! * the same `(seed, profile)` always yields the same fault schedule —
//!   fault-injected runs are golden-traceable like fault-free ones, and
//! * a plan with [`FaultProfile::none`] draws nothing at all: enabling the
//!   subsystem with the empty profile is byte-identical to not having it.
//!
//! The executor (in `hyperpower-core`) decides what a fault *means* —
//! retry, backoff, quarantine; this module only decides *which* faults
//! occur and where inside an attempt they strike.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A fault injected into one training attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingFault {
    /// The training job aborted with an out-of-memory error. Injected with
    /// a probability that grows as the candidate's predicted memory
    /// approaches the device capacity.
    Oom,
    /// The training job crashed hard (driver reset, segfault, killed pod).
    Crash,
    /// The worker stalled and stopped making progress; the virtual-time
    /// watchdog reaps it after [`FaultProfile::timeout_s`].
    Stall,
}

/// Stream salts: each injectable decision draws from its own derived
/// stream so adding one kind of fault never shifts another kind's
/// schedule.
const SALT_TRAINING: u64 = 0xFA17_0001;
const SALT_GLITCH: u64 = 0xFA17_0002;
const SALT_POINT: u64 = 0xFA17_0003;
const SALT_BACKOFF: u64 = 0xFA17_0004;

/// Injection rates and thresholds for one run.
///
/// Probabilities are per *attempt*; `oom_prob_at_full_pressure` is scaled
/// by how far the candidate's memory pressure sits past
/// `oom_onset_frac` (below the onset, OOM never fires). A non-finite
/// `timeout_s` disables both the stall fault and the watchdog.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Profile name, used for CLI selection and checkpoint-header
    /// verification.
    pub name: String,
    /// Probability that a completed attempt's first sensor read is garbage
    /// and must be discarded and repeated.
    pub sensor_glitch_prob: f64,
    /// OOM probability when predicted memory equals the device capacity.
    pub oom_prob_at_full_pressure: f64,
    /// Memory-pressure fraction (predicted memory / capacity) below which
    /// OOM faults never fire.
    pub oom_onset_frac: f64,
    /// Probability of a hard job crash per attempt.
    pub crash_prob: f64,
    /// Probability of a worker stall per attempt (only meaningful with a
    /// finite `timeout_s`).
    pub stall_prob: f64,
    /// Virtual-time watchdog: an attempt that would run longer than this
    /// (or a stalled worker) is reaped after exactly this many seconds.
    /// `f64::INFINITY` disables the watchdog.
    pub timeout_s: f64,
    /// Systematic power-sensor miscalibration accumulating over *virtual*
    /// time: every committed power reading is biased by
    /// `sensor_drift_w_per_hour × (commit timestamp in hours)`. Unlike the
    /// glitch fault (transient, per-read) this models a sensor slowly
    /// walking away from the profiling-time calibration — the drift the
    /// self-healing constraint layer exists to detect. `0.0` disables it
    /// and draws nothing.
    pub sensor_drift_w_per_hour: f64,
}

impl FaultProfile {
    /// The empty profile: no faults, no watchdog. A [`FaultPlan`] built
    /// from it draws no randomness and changes no behavior.
    pub fn none() -> Self {
        FaultProfile {
            name: "none".into(),
            sensor_glitch_prob: 0.0,
            oom_prob_at_full_pressure: 0.0,
            oom_onset_frac: 1.0,
            crash_prob: 0.0,
            stall_prob: 0.0,
            timeout_s: f64::INFINITY,
            sensor_drift_w_per_hour: 0.0,
        }
    }

    /// Mostly sensor noise: frequent glitched reads, occasional crashes.
    pub fn flaky_sensor() -> Self {
        FaultProfile {
            name: "flaky-sensor".into(),
            sensor_glitch_prob: 0.3,
            oom_prob_at_full_pressure: 0.0,
            oom_onset_frac: 1.0,
            crash_prob: 0.05,
            stall_prob: 0.0,
            timeout_s: f64::INFINITY,
            sensor_drift_w_per_hour: 0.0,
        }
    }

    /// Memory-starved fleet: OOM aborts ramp up from 10% memory pressure,
    /// plus background crashes, stalls and a 1 h watchdog.
    pub fn oom_heavy() -> Self {
        FaultProfile {
            name: "oom-heavy".into(),
            sensor_glitch_prob: 0.05,
            oom_prob_at_full_pressure: 0.9,
            oom_onset_frac: 0.1,
            crash_prob: 0.05,
            stall_prob: 0.05,
            timeout_s: 3600.0,
            sensor_drift_w_per_hour: 0.0,
        }
    }

    /// Hardware slowly walking away from its profiling-time calibration:
    /// the power sensor accumulates +10 W of bias per virtual hour while
    /// every transient fault stays off. The profile that exercises drift
    /// detection and online recalibration.
    pub fn drifting_hw() -> Self {
        FaultProfile {
            name: "drifting-hw".into(),
            sensor_drift_w_per_hour: 10.0,
            ..FaultProfile::none()
        }
    }

    /// A fleet of stragglers: workers frequently stall mid-attempt and the
    /// 1.5 h watchdog reaps them, so leases routinely outlive optimistic
    /// deadlines. The profile that exercises hedged re-dispatch and the
    /// worker health state machine.
    pub fn slow_worker() -> Self {
        FaultProfile {
            name: "slow-worker".into(),
            sensor_glitch_prob: 0.05,
            oom_prob_at_full_pressure: 0.0,
            oom_onset_frac: 1.0,
            crash_prob: 0.05,
            stall_prob: 0.3,
            timeout_s: 5400.0,
            sensor_drift_w_per_hour: 0.0,
        }
    }

    /// Decaying storage/memory at the worker: corrupted state surfaces as
    /// garbage sensor reads and hard job crashes. The training-side
    /// companion of the store-level `bit-rot` chaos mode (which flips bits
    /// in journals and snapshots at rest).
    pub fn bit_rot() -> Self {
        FaultProfile {
            name: "bit-rot".into(),
            sensor_glitch_prob: 0.2,
            oom_prob_at_full_pressure: 0.0,
            oom_onset_frac: 1.0,
            crash_prob: 0.1,
            stall_prob: 0.0,
            timeout_s: f64::INFINITY,
            sensor_drift_w_per_hour: 0.0,
        }
    }

    /// Looks up a built-in profile by its CLI name
    /// (`none | flaky-sensor | oom-heavy | drifting-hw | slow-worker |
    /// bit-rot`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "none" => Some(FaultProfile::none()),
            "flaky-sensor" => Some(FaultProfile::flaky_sensor()),
            "oom-heavy" => Some(FaultProfile::oom_heavy()),
            "drifting-hw" => Some(FaultProfile::drifting_hw()),
            "slow-worker" => Some(FaultProfile::slow_worker()),
            "bit-rot" => Some(FaultProfile::bit_rot()),
            _ => None,
        }
    }

    /// Whether this profile can never inject anything (all rates zero, no
    /// sensor drift and the watchdog disabled).
    pub fn is_inert(&self) -> bool {
        self.sensor_glitch_prob <= 0.0
            && self.oom_prob_at_full_pressure <= 0.0
            && self.crash_prob <= 0.0
            && self.stall_prob <= 0.0
            && self.timeout_s.is_infinite()
            && self.sensor_drift_w_per_hour <= 0.0
    }

    /// The accumulated power-sensor bias (watts) at virtual time
    /// `virtual_secs`. A pure function of the timestamp — no randomness —
    /// so drift-biased readings stay worker-invariant and resumable.
    pub fn power_bias_w(&self, virtual_secs: f64) -> f64 {
        if self.sensor_drift_w_per_hour <= 0.0 {
            return 0.0;
        }
        self.sensor_drift_w_per_hour * virtual_secs / 3600.0
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

/// The seeded fault schedule of one optimization run.
///
/// Every decision is drawn from a fresh [`StdRng`] seeded by mixing the
/// run seed with the query index, the attempt number and a per-stream
/// salt, so faults are a pure function of *which proposal* and *which
/// attempt* — never of thread timing, commit order or how many other
/// faults fired before.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    profile: FaultProfile,
    seed: u64,
}

impl FaultPlan {
    /// Creates the fault schedule for one run.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultPlan { profile, seed }
    }

    /// The profile this plan draws from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Whether this plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.profile.is_inert()
    }

    /// The fault (if any) injected into attempt `attempt` (1-based) of
    /// query `query`, given the candidate's memory pressure (predicted
    /// memory as a fraction of device capacity).
    ///
    /// One uniform draw is partitioned over `[OOM | crash | stall | ok]`,
    /// with the OOM slice scaled by the pressure past the onset and the
    /// stall slice gated on a finite watchdog.
    pub fn training_fault(
        &self,
        query: u64,
        attempt: u32,
        memory_pressure_frac: f64,
    ) -> Option<TrainingFault> {
        if self.is_inert() {
            return None;
        }
        let p = &self.profile;
        let over_onset = ((memory_pressure_frac - p.oom_onset_frac)
            / (1.0 - p.oom_onset_frac).max(f64::MIN_POSITIVE))
        .clamp(0.0, 1.0);
        let oom_prob = p.oom_prob_at_full_pressure * over_onset;
        let stall_prob = if p.timeout_s.is_finite() {
            p.stall_prob
        } else {
            0.0
        };
        let u = self.unit_draw(SALT_TRAINING, query, attempt);
        if u < oom_prob {
            Some(TrainingFault::Oom)
        } else if u < oom_prob + p.crash_prob {
            Some(TrainingFault::Crash)
        } else if u < oom_prob + p.crash_prob + stall_prob {
            Some(TrainingFault::Stall)
        } else {
            None
        }
    }

    /// Whether the first sensor read after query `query` completes is a
    /// transient glitch (discarded and repeated at measurement cost).
    pub fn sensor_glitch(&self, query: u64) -> bool {
        if self.is_inert() || self.profile.sensor_glitch_prob <= 0.0 {
            return false;
        }
        self.unit_draw(SALT_GLITCH, query, 1) < self.profile.sensor_glitch_prob
    }

    /// How far into attempt `attempt` of query `query` an OOM/crash fault
    /// strikes, as a fraction of the attempt's training time in
    /// `[0.05, 0.95]` (a job never dies at exactly 0 or 100%).
    pub fn fault_point_frac(&self, query: u64, attempt: u32) -> f64 {
        0.05 + 0.9 * self.unit_draw(SALT_POINT, query, attempt)
    }

    /// The uniform `[0, 1)` jitter draw for the backoff after a failed
    /// attempt `attempt` of query `query`.
    pub fn backoff_unit(&self, query: u64, attempt: u32) -> f64 {
        self.unit_draw(SALT_BACKOFF, query, attempt)
    }

    /// One uniform `[0, 1)` draw from the `(salt, query, attempt)` stream.
    fn unit_draw(&self, salt: u64, query: u64, attempt: u32) -> f64 {
        // Golden-ratio mixing (the workspace's standard seed derivation)
        // keeps neighbouring (query, attempt) pairs statistically
        // independent while staying a pure function of the inputs.
        let mut h = self.seed ^ salt;
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(query);
        h = h
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(attempt));
        StdRng::seed_from_u64(h).random_range(0.0..1.0)
    }
}

#[cfg(test)]
// Exact float equality is intended: determinism asserts bit-identical draws.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn none_profile_is_inert_and_draws_nothing() {
        let plan = FaultPlan::new(FaultProfile::none(), 42);
        assert!(plan.is_inert());
        for q in 0..50 {
            assert_eq!(plan.training_fault(q, 1, 0.99), None);
            assert!(!plan.sensor_glitch(q));
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_query_attempt() {
        let a = FaultPlan::new(FaultProfile::oom_heavy(), 7);
        let b = FaultPlan::new(FaultProfile::oom_heavy(), 7);
        for q in 0..100 {
            for attempt in 1..4 {
                assert_eq!(
                    a.training_fault(q, attempt, 0.5),
                    b.training_fault(q, attempt, 0.5)
                );
                assert_eq!(
                    a.fault_point_frac(q, attempt),
                    b.fault_point_frac(q, attempt)
                );
                assert_eq!(a.backoff_unit(q, attempt), b.backoff_unit(q, attempt));
            }
            assert_eq!(a.sensor_glitch(q), b.sensor_glitch(q));
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(FaultProfile::flaky_sensor(), 1);
        let b = FaultPlan::new(FaultProfile::flaky_sensor(), 2);
        let differs = (0..200).any(|q| a.sensor_glitch(q) != b.sensor_glitch(q));
        assert!(differs, "seeds 1 and 2 produced identical glitch schedules");
    }

    #[test]
    fn oom_rate_grows_with_memory_pressure() {
        let plan = FaultPlan::new(FaultProfile::oom_heavy(), 3);
        let ooms_at = |pressure: f64| {
            (0..500)
                .filter(|&q| plan.training_fault(q, 1, pressure) == Some(TrainingFault::Oom))
                .count()
        };
        // Below the onset OOM never fires; past it the rate climbs.
        assert_eq!(ooms_at(0.05), 0);
        let mid = ooms_at(0.5);
        let high = ooms_at(1.0);
        assert!(mid > 0, "no OOMs at 50% pressure");
        assert!(high > mid, "OOM rate not increasing: {mid} vs {high}");
    }

    #[test]
    fn stall_requires_finite_watchdog() {
        let mut profile = FaultProfile::oom_heavy();
        profile.stall_prob = 1.0;
        profile.timeout_s = f64::INFINITY;
        let plan = FaultPlan::new(profile, 11);
        for q in 0..100 {
            assert_ne!(plan.training_fault(q, 1, 0.0), Some(TrainingFault::Stall));
        }
    }

    #[test]
    fn flaky_sensor_glitches_at_roughly_its_rate() {
        let plan = FaultPlan::new(FaultProfile::flaky_sensor(), 9);
        let glitches = (0..1000).filter(|&q| plan.sensor_glitch(q)).count();
        assert!(
            (150..450).contains(&glitches),
            "glitch count {glitches} far from the configured 30%"
        );
    }

    #[test]
    fn fault_point_stays_inside_the_attempt() {
        let plan = FaultPlan::new(FaultProfile::oom_heavy(), 5);
        for q in 0..200 {
            let f = plan.fault_point_frac(q, 1);
            assert!((0.05..=0.95).contains(&f), "fault point {f}");
        }
    }

    #[test]
    fn attempts_draw_independent_faults() {
        let plan = FaultPlan::new(FaultProfile::oom_heavy(), 13);
        let differs =
            (0..200).any(|q| plan.training_fault(q, 1, 0.6) != plan.training_fault(q, 2, 0.6));
        assert!(differs, "attempt number never changed the outcome");
    }

    #[test]
    fn parse_knows_every_builtin() {
        for name in [
            "none",
            "flaky-sensor",
            "oom-heavy",
            "drifting-hw",
            "slow-worker",
            "bit-rot",
        ] {
            let p = FaultProfile::parse(name).expect("builtin profile");
            assert_eq!(p.name, name);
        }
        assert!(FaultProfile::parse("chaos-monkey").is_none());
        assert!(FaultProfile::parse("none").is_some_and(|p| p.is_inert()));
        assert!(FaultProfile::parse("oom-heavy").is_some_and(|p| !p.is_inert()));
        assert!(FaultProfile::parse("drifting-hw").is_some_and(|p| !p.is_inert()));
        assert!(FaultProfile::parse("slow-worker").is_some_and(|p| !p.is_inert()));
        assert!(FaultProfile::parse("bit-rot").is_some_and(|p| !p.is_inert()));
    }

    #[test]
    fn drifting_hw_biases_power_linearly_and_injects_nothing_else() {
        let profile = FaultProfile::drifting_hw();
        assert_eq!(profile.power_bias_w(0.0), 0.0);
        assert_eq!(profile.power_bias_w(3600.0), 10.0);
        assert_eq!(profile.power_bias_w(1800.0), 5.0);
        // No transient faults: the only effect is the deterministic bias.
        let plan = FaultPlan::new(profile, 42);
        for q in 0..100 {
            assert_eq!(plan.training_fault(q, 1, 0.99), None);
            assert!(!plan.sensor_glitch(q));
        }
        // The inert profile has zero bias everywhere.
        assert_eq!(FaultProfile::none().power_bias_w(7200.0), 0.0);
    }
}
