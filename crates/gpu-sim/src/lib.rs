//! GPU hardware simulator for the HyperPower reproduction.
//!
//! The paper measures the inference-time **power** and **memory** of
//! candidate CNNs on two physical platforms — an NVIDIA GTX 1070 (via NVML)
//! and a Tegra TX1 (via `tegrastats`, which cannot report memory; the paper
//! therefore skips memory constraints on Tegra). No such hardware exists in
//! this environment, so this crate provides an analytical stand-in with the
//! properties the paper's method depends on (see DESIGN.md §2):
//!
//! * power and memory depend only on the *structural* hyper-parameters of
//!   the network (never on the trained weights) — the insight that makes
//!   them a-priori-known constraints (paper §3.2),
//! * both are smooth, monotone-ish functions of layer sizes, well — but not
//!   perfectly — approximated by the paper's linear models (Eq. 1–2); the
//!   ground truth here is a *roofline-style* non-linear model, so the
//!   linear predictor has realistic residuals (Table 1 reports 4–7% RMSPE),
//! * measurements carry sensor noise, and the Tegra memory sensor reports
//!   `Unsupported` exactly like the real board.
//!
//! The crate also hosts the [`VirtualClock`] and [`TrainingCostModel`] used
//! to run the paper's wall-clock-budgeted experiments (2 h / 5 h) in
//! simulated time, plus the multi-GPU [`WorkerClock`] and deterministic
//! [`CommitQueue`] that the parallel executor schedules against.
//!
//! # Examples
//!
//! ```
//! use hyperpower_gpu_sim::{DeviceProfile, Gpu};
//! use hyperpower_nn::{ArchSpec, LayerSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ArchSpec::new((3, 32, 32), 10, vec![
//!     LayerSpec::conv(64, 5),
//!     LayerSpec::pool(2),
//!     LayerSpec::dense(512),
//! ])?;
//! use hyperpower_gpu_sim::{Mebibytes, Watts};
//! let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), 7);
//! let power = gpu.measure_power(&spec);
//! assert!(power > Watts(45.0) && power < Watts(151.0));
//! let memory = gpu.measure_memory(&spec)?;
//! assert!(memory > Mebibytes::ZERO);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod clock;
mod device;
mod fault;
mod sensor;

pub use analysis::{analyze, InferenceReport};
pub use clock::{CommitQueue, TrainingCostModel, VirtualClock, WorkerClock};
pub use device::DeviceProfile;
pub use fault::{FaultPlan, FaultProfile, TrainingFault};
// Measurement results carry their units in the type; re-exported so
// downstream crates can name them without depending on the linalg crate.
pub use hyperpower_linalg::units::{Joules, Mebibytes, Seconds, Watts};
pub use sensor::{Gpu, MeasurementError};
