use hyperpower_nn::ArchSpec;

/// A virtual wall clock for time-budgeted experiments.
///
/// The paper's fixed-runtime experiments give each method a 2 h (MNIST) or
/// 5 h (CIFAR-10) wall-clock budget and let the last run started before the
/// deadline finish. Re-running that in real time would be absurd inside a
/// simulation, so every simulated action advances this clock by its modelled
/// duration instead; the experiment drivers read budgets and timestamps off
/// it. Only *relative* durations matter for the reproduced tables.
///
/// # Examples
///
/// ```
/// use hyperpower_gpu_sim::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance_secs(90.0);
/// clock.advance_hours(1.0);
/// assert!((clock.hours() - 1.025).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VirtualClock {
    now_s: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock by `dt_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is negative or non-finite.
    pub fn advance_secs(&mut self, dt_s: f64) {
        assert!(
            dt_s.is_finite() && dt_s >= 0.0,
            "cannot advance clock by {dt_s}"
        );
        self.now_s += dt_s;
    }

    /// Advances the clock by `hours`.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative or non-finite.
    pub fn advance_hours(&mut self, hours: f64) {
        self.advance_secs(hours * 3600.0);
    }

    /// Elapsed virtual time in seconds.
    pub fn seconds(&self) -> f64 {
        self.now_s
    }

    /// Elapsed virtual time in hours.
    pub fn hours(&self) -> f64 {
        self.now_s / 3600.0
    }
}

/// Per-worker virtual timelines for multi-GPU experiments.
///
/// The parallel executor models K simulated training GPUs, each with its own
/// wall clock. A worker's timeline advances by the modelled duration of every
/// action it performs (proposal overhead, training, measurement), exactly like
/// [`VirtualClock`] does for the single-GPU loop; the experiment-level clock
/// is the *latest* worker timeline, and scheduling decisions pick the
/// *earliest* free worker with a deterministic lowest-index tiebreak.
///
/// # Examples
///
/// ```
/// use hyperpower_gpu_sim::WorkerClock;
///
/// let mut clock = WorkerClock::new(3);
/// clock.advance_secs(1, 50.0);
/// clock.advance_secs(2, 80.0);
/// assert_eq!(clock.earliest(), 0); // index tiebreak is irrelevant here
/// assert!((clock.latest_secs() - 80.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerClock {
    now_s: Vec<f64>,
}

impl WorkerClock {
    /// `workers` timelines, all at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker timeline");
        WorkerClock {
            now_s: vec![0.0; workers],
        }
    }

    /// Number of worker timelines.
    pub fn workers(&self) -> usize {
        self.now_s.len()
    }

    /// Advances worker `w`'s timeline by `dt_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or `dt_s` is negative or non-finite
    /// (mirroring [`VirtualClock::advance_secs`]).
    pub fn advance_secs(&mut self, w: usize, dt_s: f64) {
        assert!(
            dt_s.is_finite() && dt_s >= 0.0,
            "cannot advance clock by {dt_s}"
        );
        self.now_s[w] += dt_s;
    }

    /// Moves worker `w`'s timeline forward to `at_s` if it is behind it
    /// (synchronisation point, e.g. waiting on another worker's commit).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or `at_s` is non-finite.
    pub fn advance_to(&mut self, w: usize, at_s: f64) {
        assert!(at_s.is_finite(), "cannot move clock to {at_s}");
        if at_s > self.now_s[w] {
            self.now_s[w] = at_s;
        }
    }

    /// Worker `w`'s current time in seconds.
    pub fn seconds(&self, w: usize) -> f64 {
        self.now_s[w]
    }

    /// Index of the worker whose timeline is earliest; ties break to the
    /// lowest index, so scheduling is deterministic.
    pub fn earliest(&self) -> usize {
        let mut best = 0;
        for (w, &t) in self.now_s.iter().enumerate().skip(1) {
            if t.total_cmp(&self.now_s[best]) == std::cmp::Ordering::Less {
                best = w;
            }
        }
        best
    }

    /// The latest worker timeline in seconds — the experiment-level elapsed
    /// time once all workers have drained.
    pub fn latest_secs(&self) -> f64 {
        // In-bounds: `now_s` has one entry per worker, workers >= 1; the
        // grant covers both accesses.
        let mut latest = self.now_s[0]; // analyze::allow(R15)
        for &t in &self.now_s[1..] {
            if t.total_cmp(&latest) == std::cmp::Ordering::Greater {
                latest = t;
            }
        }
        latest
    }
}

/// A deterministic completion-ordered queue for committing parallel results.
///
/// Items are pushed with their virtual completion time and a unique sequence
/// number (proposal order). [`CommitQueue::pop_min`] always returns the item
/// with the smallest `(completion time, sequence)` pair — `total_cmp` on the
/// time, then the sequence as tiebreak — so the commit order of concurrently
/// finishing work never depends on thread scheduling.
#[derive(Debug, Clone)]
pub struct CommitQueue<T> {
    items: Vec<(f64, u64, T)>,
}

impl<T> Default for CommitQueue<T> {
    fn default() -> Self {
        CommitQueue { items: Vec::new() }
    }
}

impl<T> CommitQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        CommitQueue::default()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Queues `item` completing at `time_s` with proposal-order `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `time_s` is non-finite: a NaN completion time would make
    /// the commit order meaningless.
    pub fn push(&mut self, time_s: f64, seq: u64, item: T) {
        assert!(time_s.is_finite(), "completion time {time_s} not finite");
        self.items.push((time_s, seq, item));
    }

    /// Removes and returns the `(time_s, seq, item)` triple with the
    /// smallest `(time, seq)` key, or `None` if empty.
    pub fn pop_min(&mut self) -> Option<(f64, u64, T)> {
        let mut best: Option<usize> = None;
        for (i, (t, s, _)) in self.items.iter().enumerate() {
            best = match best {
                None => Some(i),
                Some(b) => {
                    let (bt, bs, _) = &self.items[b]; // in-bounds: b comes from enumerate. analyze::allow(R15)
                    if key_less((*t, *s), (*bt, *bs)) {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best.map(|i| self.items.swap_remove(i))
    }

    /// The smallest `(time, seq)` key currently queued, without removing it.
    pub fn peek_min_key(&self) -> Option<(f64, u64)> {
        let mut best: Option<(f64, u64)> = None;
        for (t, s, _) in &self.items {
            best = match best {
                None => Some((*t, *s)),
                Some(b) => {
                    if key_less((*t, *s), b) {
                        Some((*t, *s))
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }
}

/// `(time, seq)` strict ordering: `total_cmp` on the time, sequence tiebreak.
fn key_less(a: (f64, u64), b: (f64, u64)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Equal => a.1 < b.1,
        std::cmp::Ordering::Greater => false,
    }
}

/// Models how long training-related actions take on the training server.
///
/// In the paper's setup candidate networks are *trained* on the server and
/// only *profiled* on the target platform, so training cost is a property
/// of the server, not of the constraint device. One epoch costs
/// `3 × forward_flops × examples / throughput` (backward ≈ 2× forward);
/// every launched run also pays a fixed overhead (network generation,
/// framework start-up, data staging).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingCostModel {
    /// Sustained training throughput of the server in FLOP/s.
    pub throughput_flops: f64,
    /// Fixed per-run overhead in seconds.
    pub per_run_overhead_s: f64,
    /// Cost of one power/memory *measurement* on the target platform in
    /// seconds (running a few inference batches while polling the sensor).
    pub measurement_s: f64,
    /// Cost of processing one candidate through the predictive
    /// power/memory models: the dot products themselves are free (the
    /// whole point of the paper), but each queried sample still pays the
    /// optimizer's proposal/bookkeeping overhead (in Spearmint, seconds).
    pub model_eval_s: f64,
}

impl Default for TrainingCostModel {
    /// Calibrated so that full training runs land in the paper's regime:
    /// several minutes per MNIST-scale run, tens of minutes per CIFAR-scale
    /// run (paper Tables 3–4: ≈14 completed runs in 2 h / 5 h).
    fn default() -> Self {
        TrainingCostModel {
            throughput_flops: 2.2e11,
            per_run_overhead_s: 90.0,
            measurement_s: 10.0,
            model_eval_s: 5.0,
        }
    }
}

impl TrainingCostModel {
    /// Seconds to train `spec` for `epochs` epochs over `examples` examples.
    pub fn training_secs(&self, spec: &ArchSpec, examples: usize, epochs: usize) -> f64 {
        let flops = 3.0 * spec.flops_per_example() as f64 * examples as f64 * epochs as f64;
        self.per_run_overhead_s + flops / self.throughput_flops
    }

    /// Seconds per single training epoch (no per-run overhead).
    pub fn epoch_secs(&self, spec: &ArchSpec, examples: usize) -> f64 {
        3.0 * spec.flops_per_example() as f64 * examples as f64 / self.throughput_flops
    }
}

#[cfg(test)]
// Exact float equality is intended here: virtual-clock arithmetic is exact.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use hyperpower_nn::LayerSpec;

    fn mnist_big() -> ArchSpec {
        ArchSpec::new(
            (1, 28, 28),
            10,
            vec![
                LayerSpec::conv(60, 5),
                LayerSpec::pool(2),
                LayerSpec::dense(600),
            ],
        )
        .unwrap()
    }

    fn cifar_big() -> ArchSpec {
        ArchSpec::new(
            (3, 32, 32),
            10,
            vec![
                LayerSpec::conv(80, 5),
                LayerSpec::pool(2),
                LayerSpec::conv(80, 5),
                LayerSpec::pool(2),
                LayerSpec::conv(80, 5),
                LayerSpec::pool(2),
                LayerSpec::dense(700),
            ],
        )
        .unwrap()
    }

    #[test]
    fn clock_accumulates() {
        let mut c = VirtualClock::new();
        assert_eq!(c.seconds(), 0.0);
        c.advance_secs(10.0);
        c.advance_secs(20.0);
        assert_eq!(c.seconds(), 30.0);
        c.advance_hours(2.0);
        assert!((c.hours() - (2.0 + 30.0 / 3600.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn negative_advance_panics() {
        VirtualClock::new().advance_secs(-1.0);
    }

    #[test]
    fn full_runs_in_paper_regime() {
        let cost = TrainingCostModel::default();
        // MNIST full run (60k examples, 40 epochs): minutes, not hours.
        let mnist = cost.training_secs(&mnist_big(), 60_000, 40) / 60.0;
        assert!(
            (3.0..20.0).contains(&mnist),
            "MNIST full run {mnist} minutes"
        );
        // CIFAR full run (50k examples, 40 epochs): tens of minutes.
        let cifar = cost.training_secs(&cifar_big(), 50_000, 40) / 60.0;
        assert!(
            (10.0..70.0).contains(&cifar),
            "CIFAR full run {cifar} minutes"
        );
    }

    #[test]
    fn early_termination_saves_most_of_the_cost() {
        let cost = TrainingCostModel::default();
        let full = cost.training_secs(&cifar_big(), 50_000, 40);
        let early = cost.training_secs(&cifar_big(), 50_000, 3);
        assert!(early < full * 0.15, "early {early} vs full {full}");
    }

    #[test]
    fn model_eval_is_orders_cheaper_than_training() {
        let cost = TrainingCostModel::default();
        assert!(cost.model_eval_s * 15.0 < cost.per_run_overhead_s);
    }

    #[test]
    fn worker_clock_earliest_prefers_lowest_index_on_ties() {
        let mut c = WorkerClock::new(4);
        assert_eq!(c.earliest(), 0);
        c.advance_secs(0, 10.0);
        c.advance_secs(2, 10.0);
        // 1 and 3 are tied at 0.0 → lowest index wins.
        assert_eq!(c.earliest(), 1);
        c.advance_secs(1, 30.0);
        c.advance_secs(3, 30.0);
        // 0 and 2 are tied at 10.0 → lowest index wins.
        assert_eq!(c.earliest(), 0);
        assert_eq!(c.latest_secs(), 30.0);
    }

    #[test]
    fn worker_clock_advance_to_never_rewinds() {
        let mut c = WorkerClock::new(2);
        c.advance_secs(0, 100.0);
        c.advance_to(0, 50.0);
        assert_eq!(c.seconds(0), 100.0);
        c.advance_to(0, 150.0);
        assert_eq!(c.seconds(0), 150.0);
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn worker_clock_negative_advance_panics() {
        WorkerClock::new(1).advance_secs(0, -1.0);
    }

    #[test]
    fn commit_queue_pops_by_time_then_seq() {
        let mut q = CommitQueue::new();
        q.push(20.0, 0, "slow-but-first");
        q.push(10.0, 1, "fast");
        q.push(20.0, 2, "slow-and-later");
        q.push(15.0, 3, "middle");
        assert_eq!(q.peek_min_key(), Some((10.0, 1)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_min().map(|(_, _, i)| i)).collect();
        assert_eq!(
            order,
            ["fast", "middle", "slow-but-first", "slow-and-later"]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn commit_queue_equal_times_break_by_seq() {
        let mut q = CommitQueue::new();
        q.push(5.0, 9, "b");
        q.push(5.0, 3, "a");
        q.push(5.0, 12, "c");
        assert_eq!(q.pop_min().map(|(_, s, i)| (s, i)), Some((3, "a")));
        assert_eq!(q.pop_min().map(|(_, s, i)| (s, i)), Some((9, "b")));
        assert_eq!(q.pop_min().map(|(_, s, i)| (s, i)), Some((12, "c")));
        assert_eq!(q.pop_min().map(|(_, _, i)| i), None);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn commit_queue_rejects_nan_completion_times() {
        CommitQueue::new().push(f64::NAN, 0, ());
    }

    #[test]
    fn epoch_secs_times_epochs_matches_training_minus_overhead() {
        let cost = TrainingCostModel::default();
        let spec = mnist_big();
        let by_epoch = cost.epoch_secs(&spec, 60_000) * 40.0 + cost.per_run_overhead_s;
        let direct = cost.training_secs(&spec, 60_000, 40);
        assert!((by_epoch - direct).abs() < 1e-9);
    }
}
