use hyperpower_nn::ArchSpec;

/// A virtual wall clock for time-budgeted experiments.
///
/// The paper's fixed-runtime experiments give each method a 2 h (MNIST) or
/// 5 h (CIFAR-10) wall-clock budget and let the last run started before the
/// deadline finish. Re-running that in real time would be absurd inside a
/// simulation, so every simulated action advances this clock by its modelled
/// duration instead; the experiment drivers read budgets and timestamps off
/// it. Only *relative* durations matter for the reproduced tables.
///
/// # Examples
///
/// ```
/// use hyperpower_gpu_sim::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance_secs(90.0);
/// clock.advance_hours(1.0);
/// assert!((clock.hours() - 1.025).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VirtualClock {
    now_s: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock by `dt_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is negative or non-finite.
    pub fn advance_secs(&mut self, dt_s: f64) {
        assert!(
            dt_s.is_finite() && dt_s >= 0.0,
            "cannot advance clock by {dt_s}"
        );
        self.now_s += dt_s;
    }

    /// Advances the clock by `hours`.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative or non-finite.
    pub fn advance_hours(&mut self, hours: f64) {
        self.advance_secs(hours * 3600.0);
    }

    /// Elapsed virtual time in seconds.
    pub fn seconds(&self) -> f64 {
        self.now_s
    }

    /// Elapsed virtual time in hours.
    pub fn hours(&self) -> f64 {
        self.now_s / 3600.0
    }
}

/// Models how long training-related actions take on the training server.
///
/// In the paper's setup candidate networks are *trained* on the server and
/// only *profiled* on the target platform, so training cost is a property
/// of the server, not of the constraint device. One epoch costs
/// `3 × forward_flops × examples / throughput` (backward ≈ 2× forward);
/// every launched run also pays a fixed overhead (network generation,
/// framework start-up, data staging).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingCostModel {
    /// Sustained training throughput of the server in FLOP/s.
    pub throughput_flops: f64,
    /// Fixed per-run overhead in seconds.
    pub per_run_overhead_s: f64,
    /// Cost of one power/memory *measurement* on the target platform in
    /// seconds (running a few inference batches while polling the sensor).
    pub measurement_s: f64,
    /// Cost of processing one candidate through the predictive
    /// power/memory models: the dot products themselves are free (the
    /// whole point of the paper), but each queried sample still pays the
    /// optimizer's proposal/bookkeeping overhead (in Spearmint, seconds).
    pub model_eval_s: f64,
}

impl Default for TrainingCostModel {
    /// Calibrated so that full training runs land in the paper's regime:
    /// several minutes per MNIST-scale run, tens of minutes per CIFAR-scale
    /// run (paper Tables 3–4: ≈14 completed runs in 2 h / 5 h).
    fn default() -> Self {
        TrainingCostModel {
            throughput_flops: 2.2e11,
            per_run_overhead_s: 90.0,
            measurement_s: 10.0,
            model_eval_s: 5.0,
        }
    }
}

impl TrainingCostModel {
    /// Seconds to train `spec` for `epochs` epochs over `examples` examples.
    pub fn training_secs(&self, spec: &ArchSpec, examples: usize, epochs: usize) -> f64 {
        let flops = 3.0 * spec.flops_per_example() as f64 * examples as f64 * epochs as f64;
        self.per_run_overhead_s + flops / self.throughput_flops
    }

    /// Seconds per single training epoch (no per-run overhead).
    pub fn epoch_secs(&self, spec: &ArchSpec, examples: usize) -> f64 {
        3.0 * spec.flops_per_example() as f64 * examples as f64 / self.throughput_flops
    }
}

#[cfg(test)]
// Exact float equality is intended here: virtual-clock arithmetic is exact.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use hyperpower_nn::LayerSpec;

    fn mnist_big() -> ArchSpec {
        ArchSpec::new(
            (1, 28, 28),
            10,
            vec![
                LayerSpec::conv(60, 5),
                LayerSpec::pool(2),
                LayerSpec::dense(600),
            ],
        )
        .unwrap()
    }

    fn cifar_big() -> ArchSpec {
        ArchSpec::new(
            (3, 32, 32),
            10,
            vec![
                LayerSpec::conv(80, 5),
                LayerSpec::pool(2),
                LayerSpec::conv(80, 5),
                LayerSpec::pool(2),
                LayerSpec::conv(80, 5),
                LayerSpec::pool(2),
                LayerSpec::dense(700),
            ],
        )
        .unwrap()
    }

    #[test]
    fn clock_accumulates() {
        let mut c = VirtualClock::new();
        assert_eq!(c.seconds(), 0.0);
        c.advance_secs(10.0);
        c.advance_secs(20.0);
        assert_eq!(c.seconds(), 30.0);
        c.advance_hours(2.0);
        assert!((c.hours() - (2.0 + 30.0 / 3600.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn negative_advance_panics() {
        VirtualClock::new().advance_secs(-1.0);
    }

    #[test]
    fn full_runs_in_paper_regime() {
        let cost = TrainingCostModel::default();
        // MNIST full run (60k examples, 40 epochs): minutes, not hours.
        let mnist = cost.training_secs(&mnist_big(), 60_000, 40) / 60.0;
        assert!(
            (3.0..20.0).contains(&mnist),
            "MNIST full run {mnist} minutes"
        );
        // CIFAR full run (50k examples, 40 epochs): tens of minutes.
        let cifar = cost.training_secs(&cifar_big(), 50_000, 40) / 60.0;
        assert!(
            (10.0..70.0).contains(&cifar),
            "CIFAR full run {cifar} minutes"
        );
    }

    #[test]
    fn early_termination_saves_most_of_the_cost() {
        let cost = TrainingCostModel::default();
        let full = cost.training_secs(&cifar_big(), 50_000, 40);
        let early = cost.training_secs(&cifar_big(), 50_000, 3);
        assert!(early < full * 0.15, "early {early} vs full {full}");
    }

    #[test]
    fn model_eval_is_orders_cheaper_than_training() {
        let cost = TrainingCostModel::default();
        assert!(cost.model_eval_s * 15.0 < cost.per_run_overhead_s);
    }

    #[test]
    fn epoch_secs_times_epochs_matches_training_minus_overhead() {
        let cost = TrainingCostModel::default();
        let spec = mnist_big();
        let by_epoch = cost.epoch_secs(&spec, 60_000) * 40.0 + cost.per_run_overhead_s;
        let direct = cost.training_secs(&spec, 60_000, 40);
        assert!((by_epoch - direct).abs() < 1e-9);
    }
}
