/// Static description of a simulated GPU platform.
///
/// The two presets model the paper's evaluation platforms. Numbers are
/// drawn from public spec sheets where available (peak throughput,
/// bandwidth, TDP) and calibrated otherwise (occupancy saturation, sensor
/// noise) so that the induced power/memory distributions over the paper's
/// AlexNet-variant space make the paper's budgets (85–90 W / 10–12 W,
/// 1.15–1.25 GB) genuinely selective.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Device name used in reports, e.g. `"GTX 1070"`.
    pub name: String,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Idle board power in watts.
    pub idle_power_w: f64,
    /// Maximum sustained board power in watts.
    pub max_power_w: f64,
    /// Total device memory in GiB.
    pub memory_capacity_gib: f64,
    /// Memory claimed by driver/context/framework before any network
    /// allocations, in MiB.
    pub baseline_memory_mib: f64,
    /// Batch size the profiler uses for inference measurements.
    pub inference_batch: usize,
    /// Whether the platform exposes a memory-consumption API. The Tegra
    /// TX1 does not (paper footnote 1): `tegrastats` reports utilisation,
    /// not memory.
    pub supports_memory_measurement: bool,
    /// Per-layer *output-element* count (at the inference batch size) at
    /// which the device reaches ~63% occupancy. Occupancy is about
    /// parallelism, not arithmetic: a wide convolution's millions of output
    /// pixels keep every SM busy, while a fully connected layer's few
    /// thousand outputs leave most of the chip idle (and drawing little) —
    /// the effect behind the paper's Figure 1 iso-accuracy power spread.
    pub occupancy_saturation_elems: f64,
    /// Standard deviation of power-sensor noise in watts.
    pub power_noise_w: f64,
    /// Standard deviation of memory-measurement noise in MiB.
    pub memory_noise_mib: f64,
}

impl DeviceProfile {
    /// The server-class platform of the paper: NVIDIA GTX 1070
    /// (Pascal, 6.5 TFLOP/s, 256 GB/s, 150 W TDP, 8 GiB).
    pub fn gtx_1070() -> Self {
        DeviceProfile {
            name: "GTX 1070".into(),
            peak_gflops: 6500.0,
            mem_bandwidth_gbps: 256.0,
            idle_power_w: 45.0,
            max_power_w: 150.0,
            memory_capacity_gib: 8.0,
            baseline_memory_mib: 1000.0,
            inference_batch: 128,
            supports_memory_measurement: true,
            occupancy_saturation_elems: 1.5e6,
            power_noise_w: 1.6,
            memory_noise_mib: 12.0,
        }
    }

    /// The embedded platform of the paper: NVIDIA Tegra TX1
    /// (Maxwell, 512 GFLOP/s FP32, 25.6 GB/s, ~15 W, 4 GiB shared).
    pub fn tegra_tx1() -> Self {
        DeviceProfile {
            name: "Tegra TX1".into(),
            peak_gflops: 512.0,
            mem_bandwidth_gbps: 25.6,
            idle_power_w: 1.8,
            max_power_w: 14.5,
            memory_capacity_gib: 4.0,
            baseline_memory_mib: 350.0,
            inference_batch: 64,
            supports_memory_measurement: false,
            occupancy_saturation_elems: 2.0e5,
            power_noise_w: 0.22,
            memory_noise_mib: 8.0,
        }
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for d in [DeviceProfile::gtx_1070(), DeviceProfile::tegra_tx1()] {
            assert!(d.peak_gflops > 0.0);
            assert!(d.mem_bandwidth_gbps > 0.0);
            assert!(d.idle_power_w < d.max_power_w);
            assert!(d.inference_batch > 0);
            assert!(d.occupancy_saturation_elems > 0.0);
            assert!(!d.name.is_empty());
        }
    }

    #[test]
    fn tegra_lacks_memory_api() {
        assert!(!DeviceProfile::tegra_tx1().supports_memory_measurement);
        assert!(DeviceProfile::gtx_1070().supports_memory_measurement);
    }

    #[test]
    fn tegra_is_low_power() {
        let tegra = DeviceProfile::tegra_tx1();
        let gtx = DeviceProfile::gtx_1070();
        assert!(tegra.max_power_w < gtx.idle_power_w);
    }
}
