use std::fmt;

use hyperpower_linalg::units::{Mebibytes, Seconds, Watts};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use hyperpower_nn::ArchSpec;

use crate::{analyze, DeviceProfile, InferenceReport};

/// Errors returned by the measurement interface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeasurementError {
    /// The platform does not expose this measurement. The Tegra TX1 has no
    /// NVML memory API and `tegrastats` reports utilisation rather than
    /// memory consumption (paper footnote 1).
    Unsupported {
        /// Device name.
        device: String,
        /// Name of the unsupported quantity, e.g. `"memory"`.
        quantity: &'static str,
    },
}

impl fmt::Display for MeasurementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasurementError::Unsupported { device, quantity } => {
                write!(f, "device {device} does not support {quantity} measurement")
            }
        }
    }
}

impl std::error::Error for MeasurementError {}

/// A simulated GPU with NVML-like measurement endpoints.
///
/// Wraps the noise-free [`analyze`] ground truth with per-measurement
/// Gaussian sensor noise, the way repeated NVML polls of a real board
/// scatter around the true draw. Measurements consume RNG state, so two
/// consecutive measurements of the same network differ slightly — and the
/// whole sequence is reproducible from the constructor seed.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Gpu {
    device: DeviceProfile,
    rng: StdRng,
}

impl Gpu {
    /// Creates a simulated GPU with a deterministic sensor-noise stream.
    pub fn new(device: DeviceProfile, seed: u64) -> Self {
        Gpu {
            device,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The device profile.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Noise-free analysis of a network on this device (the "infinite
    /// averaging" limit of the sensors).
    pub fn analyze(&self, spec: &ArchSpec) -> InferenceReport {
        analyze(&self.device, spec)
    }

    /// One noisy power measurement, clamped to the physical envelope
    /// `[idle, max]`.
    pub fn measure_power(&mut self, spec: &ArchSpec) -> Watts {
        let truth = analyze(&self.device, spec).power;
        let noisy = truth + Watts(self.device.power_noise_w * self.standard_normal());
        noisy.clamp(
            Watts(self.device.idle_power_w),
            Watts(self.device.max_power_w),
        )
    }

    /// One noisy memory measurement.
    ///
    /// # Errors
    ///
    /// Returns [`MeasurementError::Unsupported`] on platforms without a
    /// memory API (Tegra TX1).
    pub fn measure_memory(&mut self, spec: &ArchSpec) -> Result<Mebibytes, MeasurementError> {
        if !self.device.supports_memory_measurement {
            return Err(MeasurementError::Unsupported {
                device: self.device.name.clone(),
                quantity: "memory",
            });
        }
        let truth = analyze(&self.device, spec).memory;
        let noise = Mebibytes(self.device.memory_noise_mib * self.standard_normal());
        Ok((truth + noise).max(Mebibytes::ZERO))
    }

    /// One noisy latency measurement per example (timing a few inference
    /// batches scatters by ~2% on real systems).
    pub fn measure_latency(&mut self, spec: &ArchSpec) -> Seconds {
        let truth = analyze(&self.device, spec).latency;
        (truth * (1.0 + 0.02 * self.standard_normal())).max(truth * 0.5)
    }

    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
// Exact float equality is intended here: determinism asserts bit-identical readings.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use hyperpower_nn::LayerSpec;

    fn spec() -> ArchSpec {
        ArchSpec::new(
            (3, 32, 32),
            10,
            vec![
                LayerSpec::conv(48, 3),
                LayerSpec::pool(2),
                LayerSpec::dense(300),
            ],
        )
        .unwrap()
    }

    #[test]
    fn power_measurements_scatter_around_truth() {
        let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), 1);
        let truth = gpu.analyze(&spec()).power;
        let n = 200;
        let measurements: Vec<Watts> = (0..n).map(|_| gpu.measure_power(&spec())).collect();
        let mean = measurements.iter().copied().sum::<Watts>() / n as f64;
        assert!(
            (mean - truth).get().abs() < 0.5,
            "mean {mean} vs truth {truth}"
        );
        // Noise is real: not all identical.
        assert!(measurements.iter().any(|m| (*m - truth).get().abs() > 0.1));
    }

    #[test]
    fn power_stays_in_envelope() {
        let mut gpu = Gpu::new(DeviceProfile::tegra_tx1(), 2);
        for _ in 0..100 {
            let p = gpu.measure_power(&spec());
            assert!(p >= Watts(1.8) && p <= Watts(14.5), "power {p}");
        }
    }

    #[test]
    fn tegra_memory_unsupported() {
        let mut gpu = Gpu::new(DeviceProfile::tegra_tx1(), 3);
        let err = gpu.measure_memory(&spec()).unwrap_err();
        assert!(matches!(
            err,
            MeasurementError::Unsupported {
                quantity: "memory",
                ..
            }
        ));
        assert!(err.to_string().contains("Tegra"));
    }

    #[test]
    fn gtx_memory_supported_and_noisy() {
        let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), 4);
        let truth = gpu.analyze(&spec()).memory;
        let a = gpu.measure_memory(&spec()).unwrap();
        let b = gpu.measure_memory(&spec()).unwrap();
        assert_ne!(a, b, "sensor noise expected");
        assert!(
            (a - truth).get().abs() < 100.0,
            "reading {a} vs truth {truth}"
        );
    }

    #[test]
    fn seeded_reproducibility() {
        let mut a = Gpu::new(DeviceProfile::gtx_1070(), 9);
        let mut b = Gpu::new(DeviceProfile::gtx_1070(), 9);
        for _ in 0..10 {
            assert_eq!(a.measure_power(&spec()), b.measure_power(&spec()));
        }
    }
}
