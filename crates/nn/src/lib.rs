//! Neural-network substrate for the HyperPower reproduction.
//!
//! The paper's objective function is "generate the candidate CNN, train it
//! to completion with Caffe, report its test error" (Figure 2, step 2).
//! This crate replaces Caffe with a from-scratch CNN library:
//!
//! * [`Tensor`] — a minimal NCHW tensor of `f32`,
//! * [`layers`] — `Conv2d`, `MaxPool2d`, `Dense`, `ReLU`, `Flatten` behind
//!   the [`Layer`] trait, with full forward/backward passes,
//! * [`SoftmaxCrossEntropy`] — fused softmax + cross-entropy loss,
//! * [`Network`] — a sequential container with SGD (momentum + weight
//!   decay) training, built from an [`ArchSpec`],
//! * [`arch`] — architecture descriptions with shape inference, parameter
//!   and FLOP counting (consumed by the GPU simulator crate),
//! * [`sim`] — a calibrated *training simulator* used for the paper-scale
//!   experiment sweeps, where really training hundreds of networks for
//!   simulated hours each would be pointless; it reproduces the error
//!   regimes, learning curves and divergence behaviour the experiments
//!   depend on (see DESIGN.md for the substitution rationale).
//!
//! Real gradient-descent training (examples, integration tests) and the
//! simulator share the same [`ArchSpec`]/[`TrainingHyper`] vocabulary, so
//! the optimizer code paths are identical either way.
//!
//! # Examples
//!
//! Train a small CNN on a synthetic dataset:
//!
//! ```
//! use hyperpower_data::{mnist_like, Split};
//! use hyperpower_nn::{ArchSpec, LayerSpec, Network, TrainingHyper};
//!
//! # fn main() -> Result<(), hyperpower_nn::Error> {
//! let data = mnist_like(0, 64, 32);
//! let spec = ArchSpec::new((1, 28, 28), 10, vec![
//!     LayerSpec::conv(8, 3),
//!     LayerSpec::pool(2),
//!     LayerSpec::dense(32),
//! ])?;
//! let mut net = Network::from_spec(&spec, 42)?;
//! let hyper = TrainingHyper::new(0.05, 0.9, 1e-4)?;
//! net.train_epoch(&data, 16, &hyper);
//! let err = net.evaluate(&data, Split::Test);
//! assert!((0.0..=1.0).contains(&err));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
mod checkpoint;
mod error;
pub mod layers;
mod loss;
mod network;
mod sgd;
pub mod sim;
mod tensor;

pub use arch::{ArchSpec, LayerShapeReport, LayerSpec};
pub use checkpoint::CheckpointError;
pub use error::Error;
pub use layers::Layer;
pub use loss::SoftmaxCrossEntropy;
pub use network::Network;
pub use sgd::{LearningRateSchedule, TrainingHyper};
pub use tensor::Tensor;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
