//! Architecture descriptions with shape inference and cost accounting.
//!
//! An [`ArchSpec`] is the bridge between the hyper-parameter optimizer and
//! everything that consumes an architecture: [`crate::Network`] instantiates
//! it for real training, the training simulator ([`crate::sim`]) reads its
//! capacity, and the GPU simulator crate walks its [`LayerShapeReport`]s to
//! estimate inference power, memory and latency.

use crate::{Error, Result};

/// One stage of an architecture, in the vocabulary of the paper's AlexNet
/// variants: convolutions (20–80 features, kernel 2–5), max pooling
/// (kernel 1–3) and fully connected layers (200–700 units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerSpec {
    /// Convolution with ReLU: `features` output channels, square `kernel`,
    /// stride 1, same padding.
    Conv {
        /// Number of output feature maps.
        features: usize,
        /// Square kernel size.
        kernel: usize,
    },
    /// Non-overlapping max pooling with the given square kernel
    /// (kernel 1 is the identity).
    Pool {
        /// Pooling window and stride.
        kernel: usize,
    },
    /// Non-overlapping average pooling with the given square kernel.
    AvgPool {
        /// Pooling window and stride.
        kernel: usize,
    },
    /// Fully connected layer with ReLU.
    Dense {
        /// Number of output units.
        units: usize,
    },
    /// Inverted dropout (active during training only). The rate is stored
    /// in integer percent so the spec stays `Eq + Hash`.
    Dropout {
        /// Drop probability in percent, `0..=99`.
        rate_percent: u8,
    },
}

impl LayerSpec {
    /// Convenience constructor for [`LayerSpec::Conv`].
    pub fn conv(features: usize, kernel: usize) -> Self {
        LayerSpec::Conv { features, kernel }
    }

    /// Convenience constructor for [`LayerSpec::Pool`].
    pub fn pool(kernel: usize) -> Self {
        LayerSpec::Pool { kernel }
    }

    /// Convenience constructor for [`LayerSpec::AvgPool`].
    pub fn avg_pool(kernel: usize) -> Self {
        LayerSpec::AvgPool { kernel }
    }

    /// Convenience constructor for [`LayerSpec::Dense`].
    pub fn dense(units: usize) -> Self {
        LayerSpec::Dense { units }
    }

    /// Convenience constructor for [`LayerSpec::Dropout`].
    pub fn dropout(rate_percent: u8) -> Self {
        LayerSpec::Dropout { rate_percent }
    }
}

/// Per-layer cost report produced by [`ArchSpec::shape_walk`].
///
/// The GPU simulator consumes these to price each layer's compute and
/// memory traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerShapeReport {
    /// Human-readable layer kind (`"conv"`, `"pool"`, `"dense"`,
    /// `"classifier"`).
    pub kind: &'static str,
    /// Input shape `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Output shape `(channels, height, width)`.
    pub output: (usize, usize, usize),
    /// Trainable parameters in this layer.
    pub params: usize,
    /// Multiply–accumulate-based FLOPs per example (2 FLOPs per MAC).
    pub flops: u64,
    /// Output activation element count per example.
    pub activations: usize,
}

/// A validated network architecture: input shape, class count and a stack
/// of [`LayerSpec`]s, to which a final classifier (`Dense(num_classes)`) is
/// implicitly appended.
///
/// # Examples
///
/// ```
/// use hyperpower_nn::{ArchSpec, LayerSpec};
///
/// # fn main() -> Result<(), hyperpower_nn::Error> {
/// let spec = ArchSpec::new((3, 32, 32), 10, vec![
///     LayerSpec::conv(32, 5),
///     LayerSpec::pool(2),
///     LayerSpec::dense(256),
/// ])?;
/// assert!(spec.param_count() > 0);
/// assert!(spec.flops_per_example() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArchSpec {
    input: (usize, usize, usize),
    num_classes: usize,
    layers: Vec<LayerSpec>,
}

impl ArchSpec {
    /// Creates and validates an architecture.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArchitecture`] if:
    /// * the input shape or class count is zero,
    /// * any layer has a zero dimension,
    /// * a convolution or pooling layer appears after a dense layer,
    /// * a pooling layer would shrink the feature map below 1×1.
    pub fn new(
        input: (usize, usize, usize),
        num_classes: usize,
        layers: Vec<LayerSpec>,
    ) -> Result<Self> {
        let (c, h, w) = input;
        if c == 0 || h == 0 || w == 0 {
            return Err(Error::InvalidArchitecture(format!(
                "input shape {input:?} has a zero dimension"
            )));
        }
        if num_classes == 0 {
            return Err(Error::InvalidArchitecture(
                "at least one class required".into(),
            ));
        }
        let spec = ArchSpec {
            input,
            num_classes,
            layers,
        };
        // shape_walk_checked validates layer-by-layer.
        spec.shape_walk_checked()?;
        Ok(spec)
    }

    /// Input shape `(channels, height, width)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.input
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The explicit layer stack (excluding the implicit final classifier).
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    fn shape_walk_checked(&self) -> Result<Vec<LayerShapeReport>> {
        let mut reports = Vec::with_capacity(self.layers.len() + 1);
        let (mut c, mut h, mut w) = self.input;
        let mut seen_dense = false;
        for (i, layer) in self.layers.iter().enumerate() {
            let report = match *layer {
                LayerSpec::Conv { features, kernel } => {
                    if seen_dense {
                        return Err(Error::InvalidArchitecture(format!(
                            "layer {i}: convolution after a dense layer"
                        )));
                    }
                    if features == 0 || kernel == 0 {
                        return Err(Error::InvalidArchitecture(format!(
                            "layer {i}: conv with zero features or kernel"
                        )));
                    }
                    let params = features * (c * kernel * kernel) + features;
                    let flops = 2 * (features * c * kernel * kernel) as u64 * (h * w) as u64;
                    let report = LayerShapeReport {
                        kind: "conv",
                        input: (c, h, w),
                        output: (features, h, w),
                        params,
                        flops,
                        activations: features * h * w,
                    };
                    c = features;
                    report
                }
                LayerSpec::Pool { kernel } | LayerSpec::AvgPool { kernel } => {
                    let kind = if matches!(layer, LayerSpec::Pool { .. }) {
                        "pool"
                    } else {
                        "avgpool"
                    };
                    if seen_dense {
                        return Err(Error::InvalidArchitecture(format!(
                            "layer {i}: pooling after a dense layer"
                        )));
                    }
                    if kernel == 0 {
                        return Err(Error::InvalidArchitecture(format!(
                            "layer {i}: pool with zero kernel"
                        )));
                    }
                    let (oh, ow) = (h / kernel, w / kernel);
                    if oh == 0 || ow == 0 {
                        return Err(Error::InvalidArchitecture(format!(
                            "layer {i}: pool kernel {kernel} shrinks {h}x{w} below 1x1"
                        )));
                    }
                    let report = LayerShapeReport {
                        kind,
                        input: (c, h, w),
                        output: (c, oh, ow),
                        params: 0,
                        flops: (c * oh * ow * kernel * kernel) as u64,
                        activations: c * oh * ow,
                    };
                    h = oh;
                    w = ow;
                    report
                }
                LayerSpec::Dropout { rate_percent } => {
                    if rate_percent >= 100 {
                        return Err(Error::InvalidArchitecture(format!(
                            "layer {i}: dropout rate {rate_percent}% must be below 100%"
                        )));
                    }
                    LayerShapeReport {
                        kind: "dropout",
                        input: (c, h, w),
                        output: (c, h, w),
                        params: 0,
                        flops: (c * h * w) as u64,
                        activations: c * h * w,
                    }
                }
                LayerSpec::Dense { units } => {
                    if units == 0 {
                        return Err(Error::InvalidArchitecture(format!(
                            "layer {i}: dense with zero units"
                        )));
                    }
                    seen_dense = true;
                    let in_features = c * h * w;
                    let params = units * in_features + units;
                    let report = LayerShapeReport {
                        kind: "dense",
                        input: (c, h, w),
                        output: (units, 1, 1),
                        params,
                        flops: 2 * (units * in_features) as u64,
                        activations: units,
                    };
                    c = units;
                    h = 1;
                    w = 1;
                    report
                }
            };
            reports.push(report);
        }
        // Implicit classifier.
        let in_features = c * h * w;
        reports.push(LayerShapeReport {
            kind: "classifier",
            input: (c, h, w),
            output: (self.num_classes, 1, 1),
            params: self.num_classes * in_features + self.num_classes,
            flops: 2 * (self.num_classes * in_features) as u64,
            activations: self.num_classes,
        });
        Ok(reports)
    }

    /// Per-layer shape and cost reports, including the implicit final
    /// classifier layer.
    pub fn shape_walk(&self) -> Vec<LayerShapeReport> {
        // The spec was validated at construction, so the checked walk can
        // only fail on an internal bug — loud in debug, empty in release.
        let walk = self.shape_walk_checked();
        debug_assert!(walk.is_ok(), "spec was validated at construction");
        walk.unwrap_or_default()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.shape_walk().iter().map(|r| r.params).sum()
    }

    /// Total forward-pass FLOPs per example.
    pub fn flops_per_example(&self) -> u64 {
        self.shape_walk().iter().map(|r| r.flops).sum()
    }

    /// Total activation elements per example (sum over layer outputs),
    /// including the input image.
    pub fn activation_count(&self) -> usize {
        let (c, h, w) = self.input;
        c * h * w
            + self
                .shape_walk()
                .iter()
                .map(|r| r.activations)
                .sum::<usize>()
    }

    /// The largest single-layer activation output (drives peak working-set
    /// size during inference).
    pub fn peak_activation(&self) -> usize {
        let (c, h, w) = self.input;
        self.shape_walk()
            .iter()
            .map(|r| r.activations)
            .max()
            .unwrap_or(0)
            .max(c * h * w)
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn cifar_spec() -> ArchSpec {
        ArchSpec::new(
            (3, 32, 32),
            10,
            vec![
                LayerSpec::conv(32, 5),
                LayerSpec::pool(2),
                LayerSpec::conv(64, 3),
                LayerSpec::pool(2),
                LayerSpec::dense(256),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shape_walk_tracks_dimensions() {
        let spec = cifar_spec();
        let walk = spec.shape_walk();
        assert_eq!(walk.len(), 6); // 5 explicit + classifier
        assert_eq!(walk[0].output, (32, 32, 32));
        assert_eq!(walk[1].output, (32, 16, 16));
        assert_eq!(walk[2].output, (64, 16, 16));
        assert_eq!(walk[3].output, (64, 8, 8));
        assert_eq!(walk[4].output, (256, 1, 1));
        assert_eq!(walk[5].output, (10, 1, 1));
        assert_eq!(walk[5].kind, "classifier");
    }

    #[test]
    fn conv_param_and_flop_formulas() {
        let spec = ArchSpec::new((3, 8, 8), 2, vec![LayerSpec::conv(4, 3)]).unwrap();
        let walk = spec.shape_walk();
        // params = 4*(3*9) + 4 = 112
        assert_eq!(walk[0].params, 112);
        // flops = 2 * 4*3*9 * 64 = 13824
        assert_eq!(walk[0].flops, 13_824);
    }

    #[test]
    fn dense_param_formula() {
        let spec = ArchSpec::new((1, 4, 4), 3, vec![LayerSpec::dense(10)]).unwrap();
        let walk = spec.shape_walk();
        assert_eq!(walk[0].params, 10 * 16 + 10);
        assert_eq!(walk[1].params, 3 * 10 + 3);
        assert_eq!(spec.param_count(), 170 + 33);
    }

    #[test]
    fn bigger_nets_cost_more() {
        let small = ArchSpec::new((3, 32, 32), 10, vec![LayerSpec::conv(20, 2)]).unwrap();
        let large = ArchSpec::new((3, 32, 32), 10, vec![LayerSpec::conv(80, 5)]).unwrap();
        assert!(large.param_count() > small.param_count());
        assert!(large.flops_per_example() > small.flops_per_example());
        assert!(large.activation_count() > small.activation_count());
    }

    #[test]
    fn pool_shrinks_below_one_rejected() {
        let err =
            ArchSpec::new((1, 4, 4), 2, vec![LayerSpec::pool(3), LayerSpec::pool(3)]).unwrap_err();
        assert!(matches!(err, Error::InvalidArchitecture(_)));
    }

    #[test]
    fn conv_after_dense_rejected() {
        let err = ArchSpec::new(
            (1, 8, 8),
            2,
            vec![LayerSpec::dense(16), LayerSpec::conv(4, 3)],
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidArchitecture(_)));
        let err = ArchSpec::new((1, 8, 8), 2, vec![LayerSpec::dense(16), LayerSpec::pool(2)])
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArchitecture(_)));
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(ArchSpec::new((0, 8, 8), 2, vec![]).is_err());
        assert!(ArchSpec::new((1, 8, 8), 0, vec![]).is_err());
        assert!(ArchSpec::new((1, 8, 8), 2, vec![LayerSpec::conv(0, 3)]).is_err());
        assert!(ArchSpec::new((1, 8, 8), 2, vec![LayerSpec::dense(0)]).is_err());
        assert!(ArchSpec::new((1, 8, 8), 2, vec![LayerSpec::pool(0)]).is_err());
    }

    #[test]
    fn avg_pool_and_dropout_in_shape_walk() {
        let spec = ArchSpec::new(
            (3, 32, 32),
            10,
            vec![
                LayerSpec::conv(16, 3),
                LayerSpec::avg_pool(2),
                LayerSpec::dense(64),
                LayerSpec::dropout(50),
            ],
        )
        .unwrap();
        let walk = spec.shape_walk();
        assert_eq!(walk[1].kind, "avgpool");
        assert_eq!(walk[1].output, (16, 16, 16));
        assert_eq!(walk[3].kind, "dropout");
        assert_eq!(walk[3].output, (64, 1, 1));
        assert_eq!(walk[3].params, 0);
    }

    #[test]
    fn dropout_rate_validation() {
        assert!(ArchSpec::new((1, 4, 4), 2, vec![LayerSpec::dropout(99)]).is_ok());
        assert!(ArchSpec::new((1, 4, 4), 2, vec![LayerSpec::dropout(100)]).is_err());
    }

    #[test]
    fn avg_pool_after_dense_rejected() {
        let err = ArchSpec::new(
            (1, 8, 8),
            2,
            vec![LayerSpec::dense(16), LayerSpec::avg_pool(2)],
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidArchitecture(_)));
    }

    #[test]
    fn empty_stack_is_linear_classifier() {
        let spec = ArchSpec::new((1, 28, 28), 10, vec![]).unwrap();
        let walk = spec.shape_walk();
        assert_eq!(walk.len(), 1);
        assert_eq!(walk[0].params, 10 * 784 + 10);
    }

    #[test]
    fn peak_activation_at_least_input() {
        let spec = ArchSpec::new((3, 32, 32), 10, vec![LayerSpec::dense(10)]).unwrap();
        assert!(spec.peak_activation() >= 3 * 32 * 32);
        let wide = cifar_spec();
        assert_eq!(wide.peak_activation(), 32 * 32 * 32);
    }
}
