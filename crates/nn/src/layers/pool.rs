use super::Layer;
use crate::Tensor;

/// Non-overlapping 2-D max pooling (stride equals the kernel size).
///
/// Output spatial size is `floor(h/k) × floor(w/k)`; trailing rows/columns
/// that do not fill a window are dropped, matching Caffe's floor-mode
/// pooling. A kernel of 1 is the identity, which is how the paper's search
/// space (pool kernel 1–3) can effectively skip a pooling stage.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    /// Flat input index of each output element's argmax, cached for backward.
    argmax: Vec<usize>,
    input_shape: (usize, usize, usize, usize),
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "pool kernel must be positive");
        MaxPool2d {
            kernel,
            argmax: Vec::new(),
            input_shape: (0, 0, 0, 0),
        }
    }

    /// Kernel (and stride) size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output spatial size for a given input size.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h / self.kernel, w / self.kernel)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (n, c, h, w) = input.shape();
        let (oh, ow) = self.output_hw(h, w);
        assert!(oh > 0 && ow > 0, "pool window larger than input");
        let mut out = Tensor::zeros(n, c, oh, ow);
        self.argmax = vec![0; n * c * oh * ow];
        self.input_shape = input.shape();
        let k = self.kernel;
        let mut out_idx = 0;
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_flat = 0;
                        for dy in 0..k {
                            for dx in 0..k {
                                let y = oy * k + dy;
                                let x = ox * k + dx;
                                let v = input.at(b, ch, y, x);
                                if v > best {
                                    best = v;
                                    best_flat = ((b * c + ch) * h + y) * w + x;
                                }
                            }
                        }
                        *out.at_mut(b, ch, oy, ox) = best;
                        self.argmax[out_idx] = best_flat;
                        out_idx += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (n, c, h, w) = self.input_shape;
        assert!(n > 0, "backward called before forward");
        let mut grad_input = Tensor::zeros(n, c, h, w);
        for (out_idx, &flat) in self.argmax.iter().enumerate() {
            grad_input.as_mut_slice()[flat] += grad_output.as_slice()[out_idx];
        }
        grad_input
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Non-overlapping 2-D average pooling (stride equals the kernel size).
///
/// Same windowing rules as [`MaxPool2d`]; the backward pass distributes
/// each output gradient uniformly over its window.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    kernel: usize,
    input_shape: (usize, usize, usize, usize),
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "pool kernel must be positive");
        AvgPool2d {
            kernel,
            input_shape: (0, 0, 0, 0),
        }
    }

    /// Kernel (and stride) size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output spatial size for a given input size.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h / self.kernel, w / self.kernel)
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (n, c, h, w) = input.shape();
        let (oh, ow) = self.output_hw(h, w);
        assert!(oh > 0 && ow > 0, "pool window larger than input");
        self.input_shape = input.shape();
        let k = self.kernel;
        let inv = 1.0 / (k * k) as f32;
        let mut out = Tensor::zeros(n, c, oh, ow);
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for dy in 0..k {
                            for dx in 0..k {
                                acc += input.at(b, ch, oy * k + dy, ox * k + dx);
                            }
                        }
                        *out.at_mut(b, ch, oy, ox) = acc * inv;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (n, c, h, w) = self.input_shape;
        assert!(n > 0, "backward called before forward");
        let k = self.kernel;
        let inv = 1.0 / (k * k) as f32;
        let (_, _, oh, ow) = grad_output.shape();
        let mut grad_input = Tensor::zeros(n, c, h, w);
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_output.at(b, ch, oy, ox) * inv;
                        for dy in 0..k {
                            for dx in 0..k {
                                *grad_input.at_mut(b, ch, oy * k + dy, ox * k + dx) += g;
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn name(&self) -> &'static str {
        "avgpool2d"
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;

    #[test]
    fn avg_pools_mean_per_window() {
        let mut pool = AvgPool2d::new(2);
        let input = Tensor::from_vec(1, 1, 2, 4, vec![1.0, 3.0, 10.0, 20.0, 5.0, 7.0, 30.0, 40.0]);
        let out = pool.forward(&input);
        assert_eq!(out.shape(), (1, 1, 1, 2));
        assert_eq!(out.as_slice(), &[4.0, 25.0]);
    }

    #[test]
    fn avg_backward_distributes_uniformly() {
        let mut pool = AvgPool2d::new(2);
        pool.forward(&Tensor::zeros(1, 1, 2, 2));
        let grad = pool.backward(&Tensor::from_vec(1, 1, 1, 1, vec![8.0]));
        assert_eq!(grad.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avg_gradient_check() {
        let mut pool = AvgPool2d::new(2);
        let input = Tensor::from_vec(
            1,
            2,
            4,
            4,
            (0..32).map(|i| (i as f32 * 0.21).sin()).collect(),
        );
        check_input_gradient(&mut pool, &input, 1e-3);
    }

    #[test]
    fn avg_kernel_one_is_identity() {
        let mut pool = AvgPool2d::new(1);
        let input = Tensor::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(pool.forward(&input).as_slice(), input.as_slice());
    }

    #[test]
    fn pools_max_per_window() {
        let mut pool = MaxPool2d::new(2);
        let input = Tensor::from_vec(
            1,
            1,
            4,
            4,
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let out = pool.forward(&input);
        assert_eq!(out.shape(), (1, 1, 2, 2));
        assert_eq!(out.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn kernel_one_is_identity() {
        let mut pool = MaxPool2d::new(1);
        let input = Tensor::from_vec(1, 2, 2, 2, (0..8).map(|i| i as f32).collect());
        let out = pool.forward(&input);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn floor_mode_drops_trailing() {
        let mut pool = MaxPool2d::new(2);
        let input = Tensor::zeros(1, 1, 5, 5);
        let out = pool.forward(&input);
        assert_eq!(out.shape(), (1, 1, 2, 2));
    }

    #[test]
    fn backward_routes_to_argmax_only() {
        let mut pool = MaxPool2d::new(2);
        let input = Tensor::from_vec(1, 1, 2, 2, vec![1.0, 9.0, 3.0, 4.0]);
        pool.forward(&input);
        let grad = pool.backward(&Tensor::from_vec(1, 1, 1, 1, vec![5.0]));
        assert_eq!(grad.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn gradient_check() {
        let mut pool = MaxPool2d::new(2);
        // Distinct values avoid argmax ties, which would make the loss
        // non-differentiable at the test point.
        let input = Tensor::from_vec(
            1,
            2,
            4,
            4,
            (0..32).map(|i| ((i * 7919) % 61) as f32 * 0.1).collect(),
        );
        check_input_gradient(&mut pool, &input, 1e-3);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_window_panics() {
        let mut pool = MaxPool2d::new(3);
        pool.forward(&Tensor::zeros(1, 1, 2, 2));
    }
}
