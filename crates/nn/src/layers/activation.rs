use super::Layer;
use crate::Tensor;

/// Rectified linear unit, `y = max(x, 0)`, applied element-wise.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    /// Mask of positive inputs, cached for backward.
    mask: Vec<bool>,
    shape: (usize, usize, usize, usize),
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.shape = input.shape();
        self.mask = input.as_slice().iter().map(|v| *v > 0.0).collect();
        let (n, c, h, w) = input.shape();
        Tensor::from_vec(
            n,
            c,
            h,
            w,
            input.as_slice().iter().map(|v| v.max(0.0)).collect(),
        )
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(
            grad_output.len(),
            self.mask.len(),
            "backward called before forward"
        );
        let (n, c, h, w) = self.shape;
        Tensor::from_vec(
            n,
            c,
            h,
            w,
            grad_output
                .as_slice()
                .iter()
                .zip(&self.mask)
                .map(|(g, m)| if *m { *g } else { 0.0 })
                .collect(),
        )
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Reshapes `(n, c, h, w)` to `(n, c·h·w, 1, 1)` — the bridge between the
/// convolutional stack and the fully connected head.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: (usize, usize, usize, usize),
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.input_shape = input.shape();
        input.flattened()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (n, c, h, w) = self.input_shape;
        assert!(n > 0, "backward called before forward");
        Tensor::from_vec(n, c, h, w, grad_output.as_slice().to_vec())
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let input = Tensor::from_vec(1, 1, 1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let out = r.forward(&input);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut r = Relu::new();
        r.forward(&Tensor::from_vec(1, 1, 1, 3, vec![-1.0, 1.0, 2.0]));
        let g = r.backward(&Tensor::from_vec(1, 1, 1, 3, vec![5.0, 5.0, 5.0]));
        assert_eq!(g.as_slice(), &[0.0, 5.0, 5.0]);
    }

    #[test]
    fn relu_gradient_check() {
        let mut r = Relu::new();
        // Values away from 0 so the kink does not break finite differences.
        let input = Tensor::from_vec(1, 2, 2, 2, vec![-2.0, 1.5, 0.7, -0.9, 2.2, -1.1, 0.4, 3.0]);
        check_input_gradient(&mut r, &input, 1e-4);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let input = Tensor::from_vec(2, 2, 1, 2, (0..8).map(|i| i as f32).collect());
        let out = f.forward(&input);
        assert_eq!(out.shape(), (2, 4, 1, 1));
        let back = f.backward(&out);
        assert_eq!(back, input);
    }

    #[test]
    fn flatten_gradient_check() {
        let mut f = Flatten::new();
        let input = Tensor::from_vec(1, 2, 2, 2, (0..8).map(|i| i as f32 * 0.3).collect());
        check_input_gradient(&mut f, &input, 1e-4);
    }
}
