use rand::rngs::StdRng;

use super::gemm::{gemm_accumulate, gemm_transpose_a, gemm_transpose_b};
use super::{he_std, standard_normal, Layer};
use crate::sgd::sgd_step;
use crate::{Tensor, TrainingHyper};

/// Which computational path a [`Conv2d`] uses.
///
/// Both produce identical results (verified by tests); `Im2col` lowers the
/// convolution to matrix multiplications — the same trick Caffe (the
/// paper's framework) uses — and is several times faster on typical
/// shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvAlgorithm {
    /// Direct 7-nested-loop convolution. Simple, used as the reference.
    Naive,
    /// im2col + GEMM lowering (the default).
    #[default]
    Im2col,
}

/// 2-D convolution with stride 1 and "same" zero padding.
///
/// Weight layout is `[out_channels][in_channels][k][k]`, flattened
/// row-major. For even kernel sizes the padding is asymmetric
/// (`(k−1)/2` before, `k/2` after), so the spatial size is always
/// preserved — which is what the paper's AlexNet-variant space (kernel
/// sizes 2–5) needs to keep shape inference simple.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    algorithm: ConvAlgorithm,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    vel_weights: Vec<f32>,
    vel_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal initial weights and the
    /// default (im2col) algorithm.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "conv dimensions must be positive"
        );
        let fan_in = in_channels * kernel * kernel;
        let std = he_std(fan_in);
        let len = out_channels * fan_in;
        let weights = (0..len)
            .map(|_| (standard_normal(rng) * std) as f32)
            .collect();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            algorithm: ConvAlgorithm::default(),
            weights,
            bias: vec![0.0; out_channels],
            grad_weights: vec![0.0; len],
            grad_bias: vec![0.0; out_channels],
            vel_weights: vec![0.0; len],
            vel_bias: vec![0.0; out_channels],
            cached_input: None,
        }
    }

    /// Selects the computational path (builder style).
    pub fn with_algorithm(mut self, algorithm: ConvAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The computational path in use.
    pub fn algorithm(&self) -> ConvAlgorithm {
        self.algorithm
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    #[inline]
    fn weight(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f32 {
        self.weights[((oc * self.in_channels + ic) * self.kernel + ky) * self.kernel + kx]
    }

    #[inline]
    fn pad_before(&self) -> i64 {
        ((self.kernel - 1) / 2) as i64
    }

    /// Lowers one batch item to the im2col matrix: `K×N` row-major with
    /// `K = Cin·k²` patch rows and `N = H·W` output-pixel columns.
    /// Out-of-bounds (padding) taps are zero.
    fn im2col(&self, input: &Tensor, b: usize) -> Vec<f32> {
        let (_, c, h, w) = input.shape();
        let k = self.kernel;
        let pad = self.pad_before();
        let n_cols = h * w;
        let mut col = vec![0.0f32; c * k * k * n_cols];
        for ic in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ic * k + ky) * k + kx) * n_cols;
                    for y in 0..h {
                        let sy = y as i64 + ky as i64 - pad;
                        if sy < 0 || sy >= h as i64 {
                            continue;
                        }
                        for x in 0..w {
                            let sx = x as i64 + kx as i64 - pad;
                            if sx < 0 || sx >= w as i64 {
                                continue;
                            }
                            col[row + y * w + x] = input.at(b, ic, sy as usize, sx as usize);
                        }
                    }
                }
            }
        }
        col
    }

    /// Scatter-adds a `K×N` column-space gradient back into image space
    /// (the adjoint of [`Conv2d::im2col`]).
    fn col2im_accumulate(&self, colgrad: &[f32], grad_input: &mut Tensor, b: usize) {
        let (_, c, h, w) = grad_input.shape();
        let k = self.kernel;
        let pad = self.pad_before();
        let n_cols = h * w;
        for ic in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ic * k + ky) * k + kx) * n_cols;
                    for y in 0..h {
                        let sy = y as i64 + ky as i64 - pad;
                        if sy < 0 || sy >= h as i64 {
                            continue;
                        }
                        for x in 0..w {
                            let sx = x as i64 + kx as i64 - pad;
                            if sx < 0 || sx >= w as i64 {
                                continue;
                            }
                            *grad_input.at_mut(b, ic, sy as usize, sx as usize) +=
                                colgrad[row + y * w + x];
                        }
                    }
                }
            }
        }
    }

    fn forward_naive(&self, input: &Tensor) -> Tensor {
        let (n, c, h, w) = input.shape();
        let mut out = Tensor::zeros(n, self.out_channels, h, w);
        let pad = self.pad_before();
        for b in 0..n {
            for oc in 0..self.out_channels {
                let bias = self.bias[oc];
                for y in 0..h {
                    for x in 0..w {
                        let mut acc = bias;
                        for ic in 0..c {
                            for ky in 0..self.kernel {
                                let sy = y as i64 + ky as i64 - pad;
                                if sy < 0 || sy >= h as i64 {
                                    continue;
                                }
                                for kx in 0..self.kernel {
                                    let sx = x as i64 + kx as i64 - pad;
                                    if sx < 0 || sx >= w as i64 {
                                        continue;
                                    }
                                    acc += self.weight(oc, ic, ky, kx)
                                        * input.at(b, ic, sy as usize, sx as usize);
                                }
                            }
                        }
                        *out.at_mut(b, oc, y, x) = acc;
                    }
                }
            }
        }
        out
    }

    fn forward_im2col(&self, input: &Tensor) -> Tensor {
        let (n, _, h, w) = input.shape();
        let n_cols = h * w;
        let patch = self.in_channels * self.kernel * self.kernel;
        let mut out = Tensor::zeros(n, self.out_channels, h, w);
        for b in 0..n {
            let col = self.im2col(input, b);
            let start = b * self.out_channels * n_cols;
            let out_b = &mut out.as_mut_slice()[start..start + self.out_channels * n_cols];
            // Bias first, then accumulate W·col on top.
            for (oc, chunk) in out_b.chunks_exact_mut(n_cols).enumerate() {
                chunk.fill(self.bias[oc]);
            }
            gemm_accumulate(self.out_channels, patch, n_cols, &self.weights, &col, out_b);
        }
        out
    }

    fn backward_naive(&mut self, grad_output: &Tensor, input: &Tensor) -> Tensor {
        let (n, c, h, w) = input.shape();
        let pad = self.pad_before();
        let mut grad_input = Tensor::zeros(n, c, h, w);
        for b in 0..n {
            for oc in 0..self.out_channels {
                for y in 0..h {
                    for x in 0..w {
                        let go = grad_output.at(b, oc, y, x);
                        if go == 0.0 {
                            continue;
                        }
                        self.grad_bias[oc] += go;
                        for ic in 0..c {
                            for ky in 0..self.kernel {
                                let sy = y as i64 + ky as i64 - pad;
                                if sy < 0 || sy >= h as i64 {
                                    continue;
                                }
                                for kx in 0..self.kernel {
                                    let sx = x as i64 + kx as i64 - pad;
                                    if sx < 0 || sx >= w as i64 {
                                        continue;
                                    }
                                    let widx = ((oc * self.in_channels + ic) * self.kernel + ky)
                                        * self.kernel
                                        + kx;
                                    self.grad_weights[widx] +=
                                        go * input.at(b, ic, sy as usize, sx as usize);
                                    *grad_input.at_mut(b, ic, sy as usize, sx as usize) +=
                                        go * self.weights[widx];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn backward_im2col(&mut self, grad_output: &Tensor, input: &Tensor) -> Tensor {
        let (n, c, h, w) = input.shape();
        let n_cols = h * w;
        let patch = self.in_channels * self.kernel * self.kernel;
        let mut grad_input = Tensor::zeros(n, c, h, w);
        let mut colgrad = vec![0.0f32; patch * n_cols];
        for b in 0..n {
            let start = b * self.out_channels * n_cols;
            let go_b = &grad_output.as_slice()[start..start + self.out_channels * n_cols];
            // Bias gradient: row sums of the output gradient.
            for (oc, chunk) in go_b.chunks_exact(n_cols).enumerate() {
                self.grad_bias[oc] += chunk.iter().sum::<f32>();
            }
            // Weight gradient: gradOut (OC×N) · colᵀ (N×K).
            let col = self.im2col(input, b);
            gemm_transpose_b(
                self.out_channels,
                n_cols,
                patch,
                go_b,
                &col,
                &mut self.grad_weights,
            );
            // Input gradient: Wᵀ (K×OC) · gradOut (OC×N), scattered back.
            colgrad.fill(0.0);
            gemm_transpose_a(
                patch,
                self.out_channels,
                n_cols,
                &self.weights,
                go_b,
                &mut colgrad,
            );
            self.col2im_accumulate(&colgrad, &mut grad_input, b);
        }
        grad_input
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (_, c, _, _) = input.shape();
        assert_eq!(c, self.in_channels, "conv input channel mismatch");
        let out = match self.algorithm {
            ConvAlgorithm::Naive => self.forward_naive(input),
            ConvAlgorithm::Im2col => self.forward_im2col(input),
        };
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let Some(input) = self.cached_input.clone() else {
            panic!("backward called before forward");
        };
        match self.algorithm {
            ConvAlgorithm::Naive => self.backward_naive(grad_output, &input),
            ConvAlgorithm::Im2col => self.backward_im2col(grad_output, &input),
        }
    }

    fn update(&mut self, hyper: &TrainingHyper) {
        sgd_step(
            &mut self.weights,
            &mut self.grad_weights,
            &mut self.vel_weights,
            hyper,
            true,
        );
        sgd_step(
            &mut self.bias,
            &mut self.grad_bias,
            &mut self.vel_bias,
            hyper,
            false,
        );
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn param_values(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        out.extend_from_slice(&self.weights);
        out.extend_from_slice(&self.bias);
        out
    }

    fn set_param_values(&mut self, values: &[f32]) {
        assert_eq!(
            values.len(),
            self.param_count(),
            "parameter buffer size mismatch"
        );
        let (w, b) = values.split_at(self.weights.len());
        self.weights.copy_from_slice(w);
        self.bias.copy_from_slice(b);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1 acts as identity.
        let mut conv = Conv2d::new(1, 1, 1, &mut rng());
        conv.weights = vec![1.0];
        conv.bias = vec![0.0];
        let input = Tensor::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let out = conv.forward(&input);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn known_3x3_convolution() {
        // 3x3 averaging kernel over a 3x3 input of ones: centre sees 9
        // contributions, corners see 4, edges 6 (same padding).
        let mut conv = Conv2d::new(1, 1, 3, &mut rng());
        conv.weights = vec![1.0; 9];
        conv.bias = vec![0.0];
        let input = Tensor::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let out = conv.forward(&input);
        assert_eq!(out.at(0, 0, 1, 1), 9.0);
        assert_eq!(out.at(0, 0, 0, 0), 4.0);
        assert_eq!(out.at(0, 0, 0, 1), 6.0);
    }

    #[test]
    fn output_shape_preserved_for_all_kernel_sizes() {
        for k in 1..=5 {
            let mut conv = Conv2d::new(2, 3, k, &mut rng());
            let input = Tensor::zeros(2, 2, 7, 6);
            let out = conv.forward(&input);
            assert_eq!(out.shape(), (2, 3, 7, 6), "kernel {k}");
        }
    }

    #[test]
    fn bias_shifts_output() {
        let mut conv = Conv2d::new(1, 1, 1, &mut rng());
        conv.weights = vec![0.0];
        conv.bias = vec![2.5];
        let out = conv.forward(&Tensor::zeros(1, 1, 2, 2));
        assert!(out.as_slice().iter().all(|v| *v == 2.5));
    }

    #[test]
    fn gradient_check_small_conv() {
        let mut conv = Conv2d::new(2, 2, 3, &mut rng());
        let input = Tensor::from_vec(
            1,
            2,
            4,
            4,
            (0..32).map(|i| (i as f32 * 0.13).sin()).collect(),
        );
        check_input_gradient(&mut conv, &input, 2e-2);
    }

    #[test]
    fn gradient_check_even_kernel() {
        let mut conv = Conv2d::new(1, 2, 2, &mut rng());
        let input = Tensor::from_vec(
            2,
            1,
            3,
            3,
            (0..18).map(|i| (i as f32 * 0.37).cos()).collect(),
        );
        check_input_gradient(&mut conv, &input, 2e-2);
    }

    #[test]
    fn weight_gradient_finite_difference() {
        let mut conv = Conv2d::new(1, 1, 3, &mut rng());
        let input = Tensor::from_vec(1, 1, 4, 4, (0..16).map(|i| i as f32 * 0.1).collect());
        let out = conv.forward(&input);
        let ones = Tensor::from_vec(1, 1, 4, 4, vec![1.0; out.len()]);
        conv.backward(&ones);
        let analytic = conv.grad_weights[4]; // centre weight
        let eps = 1e-3f32;
        let sum_out = |c: &mut Conv2d| c.forward(&input).as_slice().iter().sum::<f32>();
        conv.weights[4] += eps;
        let plus = sum_out(&mut conv);
        conv.weights[4] -= 2.0 * eps;
        let minus = sum_out(&mut conv);
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
            "numeric {numeric} analytic {analytic}"
        );
    }

    #[test]
    fn update_changes_weights_and_clears_grads() {
        let mut conv = Conv2d::new(1, 1, 1, &mut rng());
        let input = Tensor::from_vec(1, 1, 1, 1, vec![1.0]);
        conv.forward(&input);
        conv.backward(&Tensor::from_vec(1, 1, 1, 1, vec![1.0]));
        let before = conv.weights[0];
        conv.update(&TrainingHyper::new(0.1, 0.0, 0.0).unwrap());
        assert_ne!(conv.weights[0], before);
        assert_eq!(conv.grad_weights[0], 0.0);
    }

    #[test]
    fn param_count_formula() {
        let conv = Conv2d::new(3, 8, 5, &mut rng());
        assert_eq!(conv.param_count(), 8 * 3 * 25 + 8);
    }

    /// The im2col path must agree with the naive reference bit-for-bit in
    /// structure (small tolerances only for float reassociation).
    #[test]
    fn im2col_matches_naive_forward_and_backward() {
        for (cin, cout, k, h, w) in [(1, 2, 3, 5, 5), (3, 4, 2, 6, 4), (2, 3, 5, 7, 7)] {
            let mut naive =
                Conv2d::new(cin, cout, k, &mut rng()).with_algorithm(ConvAlgorithm::Naive);
            let mut fast = naive.clone().with_algorithm(ConvAlgorithm::Im2col);
            let input = Tensor::from_vec(
                2,
                cin,
                h,
                w,
                (0..2 * cin * h * w)
                    .map(|i| ((i * 37) % 23) as f32 * 0.1 - 1.0)
                    .collect(),
            );
            let out_naive = naive.forward(&input);
            let out_fast = fast.forward(&input);
            for (a, b) in out_naive.as_slice().iter().zip(out_fast.as_slice()) {
                assert!((a - b).abs() < 1e-4, "forward mismatch: {a} vs {b}");
            }
            let grad_out = Tensor::from_vec(
                2,
                cout,
                h,
                w,
                (0..2 * cout * h * w)
                    .map(|i| ((i * 17) % 13) as f32 * 0.2 - 1.0)
                    .collect(),
            );
            let gi_naive = naive.backward(&grad_out);
            let gi_fast = fast.backward(&grad_out);
            for (a, b) in gi_naive.as_slice().iter().zip(gi_fast.as_slice()) {
                assert!((a - b).abs() < 1e-3, "grad-input mismatch: {a} vs {b}");
            }
            for (a, b) in naive.grad_weights.iter().zip(&fast.grad_weights) {
                assert!((a - b).abs() < 1e-2, "grad-weight mismatch: {a} vs {b}");
            }
            for (a, b) in naive.grad_bias.iter().zip(&fast.grad_bias) {
                assert!((a - b).abs() < 1e-3, "grad-bias mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn algorithm_accessors() {
        let conv = Conv2d::new(1, 1, 3, &mut rng());
        assert_eq!(conv.algorithm(), ConvAlgorithm::Im2col);
        let naive = conv.with_algorithm(ConvAlgorithm::Naive);
        assert_eq!(naive.algorithm(), ConvAlgorithm::Naive);
    }
}
