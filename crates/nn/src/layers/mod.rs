//! Network layers with full forward/backward passes.
//!
//! Each layer caches whatever its backward pass needs during `forward`, and
//! accumulates parameter gradients during `backward`; [`Layer::update`]
//! applies one SGD step and clears the gradients. This mirrors the
//! train-step structure of Caffe, the framework the paper uses.

mod activation;
mod conv;
mod dense;
mod dropout;
mod gemm;
mod pool;

pub use activation::{Flatten, Relu};
pub use conv::{Conv2d, ConvAlgorithm};
pub use dense::Dense;
pub use dropout::Dropout;
pub use pool::{AvgPool2d, MaxPool2d};

use crate::{Tensor, TrainingHyper};

/// A differentiable network layer.
///
/// The trait is object-safe; [`crate::Network`] stores layers as
/// `Box<dyn Layer>`.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output, caching anything `backward` will need.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Propagates gradients: consumes `∂L/∂output`, accumulates parameter
    /// gradients internally, and returns `∂L/∂input`.
    ///
    /// Must be called after a `forward` with the matching input.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Applies one SGD step to the layer's parameters (if any) and clears
    /// accumulated gradients. The default implementation is a no-op for
    /// parameter-free layers.
    fn update(&mut self, _hyper: &TrainingHyper) {}

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Switches between training and inference behaviour. Only layers
    /// that behave differently at test time (e.g. [`Dropout`]) override
    /// this; the default is a no-op.
    fn set_training(&mut self, _training: bool) {}

    /// The layer's trainable parameters, flattened (weights then biases).
    /// Empty for parameter-free layers. Used by network checkpointing.
    fn param_values(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Replaces the layer's trainable parameters from a flattened buffer
    /// (the inverse of [`Layer::param_values`]).
    ///
    /// # Panics
    ///
    /// Implementations panic if `values.len() != self.param_count()`.
    fn set_param_values(&mut self, values: &[f32]) {
        assert!(
            values.is_empty(),
            "layer {} has no parameters to set",
            self.name()
        );
    }

    /// Short human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;
}

/// He-normal initialisation standard deviation for a layer with the given
/// fan-in. Used by [`Conv2d`] and [`Dense`].
pub(crate) fn he_std(fan_in: usize) -> f64 {
    (2.0 / fan_in.max(1) as f64).sqrt()
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
pub(crate) fn standard_normal(rng: &mut impl rand::RngExt) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
pub(crate) use tests::check_input_gradient;

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_std_decreases_with_fan_in() {
        assert!(he_std(10) > he_std(100));
        assert!((he_std(2) - 1.0).abs() < 1e-12);
        assert!(he_std(0).is_finite());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    /// Finite-difference gradient check, shared by the layer tests.
    ///
    /// Verifies `∂L/∂input` for `L = Σ output·seed_grad` against central
    /// differences.
    pub(crate) fn check_input_gradient(layer: &mut dyn Layer, input: &Tensor, tol: f64) {
        let out = layer.forward(input);
        // Seed gradient: deterministic pseudo-random pattern.
        let seed: Vec<f32> = (0..out.len())
            .map(|i| ((i * 2654435761 % 97) as f32 / 97.0) - 0.5)
            .collect();
        let (n, c, h, w) = out.shape();
        let grad_out = Tensor::from_vec(n, c, h, w, seed.clone());
        let grad_in = layer.backward(&grad_out);

        let loss = |layer: &mut dyn Layer, input: &Tensor| -> f64 {
            let out = layer.forward(input);
            out.as_slice()
                .iter()
                .zip(&seed)
                .map(|(o, s)| (*o as f64) * (*s as f64))
                .sum()
        };

        let eps = 1e-3;
        let (n, c, h, w) = input.shape();
        // Check a deterministic subset of positions to keep tests fast.
        let stride = (input.len() / 12).max(1);
        for flat in (0..input.len()).step_by(stride) {
            let mut plus = input.clone();
            plus.as_mut_slice()[flat] += eps as f32;
            let mut minus = input.clone();
            minus.as_mut_slice()[flat] -= eps as f32;
            let numeric = (loss(layer, &plus) - loss(layer, &minus)) / (2.0 * eps);
            let analytic = grad_in.as_slice()[flat] as f64;
            assert!(
                (numeric - analytic).abs() < tol * (1.0 + numeric.abs()),
                "gradient mismatch at {flat} (shape {n},{c},{h},{w}): numeric {numeric}, analytic {analytic}"
            );
        }
    }
}
