use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::Layer;
use crate::Tensor;

/// Inverted dropout: during training each value is zeroed with probability
/// `rate` and survivors are scaled by `1/(1−rate)`, so inference (where
/// dropout is disabled via [`Layer::set_training`]) needs no rescaling.
///
/// AlexNet — the template of the paper's search space — uses dropout on
/// its fully connected layers; the layer is provided so real-training
/// objectives can include it.
#[derive(Debug)]
pub struct Dropout {
    rate: f32,
    training: bool,
    rng: StdRng,
    mask: Vec<f32>,
    shape: (usize, usize, usize, usize),
}

impl Dropout {
    /// Creates a dropout layer with the given drop probability, seeded for
    /// reproducible masks.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        Dropout {
            rate: rate as f32,
            training: true,
            rng: StdRng::seed_from_u64(seed),
            mask: Vec::new(),
            shape: (0, 0, 0, 0),
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f64 {
        self.rate as f64
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.shape = input.shape();
        let (n, c, h, w) = input.shape();
        if !self.training || self.rate == 0.0 {
            self.mask = vec![1.0; input.len()];
            return input.clone();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        self.mask = (0..input.len())
            .map(|_| {
                if self.rng.random_range(0.0f32..1.0) < self.rate {
                    0.0
                } else {
                    scale
                }
            })
            .collect();
        Tensor::from_vec(
            n,
            c,
            h,
            w,
            input
                .as_slice()
                .iter()
                .zip(&self.mask)
                .map(|(v, m)| v * m)
                .collect(),
        )
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(
            grad_output.len(),
            self.mask.len(),
            "backward called before forward"
        );
        let (n, c, h, w) = self.shape;
        Tensor::from_vec(
            n,
            c,
            h,
            w,
            grad_output
                .as_slice()
                .iter()
                .zip(&self.mask)
                .map(|(g, m)| g * m)
                .collect(),
        )
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.set_training(false);
        let input = Tensor::from_vec(1, 1, 1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&input), input);
    }

    #[test]
    fn zero_rate_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 1);
        let input = Tensor::from_vec(1, 1, 2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(d.forward(&input), input);
    }

    #[test]
    fn training_zeroes_and_rescales() {
        let mut d = Dropout::new(0.5, 2);
        let input = Tensor::from_vec(1, 1, 1, 1000, vec![1.0; 1000]);
        let out = d.forward(&input);
        let zeros = out.as_slice().iter().filter(|v| **v == 0.0).count();
        let kept: Vec<f32> = out
            .as_slice()
            .iter()
            .copied()
            .filter(|v| *v != 0.0)
            .collect();
        // Roughly half dropped.
        assert!((300..700).contains(&zeros), "{zeros} dropped");
        // Survivors scaled by 2.
        assert!(kept.iter().all(|v| (*v - 2.0).abs() < 1e-6));
        // Expectation preserved (inverted dropout).
        let mean = out.as_slice().iter().sum::<f32>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let input = Tensor::from_vec(1, 1, 1, 8, vec![1.0; 8]);
        let out = d.forward(&input);
        let grad = d.backward(&Tensor::from_vec(1, 1, 1, 8, vec![1.0; 8]));
        // Gradient is zero exactly where the activation was dropped.
        for (o, g) in out.as_slice().iter().zip(grad.as_slice()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Dropout::new(0.3, 7);
        let mut b = Dropout::new(0.3, 7);
        let input = Tensor::from_vec(1, 1, 1, 16, vec![1.0; 16]);
        assert_eq!(a.forward(&input), b.forward(&input));
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn rate_one_panics() {
        Dropout::new(1.0, 0);
    }
}
