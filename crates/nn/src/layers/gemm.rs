//! A small single-precision GEMM used by the im2col convolution path.
//!
//! Plain `ikj`-ordered loops: the innermost loop walks both `b` and `c`
//! contiguously, which the compiler auto-vectorises. No blocking — the
//! matrices in this workspace are at most a few thousand elements per
//! side, where a blocked kernel buys little.

/// `c += a · b` for row-major `a` (`m×k`), `b` (`k×n`), `c` (`m×n`).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the given dimensions.
pub(crate) fn gemm_accumulate(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(c.len(), m * n, "out size mismatch");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_ip * b_pj;
            }
        }
    }
}

/// `c += aᵀ · b` for row-major `a` (`k×m`), `b` (`k×n`), `c` (`m×n`).
///
/// Used by the convolution backward pass (`gradW = gradOut · colᵀ` is
/// expressed through this with swapped operands).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the given dimensions.
pub(crate) fn gemm_transpose_a(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(c.len(), m * n, "out size mismatch");
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_pi * b_pj;
            }
        }
    }
}

/// `c += a · bᵀ` for row-major `a` (`m×k`), `b` (`n×k`), `c` (`m×n`).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the given dimensions.
pub(crate) fn gemm_transpose_b(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), n * k, "rhs size mismatch");
    assert_eq!(c.len(), m * n, "out size mismatch");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn gemm_matches_hand_computation() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm_accumulate(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
        // Accumulation.
        gemm_accumulate(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [38.0, 44.0, 86.0, 100.0]);
    }

    #[test]
    fn transpose_a_matches_explicit_transpose() {
        // a is 3x2 (k=3, m=2): aT is 2x3.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0]; // 3x2
        let mut c = [0.0; 4];
        gemm_transpose_a(2, 3, 2, &a, &b, &mut c);
        // aT = [1 3 5; 2 4 6]; aT*b = [1+5 3+5; 2+6 4+6]
        assert_eq!(c, [6.0, 8.0, 8.0, 10.0]);
    }

    #[test]
    fn transpose_b_matches_explicit_transpose() {
        let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = [5.0, 7.0, 6.0, 8.0]; // 2x2, represents bT of [5 6; 7 8]
        let mut c = [0.0; 4];
        gemm_transpose_b(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_shapes() {
        // (1x3) * (3x2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut c = [0.0; 2];
        gemm_accumulate(1, 3, 2, &a, &b, &mut c);
        assert_eq!(c, [22.0, 28.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn shape_mismatch_panics() {
        let mut c = [0.0; 4];
        gemm_accumulate(2, 2, 2, &[1.0; 3], &[1.0; 4], &mut c);
    }
}
