use rand::rngs::StdRng;

use super::{he_std, standard_normal, Layer};
use crate::sgd::sgd_step;
use crate::{Tensor, TrainingHyper};

/// Fully connected layer `y = W·x + b`.
///
/// Expects its input flattened to `(n, in_features, 1, 1)` — insert a
/// [`Flatten`](super::Flatten) after the convolutional stack. Weight layout
/// is `[out_features][in_features]`, row-major.
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    vel_weights: Vec<f32>,
    vel_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal initial weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dense dimensions must be positive"
        );
        let std = he_std(in_features);
        let len = in_features * out_features;
        let weights = (0..len)
            .map(|_| (standard_normal(rng) * std) as f32)
            .collect();
        Dense {
            in_features,
            out_features,
            weights,
            bias: vec![0.0; out_features],
            grad_weights: vec![0.0; len],
            grad_bias: vec![0.0; out_features],
            vel_weights: vec![0.0; len],
            vel_bias: vec![0.0; out_features],
            cached_input: None,
        }
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (n, c, h, w) = input.shape();
        assert_eq!(h * w, 1, "dense input must be flattened to (n, c, 1, 1)");
        assert_eq!(c, self.in_features, "dense input feature mismatch");
        let mut out = Tensor::zeros(n, self.out_features, 1, 1);
        for b in 0..n {
            let x = input.example(b);
            for o in 0..self.out_features {
                let row = &self.weights[o * self.in_features..(o + 1) * self.in_features];
                let mut acc = self.bias[o];
                for (wv, xv) in row.iter().zip(x) {
                    acc += wv * xv;
                }
                *out.at_mut(b, o, 0, 0) = acc;
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let Some(input) = self.cached_input.clone() else {
            panic!("backward called before forward");
        };
        let (n, _, _, _) = input.shape();
        let mut grad_input = Tensor::zeros(n, self.in_features, 1, 1);
        for b in 0..n {
            let x = input.example(b);
            let gi = grad_input.as_mut_slice();
            for o in 0..self.out_features {
                let go = grad_output.at(b, o, 0, 0);
                if go == 0.0 {
                    continue;
                }
                self.grad_bias[o] += go;
                let row_start = o * self.in_features;
                for i in 0..self.in_features {
                    self.grad_weights[row_start + i] += go * x[i];
                    gi[b * self.in_features + i] += go * self.weights[row_start + i];
                }
            }
        }
        grad_input
    }

    fn update(&mut self, hyper: &TrainingHyper) {
        sgd_step(
            &mut self.weights,
            &mut self.grad_weights,
            &mut self.vel_weights,
            hyper,
            true,
        );
        sgd_step(
            &mut self.bias,
            &mut self.grad_bias,
            &mut self.vel_bias,
            hyper,
            false,
        );
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn param_values(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        out.extend_from_slice(&self.weights);
        out.extend_from_slice(&self.bias);
        out
    }

    fn set_param_values(&mut self, values: &[f32]) {
        assert_eq!(
            values.len(),
            self.param_count(),
            "parameter buffer size mismatch"
        );
        let (w, b) = values.split_at(self.weights.len());
        self.weights.copy_from_slice(w);
        self.bias.copy_from_slice(b);
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn known_linear_map() {
        let mut d = Dense::new(2, 2, &mut rng());
        d.weights = vec![1.0, 2.0, 3.0, 4.0]; // rows: [1 2], [3 4]
        d.bias = vec![0.5, -0.5];
        let input = Tensor::from_vec(1, 2, 1, 1, vec![1.0, 1.0]);
        let out = d.forward(&input);
        assert_eq!(out.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn batch_independence() {
        let mut d = Dense::new(3, 2, &mut rng());
        let single = Tensor::from_vec(1, 3, 1, 1, vec![0.1, 0.2, 0.3]);
        let expected = d.forward(&single);
        let batch = Tensor::from_vec(2, 3, 1, 1, vec![0.1, 0.2, 0.3, 0.1, 0.2, 0.3]);
        let out = d.forward(&batch);
        assert_eq!(out.example(0), expected.as_slice());
        assert_eq!(out.example(1), expected.as_slice());
    }

    #[test]
    fn gradient_check() {
        let mut d = Dense::new(5, 3, &mut rng());
        let input = Tensor::from_vec(
            2,
            5,
            1,
            1,
            (0..10).map(|i| (i as f32 * 0.41).sin()).collect(),
        );
        check_input_gradient(&mut d, &input, 1e-2);
    }

    #[test]
    fn weight_gradient_is_outer_product() {
        let mut d = Dense::new(2, 1, &mut rng());
        let input = Tensor::from_vec(1, 2, 1, 1, vec![3.0, 4.0]);
        d.forward(&input);
        d.backward(&Tensor::from_vec(1, 1, 1, 1, vec![2.0]));
        assert_eq!(d.grad_weights, vec![6.0, 8.0]);
        assert_eq!(d.grad_bias, vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "flattened")]
    fn unflattened_input_panics() {
        let mut d = Dense::new(4, 2, &mut rng());
        d.forward(&Tensor::zeros(1, 1, 2, 2));
    }

    #[test]
    fn param_count_formula() {
        let d = Dense::new(10, 4, &mut rng());
        assert_eq!(d.param_count(), 44);
    }
}
