/// A minimal 4-D tensor in NCHW layout (`batch × channels × height × width`).
///
/// Dense layers treat their features as `channels` with `height = width = 1`.
/// Data is `f32`, matching what GPU frameworks use for training, and stored
/// contiguously so layer kernels can index with simple strides.
///
/// # Examples
///
/// ```
/// use hyperpower_nn::Tensor;
///
/// let mut t = Tensor::zeros(2, 3, 4, 4);
/// *t.at_mut(1, 2, 3, 0) = 7.0;
/// assert_eq!(t.at(1, 2, 3, 0), 7.0);
/// assert_eq!(t.shape(), (2, 3, 4, 4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*c*h*w`.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            n * c * h * w,
            "buffer length {} does not match shape ({n},{c},{h},{w})",
            data.len()
        );
        Tensor { n, c, h, w, data }
    }

    /// Shape as `(n, c, h, w)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.n
    }

    /// Number of values per example (`c*h*w`).
    pub fn example_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Total number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Value at `(n, c, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset(n, c, h, w)]
    }

    /// Mutable reference to the value at `(n, c, h, w)`.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.offset(n, c, h, w);
        &mut self.data[i]
    }

    /// Borrows the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows the contiguous values of example `n`.
    pub fn example(&self, n: usize) -> &[f32] {
        let len = self.example_len();
        &self.data[n * len..(n + 1) * len]
    }

    /// Reinterprets the tensor as `(n, c*h*w, 1, 1)` — what [`Flatten`]
    /// produces before a dense layer.
    ///
    /// [`Flatten`]: crate::layers::Flatten
    pub fn flattened(&self) -> Tensor {
        Tensor {
            n: self.n,
            c: self.example_len(),
            h: 1,
            w: 1,
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_len() {
        let t = Tensor::zeros(2, 3, 4, 5);
        assert_eq!(t.shape(), (2, 3, 4, 5));
        assert_eq!(t.len(), 120);
        assert_eq!(t.example_len(), 60);
        assert!(t.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(2, 2, 3, 3);
        *t.at_mut(1, 0, 2, 1) = 5.0;
        assert_eq!(t.at(1, 0, 2, 1), 5.0);
        // NCHW layout: offset = ((n*C + c)*H + h)*W + w, spelled out in
        // full so the formula stays readable.
        #[allow(clippy::identity_op)]
        let offset = ((1 * 2 + 0) * 3 + 2) * 3 + 1;
        assert_eq!(t.as_slice()[offset], 5.0);
    }

    #[test]
    fn from_vec_layout() {
        let t = Tensor::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at(0, 0, 0, 1), 2.0);
        assert_eq!(t.at(0, 0, 1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        Tensor::from_vec(1, 1, 2, 2, vec![1.0]);
    }

    #[test]
    fn example_view() {
        let t = Tensor::from_vec(2, 1, 1, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.example(0), &[1.0, 2.0]);
        assert_eq!(t.example(1), &[3.0, 4.0]);
    }

    #[test]
    fn flattened_preserves_data() {
        let t = Tensor::from_vec(2, 2, 1, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let f = t.flattened();
        assert_eq!(f.shape(), (2, 4, 1, 1));
        assert_eq!(f.as_slice(), t.as_slice());
    }
}
