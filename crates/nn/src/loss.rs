use crate::Tensor;

/// Fused softmax + cross-entropy loss over class logits.
///
/// Operating on the fused form keeps the backward pass numerically trivial:
/// `∂L/∂logit = softmax(logit) − onehot(label)`, averaged over the batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }

    /// Computes the mean loss and the logit gradient for a batch.
    ///
    /// `logits` must have shape `(n, num_classes, 1, 1)`; `labels` must hold
    /// `n` class indices.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
        let (n, classes, h, w) = logits.shape();
        assert_eq!(h * w, 1, "logits must be flattened to (n, classes, 1, 1)");
        assert_eq!(n, labels.len(), "one label per example required");
        let mut grad = Tensor::zeros(n, classes, 1, 1);
        let mut total_loss = 0.0f64;
        for (b, &label) in labels.iter().enumerate() {
            assert!(label < classes, "label {label} out of range ({classes})");
            let row = logits.example(b);
            // Numerically stable log-softmax.
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exp: Vec<f64> = row.iter().map(|v| ((v - max) as f64).exp()).collect();
            let sum: f64 = exp.iter().sum();
            let log_prob = (row[label] - max) as f64 - sum.ln();
            total_loss -= log_prob;
            for (c, e) in exp.iter().enumerate() {
                let p = e / sum;
                let target = if c == label { 1.0 } else { 0.0 };
                *grad.at_mut(b, c, 0, 0) = ((p - target) / n as f64) as f32;
            }
        }
        (total_loss / n as f64, grad)
    }

    /// Predicted class (argmax of the logits) for each example in the batch.
    pub fn predictions(&self, logits: &Tensor) -> Vec<usize> {
        let (n, classes, _, _) = logits.shape();
        (0..n)
            .map(|b| {
                let row = logits.example(b);
                let mut best = 0;
                for c in 1..classes {
                    if row[c] > row[best] {
                        best = c;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(1, 4, 1, 1);
        let (l, _) = loss.loss_and_grad(&logits, &[2]);
        assert!((l - 4.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn confident_correct_prediction_low_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(1, 3, 1, 1, vec![10.0, -10.0, -10.0]);
        let (l, _) = loss.loss_and_grad(&logits, &[0]);
        assert!(l < 1e-6);
        let logits_wrong = Tensor::from_vec(1, 3, 1, 1, vec![10.0, -10.0, -10.0]);
        let (l_wrong, _) = loss.loss_and_grad(&logits_wrong, &[1]);
        assert!(l_wrong > 10.0);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(1, 2, 1, 1);
        let (_, grad) = loss.loss_and_grad(&logits, &[0]);
        // softmax = [0.5, 0.5]; grad = [0.5-1, 0.5] = [-0.5, 0.5]
        assert!((grad.at(0, 0, 0, 0) + 0.5).abs() < 1e-6);
        assert!((grad.at(0, 1, 0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradient_sums_to_zero_per_example() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(2, 3, 1, 1, vec![1.0, -0.5, 2.0, 0.0, 0.3, -1.0]);
        let (_, grad) = loss.loss_and_grad(&logits, &[2, 1]);
        for b in 0..2 {
            let s: f32 = grad.example(b).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_finite_difference() {
        let loss = SoftmaxCrossEntropy::new();
        let base = vec![0.4f32, -0.7, 1.2];
        let labels = [1usize];
        let logits = Tensor::from_vec(1, 3, 1, 1, base.clone());
        let (_, grad) = loss.loss_and_grad(&logits, &labels);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let (lp, _) = loss.loss_and_grad(&Tensor::from_vec(1, 3, 1, 1, plus), &labels);
            let (lm, _) = loss.loss_and_grad(&Tensor::from_vec(1, 3, 1, 1, minus), &labels);
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let analytic = grad.as_slice()[i] as f64;
            assert!((numeric - analytic).abs() < 1e-4);
        }
    }

    #[test]
    fn batch_loss_is_mean() {
        let loss = SoftmaxCrossEntropy::new();
        let one = Tensor::zeros(1, 2, 1, 1);
        let (l1, _) = loss.loss_and_grad(&one, &[0]);
        let two = Tensor::zeros(2, 2, 1, 1);
        let (l2, _) = loss.loss_and_grad(&two, &[0, 1]);
        assert!((l1 - l2).abs() < 1e-12);
    }

    #[test]
    fn predictions_argmax() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(2, 3, 1, 1, vec![0.0, 2.0, 1.0, 5.0, -1.0, 3.0]);
        assert_eq!(loss.predictions(&logits), vec![1, 0]);
    }

    #[test]
    fn large_logits_are_stable() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(1, 2, 1, 1, vec![1000.0, -1000.0]);
        let (l, grad) = loss.loss_and_grad(&logits, &[0]);
        assert!(l.is_finite());
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let loss = SoftmaxCrossEntropy::new();
        loss.loss_and_grad(&Tensor::zeros(1, 2, 1, 1), &[2]);
    }
}
