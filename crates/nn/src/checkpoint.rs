//! Network weight checkpointing.
//!
//! A tiny, versioned binary format for saving and restoring the trainable
//! parameters of a [`Network`] — so the best design found by a
//! hyper-parameter search can be kept, shipped, or warm-started:
//!
//! ```text
//! magic "HPWT" | version u32 | layer-buffer count u32 |
//!   per layer: value count u64 | values f32-LE…
//! ```
//!
//! Only parameters are stored — the architecture itself is a
//! [`crate::ArchSpec`] and must match at load time (the format records
//! per-layer sizes, so mismatches are detected, not silently accepted).
//! All integers are little-endian.

use std::fmt;
use std::io::{Read, Write};

use crate::Network;

/// Format magic bytes.
const MAGIC: [u8; 4] = *b"HPWT";
/// Current format version.
const VERSION: u32 = 1;

/// Errors produced when loading a checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The buffer is not a HyperPower checkpoint.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u32),
    /// The checkpoint's layer structure does not match the network's.
    StructureMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o failure: {e}"),
            CheckpointError::BadMagic => write!(f, "not a HyperPower weight checkpoint"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::StructureMismatch { detail } => {
                write!(f, "checkpoint does not match network structure: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl Network {
    /// Writes the network's trainable parameters as a checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_weights<W: Write>(&self, mut w: W) -> Result<(), CheckpointError> {
        let buffers: Vec<Vec<f32>> = self
            .layers()
            .iter()
            .map(|l| l.param_values())
            .filter(|v| !v.is_empty())
            .collect();
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(buffers.len() as u32).to_le_bytes())?;
        for buffer in &buffers {
            w.write_all(&(buffer.len() as u64).to_le_bytes())?;
            for value in buffer {
                w.write_all(&value.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Restores trainable parameters from a checkpoint produced by
    /// [`Network::save_weights`] on a network of identical architecture.
    ///
    /// # Errors
    ///
    /// * [`CheckpointError::BadMagic`] / [`CheckpointError::UnsupportedVersion`]
    ///   for foreign or future-format data,
    /// * [`CheckpointError::StructureMismatch`] if the layer count or any
    ///   buffer size differs from this network's,
    /// * [`CheckpointError::Io`] on read failures (including truncation).
    pub fn load_weights<R: Read>(&mut self, mut r: R) -> Result<(), CheckpointError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        let version = u32::from_le_bytes(u32buf);
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        r.read_exact(&mut u32buf)?;
        let buffer_count = u32::from_le_bytes(u32buf) as usize;

        let expected: usize = self.layers().iter().filter(|l| l.param_count() > 0).count();
        if buffer_count != expected {
            return Err(CheckpointError::StructureMismatch {
                detail: format!(
                    "checkpoint has {buffer_count} parameter layers, network has {expected}"
                ),
            });
        }

        let mut buffers = Vec::with_capacity(buffer_count);
        for _ in 0..buffer_count {
            let mut u64buf = [0u8; 8];
            r.read_exact(&mut u64buf)?;
            let len = u64::from_le_bytes(u64buf) as usize;
            let mut values = Vec::with_capacity(len);
            let mut f32buf = [0u8; 4];
            for _ in 0..len {
                r.read_exact(&mut f32buf)?;
                values.push(f32::from_le_bytes(f32buf));
            }
            buffers.push(values);
        }

        // Validate every size before mutating anything.
        {
            let mut it = buffers.iter();
            for (i, layer) in self.layers().iter().enumerate() {
                if layer.param_count() == 0 {
                    continue;
                }
                let Some(buffer) = it.next() else {
                    return Err(CheckpointError::StructureMismatch {
                        detail: format!(
                            "checkpoint has no buffer for layer {i} ({})",
                            layer.name()
                        ),
                    });
                };
                if buffer.len() != layer.param_count() {
                    return Err(CheckpointError::StructureMismatch {
                        detail: format!(
                            "layer {i} ({}) expects {} values, checkpoint has {}",
                            layer.name(),
                            layer.param_count(),
                            buffer.len()
                        ),
                    });
                }
            }
        }
        let mut it = buffers.into_iter();
        for layer in self.layers_mut() {
            if layer.param_count() == 0 {
                continue;
            }
            // Buffer counts were fully validated above; a missing buffer
            // here would be an internal bug, so skipping is safe.
            if let Some(values) = it.next() {
                layer.set_param_values(&values);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{ArchSpec, LayerSpec, Tensor};

    fn spec() -> ArchSpec {
        ArchSpec::new(
            (1, 8, 8),
            4,
            vec![
                LayerSpec::conv(4, 3),
                LayerSpec::pool(2),
                LayerSpec::dense(16),
            ],
        )
        .unwrap()
    }

    fn probe() -> Tensor {
        Tensor::from_vec(
            2,
            1,
            8,
            8,
            (0..128).map(|i| (i as f32 * 0.17).sin()).collect(),
        )
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let mut trained = Network::from_spec(&spec(), 1).unwrap();
        let mut buf = Vec::new();
        trained.save_weights(&mut buf).unwrap();

        // A differently initialised network behaves differently...
        let mut fresh = Network::from_spec(&spec(), 2).unwrap();
        let input = probe();
        assert_ne!(
            trained.forward(&input).as_slice(),
            fresh.forward(&input).as_slice()
        );
        // ...until the checkpoint is loaded.
        fresh.load_weights(buf.as_slice()).unwrap();
        assert_eq!(
            trained.forward(&input).as_slice(),
            fresh.forward(&input).as_slice()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut net = Network::from_spec(&spec(), 1).unwrap();
        let err = net.load_weights(&b"NOPE1234"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let net = Network::from_spec(&spec(), 1).unwrap();
        let mut buf = Vec::new();
        net.save_weights(&mut buf).unwrap();
        buf[4] = 99; // bump version byte
        let mut net2 = Network::from_spec(&spec(), 1).unwrap();
        assert!(matches!(
            net2.load_weights(buf.as_slice()).unwrap_err(),
            CheckpointError::UnsupportedVersion(99)
        ));
    }

    #[test]
    fn truncated_rejected() {
        let net = Network::from_spec(&spec(), 1).unwrap();
        let mut buf = Vec::new();
        net.save_weights(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut net2 = Network::from_spec(&spec(), 1).unwrap();
        assert!(matches!(
            net2.load_weights(buf.as_slice()).unwrap_err(),
            CheckpointError::Io(_)
        ));
    }

    #[test]
    fn architecture_mismatch_rejected() {
        let net = Network::from_spec(&spec(), 1).unwrap();
        let mut buf = Vec::new();
        net.save_weights(&mut buf).unwrap();
        // A wider dense layer: same layer count, different sizes.
        let other = ArchSpec::new(
            (1, 8, 8),
            4,
            vec![
                LayerSpec::conv(4, 3),
                LayerSpec::pool(2),
                LayerSpec::dense(32),
            ],
        )
        .unwrap();
        let mut net2 = Network::from_spec(&other, 1).unwrap();
        let err = net2.load_weights(buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch { .. }));
        // Fewer layers entirely.
        let small = ArchSpec::new((1, 8, 8), 4, vec![LayerSpec::dense(16)]).unwrap();
        let mut net3 = Network::from_spec(&small, 1).unwrap();
        assert!(matches!(
            net3.load_weights(buf.as_slice()).unwrap_err(),
            CheckpointError::StructureMismatch { .. }
        ));
    }

    #[test]
    fn error_display() {
        assert!(CheckpointError::BadMagic.to_string().contains("checkpoint"));
        assert!(CheckpointError::UnsupportedVersion(7)
            .to_string()
            .contains('7'));
    }
}
