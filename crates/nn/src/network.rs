use rand::rngs::StdRng;
use rand::SeedableRng;

use hyperpower_data::{Dataset, Split};

use crate::arch::{ArchSpec, LayerSpec};
use crate::layers::{AvgPool2d, Conv2d, Dense, Dropout, Flatten, Layer, MaxPool2d, Relu};
use crate::{Result, SoftmaxCrossEntropy, Tensor, TrainingHyper};

/// A sequential network instantiated from an [`ArchSpec`].
///
/// Layers are stored as boxed [`Layer`] objects: conv/dense stages get a
/// ReLU appended, a [`Flatten`] is inserted before the first dense layer,
/// and the spec's implicit classifier head is materialised as a final
/// [`Dense`] without activation (the loss applies softmax).
///
/// # Examples
///
/// See the crate-level example for an end-to-end training loop.
#[derive(Debug)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    input_shape: (usize, usize, usize),
    num_classes: usize,
    loss: SoftmaxCrossEntropy,
}

impl Network {
    /// Instantiates a network with He-initialised weights drawn from a
    /// seeded RNG, so the same `(spec, seed)` always yields the same
    /// initial parameters.
    ///
    /// # Errors
    ///
    /// Currently infallible for a validated spec; the `Result` reserves the
    /// right to fail on future spec extensions.
    //
    // Derived-stream boundary: the RNG is minted from the explicit `seed`
    // argument, never ambient state, so any caller stays deterministic
    // per (spec, seed). analyze::allow(R11)
    pub fn from_spec(spec: &ArchSpec, seed: u64) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let (mut c, mut h, mut w) = spec.input_shape();
        let mut flattened = false;
        for layer in spec.layers() {
            match *layer {
                LayerSpec::Conv { features, kernel } => {
                    layers.push(Box::new(Conv2d::new(c, features, kernel, &mut rng)));
                    layers.push(Box::new(Relu::new()));
                    c = features;
                }
                LayerSpec::Pool { kernel } => {
                    let pool = MaxPool2d::new(kernel);
                    let (oh, ow) = pool.output_hw(h, w);
                    layers.push(Box::new(pool));
                    h = oh;
                    w = ow;
                }
                LayerSpec::AvgPool { kernel } => {
                    let pool = AvgPool2d::new(kernel);
                    let (oh, ow) = pool.output_hw(h, w);
                    layers.push(Box::new(pool));
                    h = oh;
                    w = ow;
                }
                LayerSpec::Dropout { rate_percent } => {
                    use rand::RngExt;
                    let layer_seed: u64 = rng.random();
                    layers.push(Box::new(Dropout::new(
                        rate_percent as f64 / 100.0,
                        layer_seed,
                    )));
                }
                LayerSpec::Dense { units } => {
                    if !flattened {
                        layers.push(Box::new(Flatten::new()));
                        flattened = true;
                        c *= h * w;
                        h = 1;
                        w = 1;
                    }
                    layers.push(Box::new(Dense::new(c, units, &mut rng)));
                    layers.push(Box::new(Relu::new()));
                    c = units;
                }
            }
        }
        if !flattened {
            layers.push(Box::new(Flatten::new()));
            c *= h * w;
        }
        layers.push(Box::new(Dense::new(c, spec.num_classes(), &mut rng)));

        Ok(Network {
            layers,
            input_shape: spec.input_shape(),
            num_classes: spec.num_classes(),
            loss: SoftmaxCrossEntropy::new(),
        })
    }

    /// Number of layer objects (including activations and reshapes).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The layer stack (used by checkpointing).
    pub(crate) fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by checkpointing).
    pub(crate) fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Total trainable parameters across all layers.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass: raw class logits for a batch.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut activation = input.clone();
        for layer in &mut self.layers {
            activation = layer.forward(&activation);
        }
        activation
    }

    /// One SGD step on a single mini-batch; returns the batch loss.
    ///
    /// # Panics
    ///
    /// Panics if the batch shapes are inconsistent with the network.
    pub fn train_batch(&mut self, images: &[f32], labels: &[usize], hyper: &TrainingHyper) -> f64 {
        for layer in &mut self.layers {
            layer.set_training(true);
        }
        let (c, h, w) = self.input_shape;
        let n = labels.len();
        let input = Tensor::from_vec(n, c, h, w, images.to_vec());
        let logits = self.forward(&input);
        let (loss, grad) = self.loss.loss_and_grad(&logits, labels);
        let mut grad = grad;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        for layer in &mut self.layers {
            layer.update(hyper);
        }
        loss
    }

    /// One pass over the training split in mini-batches; returns the mean
    /// batch loss.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's image shape differs from the network input.
    pub fn train_epoch(&mut self, data: &Dataset, batch_size: usize, hyper: &TrainingHyper) -> f64 {
        assert_eq!(
            data.image_shape(),
            self.input_shape,
            "dataset shape must match network input"
        );
        let mut total = 0.0;
        let mut batches = 0;
        for batch in data.batches(Split::Train, batch_size) {
            total += self.train_batch(batch.images, batch.labels, hyper);
            batches += 1;
        }
        if batches == 0 {
            0.0
        } else {
            total / batches as f64
        }
    }

    /// Classification error rate (fraction misclassified) on a split.
    /// Switches dropout-style layers into inference mode for the duration.
    pub fn evaluate(&mut self, data: &Dataset, split: Split) -> f64 {
        for layer in &mut self.layers {
            layer.set_training(false);
        }
        let (c, h, w) = self.input_shape;
        let mut wrong = 0usize;
        let mut total = 0usize;
        for batch in data.batches(split, 64) {
            let n = batch.len();
            let input = Tensor::from_vec(n, c, h, w, batch.images.to_vec());
            let logits = self.forward(&input);
            let preds = self.loss.predictions(&logits);
            for (p, l) in preds.iter().zip(batch.labels) {
                if p != l {
                    wrong += 1;
                }
                total += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            wrong as f64 / total as f64
        }
    }

    /// The number of classes predicted by the head.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use hyperpower_data::{mnist_like, synthetic_dataset, GeneratorOptions};

    fn tiny_spec() -> ArchSpec {
        ArchSpec::new(
            (1, 8, 8),
            4,
            vec![
                LayerSpec::conv(4, 3),
                LayerSpec::pool(2),
                LayerSpec::dense(16),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_matches_spec_params() {
        let spec = tiny_spec();
        let net = Network::from_spec(&spec, 0).unwrap();
        assert_eq!(net.param_count(), spec.param_count());
        assert_eq!(net.num_classes(), 4);
    }

    #[test]
    fn deterministic_initialisation() {
        let spec = tiny_spec();
        let mut a = Network::from_spec(&spec, 7).unwrap();
        let mut b = Network::from_spec(&spec, 7).unwrap();
        let input = Tensor::from_vec(1, 1, 8, 8, (0..64).map(|i| i as f32 / 64.0).collect());
        assert_eq!(a.forward(&input).as_slice(), b.forward(&input).as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = tiny_spec();
        let mut a = Network::from_spec(&spec, 1).unwrap();
        let mut b = Network::from_spec(&spec, 2).unwrap();
        let input = Tensor::from_vec(1, 1, 8, 8, (0..64).map(|i| i as f32 / 64.0).collect());
        assert_ne!(a.forward(&input).as_slice(), b.forward(&input).as_slice());
    }

    #[test]
    fn logits_shape() {
        let spec = tiny_spec();
        let mut net = Network::from_spec(&spec, 0).unwrap();
        let out = net.forward(&Tensor::zeros(3, 1, 8, 8));
        assert_eq!(out.shape(), (3, 4, 1, 1));
    }

    #[test]
    fn training_reduces_loss_on_tiny_problem() {
        // A linearly separable 2-class toy task on 6x6 images.
        let opts = GeneratorOptions {
            channels: 1,
            height: 6,
            width: 6,
            num_classes: 2,
            noise_level: 0.05,
            max_shift: 0,
        };
        let data = synthetic_dataset(opts, 3, 32, 16);
        let spec = ArchSpec::new((1, 6, 6), 2, vec![LayerSpec::dense(8)]).unwrap();
        let mut net = Network::from_spec(&spec, 5).unwrap();
        let hyper = TrainingHyper::new(0.1, 0.9, 0.0).unwrap();
        let first = net.train_epoch(&data, 8, &hyper);
        let mut last = first;
        for _ in 0..15 {
            last = net.train_epoch(&data, 8, &hyper);
        }
        assert!(
            last < first * 0.5,
            "loss should fall substantially: first {first}, last {last}"
        );
    }

    #[test]
    fn training_beats_chance_on_mnist_like() {
        let data = mnist_like(17, 120, 60);
        let spec = ArchSpec::new(
            (1, 28, 28),
            10,
            vec![
                LayerSpec::conv(4, 3),
                LayerSpec::pool(2),
                LayerSpec::dense(24),
            ],
        )
        .unwrap();
        let mut net = Network::from_spec(&spec, 11).unwrap();
        let hyper = TrainingHyper::new(0.05, 0.9, 1e-4).unwrap();
        for _ in 0..6 {
            net.train_epoch(&data, 16, &hyper);
        }
        let err = net.evaluate(&data, Split::Test);
        assert!(err < 0.6, "test error {err} should beat chance (0.9)");
    }

    #[test]
    fn avg_pool_and_dropout_network_trains() {
        let opts = GeneratorOptions {
            channels: 1,
            height: 8,
            width: 8,
            num_classes: 2,
            noise_level: 0.05,
            max_shift: 0,
        };
        let data = synthetic_dataset(opts, 7, 32, 16);
        let spec = ArchSpec::new(
            (1, 8, 8),
            2,
            vec![
                LayerSpec::conv(4, 3),
                LayerSpec::avg_pool(2),
                LayerSpec::dense(16),
                LayerSpec::dropout(25),
            ],
        )
        .unwrap();
        let mut net = Network::from_spec(&spec, 9).unwrap();
        let hyper = TrainingHyper::new(0.1, 0.9, 0.0).unwrap();
        let first = net.train_epoch(&data, 8, &hyper);
        let mut last = first;
        for _ in 0..12 {
            last = net.train_epoch(&data, 8, &hyper);
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
        // Evaluation (dropout off) is deterministic.
        let a = net.evaluate(&data, Split::Test);
        let b = net.evaluate(&data, Split::Test);
        assert_eq!(a, b);
    }

    #[test]
    fn evaluate_on_empty_split_is_zero() {
        let data = mnist_like(0, 8, 0);
        let spec = ArchSpec::new((1, 28, 28), 10, vec![]).unwrap();
        let mut net = Network::from_spec(&spec, 0).unwrap();
        assert_eq!(net.evaluate(&data, Split::Test), 0.0);
    }

    #[test]
    #[should_panic(expected = "must match network input")]
    fn shape_mismatch_panics() {
        let data = mnist_like(0, 8, 4);
        let spec = ArchSpec::new((3, 32, 32), 10, vec![]).unwrap();
        let mut net = Network::from_spec(&spec, 0).unwrap();
        let hyper = TrainingHyper::new(0.01, 0.9, 0.0).unwrap();
        net.train_epoch(&data, 4, &hyper);
    }
}
