use crate::{Error, Result};

/// Training hyper-parameters: SGD with momentum and (ℓ₂) weight decay.
///
/// These are the paper's *non-structural* hyper-parameters — the ones that
/// affect training dynamics but not the network's inference power or memory
/// footprint (§3.3): learning rate (0.001–0.1), momentum (0.8–0.95) and
/// weight decay (0.0001–0.01).
///
/// # Examples
///
/// ```
/// use hyperpower_nn::TrainingHyper;
///
/// # fn main() -> Result<(), hyperpower_nn::Error> {
/// let h = TrainingHyper::new(0.01, 0.9, 1e-4)?;
/// assert_eq!(h.learning_rate(), 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingHyper {
    learning_rate: f64,
    momentum: f64,
    weight_decay: f64,
}

impl TrainingHyper {
    /// Creates a validated set of training hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHyperParameter`] if `learning_rate` is not
    /// positive and finite, `momentum` is outside `[0, 1)`, or
    /// `weight_decay` is negative or non-finite.
    pub fn new(learning_rate: f64, momentum: f64, weight_decay: f64) -> Result<Self> {
        if !(learning_rate.is_finite() && learning_rate > 0.0) {
            return Err(Error::InvalidHyperParameter {
                name: "learning_rate",
                value: learning_rate,
            });
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(Error::InvalidHyperParameter {
                name: "momentum",
                value: momentum,
            });
        }
        if !(weight_decay.is_finite() && weight_decay >= 0.0) {
            return Err(Error::InvalidHyperParameter {
                name: "weight_decay",
                value: weight_decay,
            });
        }
        Ok(TrainingHyper {
            learning_rate,
            momentum,
            weight_decay,
        })
    }

    /// The SGD step size.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// The momentum coefficient in `[0, 1)`.
    pub fn momentum(&self) -> f64 {
        self.momentum
    }

    /// The ℓ₂ weight-decay coefficient.
    pub fn weight_decay(&self) -> f64 {
        self.weight_decay
    }
}

/// A learning-rate schedule over training epochs.
///
/// Caffe — the paper's training framework — trains AlexNet with the
/// "step" policy (multiply the rate by a factor every N iterations); the
/// same policy is provided here for the real-training path. Schedules
/// produce a *derived* [`TrainingHyper`] per epoch, leaving the base
/// hyper-parameters (what the search tunes) untouched.
///
/// # Examples
///
/// ```
/// use hyperpower_nn::{LearningRateSchedule, TrainingHyper};
///
/// # fn main() -> Result<(), hyperpower_nn::Error> {
/// let base = TrainingHyper::new(0.1, 0.9, 1e-4)?;
/// let schedule = LearningRateSchedule::StepDecay { every_epochs: 10, factor: 0.1 };
/// assert_eq!(schedule.at_epoch(&base, 1)?.learning_rate(), 0.1);
/// assert!((schedule.at_epoch(&base, 11)?.learning_rate() - 0.01).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LearningRateSchedule {
    /// The base learning rate throughout (the paper's setting: the rate
    /// itself is a search dimension).
    Constant,
    /// Multiply the rate by `factor` after every `every_epochs` epochs
    /// (Caffe's "step" policy).
    StepDecay {
        /// Epochs between decays.
        every_epochs: usize,
        /// Multiplicative factor per decay (usually < 1).
        factor: f64,
    },
}

impl LearningRateSchedule {
    /// The effective hyper-parameters at 1-based `epoch`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHyperParameter`] if the decayed rate leaves
    /// the valid domain (e.g. a `factor > 1` overflowing to infinity), or
    /// if the schedule itself is invalid (`every_epochs == 0`,
    /// non-positive `factor`).
    pub fn at_epoch(&self, base: &TrainingHyper, epoch: usize) -> Result<TrainingHyper> {
        match *self {
            LearningRateSchedule::Constant => Ok(*base),
            LearningRateSchedule::StepDecay {
                every_epochs,
                factor,
            } => {
                if every_epochs == 0 {
                    return Err(Error::InvalidHyperParameter {
                        name: "every_epochs",
                        value: 0.0,
                    });
                }
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(Error::InvalidHyperParameter {
                        name: "factor",
                        value: factor,
                    });
                }
                let decays = epoch.saturating_sub(1) / every_epochs;
                let lr = base.learning_rate() * factor.powi(decays as i32);
                TrainingHyper::new(lr, base.momentum(), base.weight_decay())
            }
        }
    }
}

/// One SGD-with-momentum step over a parameter buffer.
///
/// `velocity = momentum·velocity − lr·(grad + weight_decay·weight)`,
/// `weight += velocity`; `grads` is zeroed afterwards so the next batch
/// starts accumulating from scratch.
///
/// `decay` lets callers disable weight decay for biases (the usual
/// convention).
///
/// # Panics
///
/// Panics if the three buffers have different lengths.
pub(crate) fn sgd_step(
    weights: &mut [f32],
    grads: &mut [f32],
    velocity: &mut [f32],
    hyper: &TrainingHyper,
    decay: bool,
) {
    assert_eq!(weights.len(), grads.len());
    assert_eq!(weights.len(), velocity.len());
    let lr = hyper.learning_rate() as f32;
    let mu = hyper.momentum() as f32;
    let wd = if decay {
        hyper.weight_decay() as f32
    } else {
        0.0
    };
    for ((w, g), v) in weights.iter_mut().zip(grads.iter_mut()).zip(velocity) {
        *v = mu * *v - lr * (*g + wd * *w);
        *w += *v;
        *g = 0.0;
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_values() {
        assert!(TrainingHyper::new(0.0, 0.9, 0.0).is_err());
        assert!(TrainingHyper::new(-0.1, 0.9, 0.0).is_err());
        assert!(TrainingHyper::new(f64::NAN, 0.9, 0.0).is_err());
        assert!(TrainingHyper::new(0.1, 1.0, 0.0).is_err());
        assert!(TrainingHyper::new(0.1, -0.1, 0.0).is_err());
        assert!(TrainingHyper::new(0.1, 0.9, -1.0).is_err());
        assert!(TrainingHyper::new(0.1, 0.9, 0.01).is_ok());
        assert!(TrainingHyper::new(0.1, 0.0, 0.0).is_ok());
    }

    #[test]
    fn constant_schedule_is_identity() {
        let base = TrainingHyper::new(0.05, 0.9, 1e-3).unwrap();
        for epoch in [1, 7, 100] {
            assert_eq!(
                LearningRateSchedule::Constant
                    .at_epoch(&base, epoch)
                    .unwrap(),
                base
            );
        }
    }

    #[test]
    fn step_decay_multiplies_every_n_epochs() {
        let base = TrainingHyper::new(0.08, 0.9, 1e-3).unwrap();
        let s = LearningRateSchedule::StepDecay {
            every_epochs: 5,
            factor: 0.5,
        };
        assert_eq!(s.at_epoch(&base, 1).unwrap().learning_rate(), 0.08);
        assert_eq!(s.at_epoch(&base, 5).unwrap().learning_rate(), 0.08);
        assert!((s.at_epoch(&base, 6).unwrap().learning_rate() - 0.04).abs() < 1e-12);
        assert!((s.at_epoch(&base, 11).unwrap().learning_rate() - 0.02).abs() < 1e-12);
        // Momentum/decay pass through unchanged.
        assert_eq!(s.at_epoch(&base, 11).unwrap().momentum(), 0.9);
    }

    #[test]
    fn invalid_schedules_rejected() {
        let base = TrainingHyper::new(0.1, 0.9, 0.0).unwrap();
        assert!(LearningRateSchedule::StepDecay {
            every_epochs: 0,
            factor: 0.5
        }
        .at_epoch(&base, 1)
        .is_err());
        assert!(LearningRateSchedule::StepDecay {
            every_epochs: 5,
            factor: -1.0
        }
        .at_epoch(&base, 1)
        .is_err());
    }

    #[test]
    fn sgd_step_without_momentum_is_plain_descent() {
        let hyper = TrainingHyper::new(0.1, 0.0, 0.0).unwrap();
        let mut w = [1.0f32];
        let mut g = [2.0f32];
        let mut v = [0.0f32];
        sgd_step(&mut w, &mut g, &mut v, &hyper, true);
        assert!((w[0] - 0.8).abs() < 1e-6);
        assert_eq!(g[0], 0.0, "gradient must be zeroed");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let hyper = TrainingHyper::new(0.1, 0.5, 0.0).unwrap();
        let mut w = [0.0f32];
        let mut v = [0.0f32];
        let mut g = [1.0f32];
        sgd_step(&mut w, &mut g, &mut v, &hyper, true);
        assert!((w[0] - -0.1).abs() < 1e-6);
        let mut g = [1.0f32];
        sgd_step(&mut w, &mut g, &mut v, &hyper, true);
        // v = 0.5*(-0.1) - 0.1 = -0.15; w = -0.25
        assert!((w[0] - -0.25).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let hyper = TrainingHyper::new(0.1, 0.0, 1.0).unwrap();
        let mut w = [1.0f32];
        let mut g = [0.0f32];
        let mut v = [0.0f32];
        sgd_step(&mut w, &mut g, &mut v, &hyper, true);
        assert!((w[0] - 0.9).abs() < 1e-6);
        // Decay disabled (bias convention): no change.
        let mut w = [1.0f32];
        let mut g = [0.0f32];
        let mut v = [0.0f32];
        sgd_step(&mut w, &mut g, &mut v, &hyper, false);
        assert_eq!(w[0], 1.0);
    }
}
