//! Analytical training simulator for paper-scale experiment sweeps.
//!
//! The paper's experiments train hundreds of CNNs for (wall-clock) hours
//! each. Re-running that faithfully inside this reproduction would add
//! nothing — the optimizers only observe the *test error* each training run
//! produces — so the large sweeps use this simulator instead of real
//! gradient descent (real training is exercised end-to-end in the examples
//! and integration tests; see DESIGN.md §2 for the substitution table).
//!
//! The simulator is a response surface over the same [`ArchSpec`] /
//! [`TrainingHyper`] vocabulary that real training uses, calibrated to the
//! qualitative properties the paper's figures depend on:
//!
//! 1. **Error regimes** (Table 2): well-chosen configurations approach a
//!    dataset-specific floor (≈0.8% MNIST-like, ≈21% CIFAR-like); chance
//!    level is 90% for 10 classes.
//! 2. **Capacity curve**: test error falls with structural capacity
//!    (log-FLOPs) with diminishing returns and a mild overfitting penalty —
//!    this is what makes power/memory constraints genuinely bite.
//! 3. **Divergence** (Fig. 3 right): too-aggressive learning rates — a
//!    capacity-dependent threshold — leave accuracy at chance, and such
//!    runs are identifiable after a few epochs, enabling early termination.
//! 4. **Learning curves**: saturating-exponential error-vs-epoch curves
//!    whose time constant grows as the learning rate shrinks.
//! 5. **Noise**: run-to-run variation seeded deterministically from the
//!    configuration and an explicit seed.

use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{ArchSpec, TrainingHyper};

/// Calibration profile tying the simulator to a dataset regime.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Human-readable dataset name (for reports).
    pub name: String,
    /// Error rate of random guessing (0.9 for balanced 10-class data).
    pub chance_error: f64,
    /// Best achievable test error for a well-sized, well-tuned network.
    pub base_error: f64,
    /// `log10` FLOPs of the smallest architecture in the search space
    /// (capacity normalisation anchor).
    pub log10_flops_lo: f64,
    /// `log10` FLOPs of the largest architecture in the search space.
    pub log10_flops_hi: f64,
    /// `log10` parameter count of the smallest architecture in the space.
    pub log10_params_lo: f64,
    /// `log10` parameter count of the largest architecture in the space.
    pub log10_params_hi: f64,
    /// Epochs of a full (to-completion) training run.
    pub full_epochs: usize,
    /// Learning rate at which convergence is fastest.
    pub optimal_learning_rate: f64,
}

impl DatasetProfile {
    /// Profile matching the paper's MNIST regime (best errors ≈0.8–1%).
    pub fn mnist() -> Self {
        DatasetProfile {
            name: "mnist".into(),
            chance_error: 0.90,
            base_error: 0.0078,
            log10_flops_lo: 5.3,
            log10_flops_hi: 7.6,
            log10_params_lo: 5.5,
            log10_params_hi: 7.6,
            full_epochs: 20,
            optimal_learning_rate: 0.012,
        }
    }

    /// Profile matching the paper's CIFAR-10 regime (best errors ≈21–24%).
    pub fn cifar10() -> Self {
        DatasetProfile {
            name: "cifar10".into(),
            chance_error: 0.90,
            base_error: 0.212,
            log10_flops_lo: 6.3,
            log10_flops_hi: 9.0,
            log10_params_lo: 4.7,
            log10_params_hi: 7.8,
            full_epochs: 40,
            optimal_learning_rate: 0.012,
        }
    }

    /// Overrides the FLOP capacity-normalisation anchors (use the actual
    /// extremes of a search space).
    pub fn with_capacity_range(mut self, log10_lo: f64, log10_hi: f64) -> Self {
        assert!(log10_lo < log10_hi, "capacity range must be increasing");
        self.log10_flops_lo = log10_lo;
        self.log10_flops_hi = log10_hi;
        self
    }

    /// Overrides the parameter-count normalisation anchors (use the actual
    /// extremes of a search space).
    pub fn with_param_range(mut self, log10_lo: f64, log10_hi: f64) -> Self {
        assert!(log10_lo < log10_hi, "parameter range must be increasing");
        self.log10_params_lo = log10_lo;
        self.log10_params_hi = log10_hi;
        self
    }
}

/// The result of one (simulated) training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingOutcome {
    /// Test error after each completed epoch (`curve.len()` epochs total).
    pub curve: Vec<f64>,
    /// Test error at the end of the run (last point of `curve`).
    pub final_error: f64,
    /// Whether the run diverged (accuracy pinned at chance level).
    pub diverged: bool,
}

impl TrainingOutcome {
    /// Test error after `epoch` epochs (1-based); clamps to the last epoch.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty or `epoch` is zero.
    pub fn error_at_epoch(&self, epoch: usize) -> f64 {
        assert!(epoch >= 1, "epochs are 1-based");
        self.curve[(epoch - 1).min(self.curve.len() - 1)]
    }
}

/// Simulates full training runs of architectures drawn from a dataset's
/// search space.
///
/// # Examples
///
/// ```
/// use hyperpower_nn::sim::{DatasetProfile, TrainingSimulator};
/// use hyperpower_nn::{ArchSpec, LayerSpec, TrainingHyper};
///
/// # fn main() -> Result<(), hyperpower_nn::Error> {
/// let sim = TrainingSimulator::new(DatasetProfile::mnist());
/// let spec = ArchSpec::new((1, 28, 28), 10, vec![
///     LayerSpec::conv(40, 5),
///     LayerSpec::pool(2),
///     LayerSpec::dense(500),
/// ])?;
/// let hyper = TrainingHyper::new(0.012, 0.9, 1e-3)?;
/// let outcome = sim.simulate(&spec, &hyper, 0);
/// assert!(!outcome.diverged);
/// assert!(outcome.final_error < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TrainingSimulator {
    profile: DatasetProfile,
}

impl TrainingSimulator {
    /// Creates a simulator for the given dataset profile.
    pub fn new(profile: DatasetProfile) -> Self {
        TrainingSimulator { profile }
    }

    /// The simulator's calibration profile.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// Normalised structural capacity of an architecture in `[0, ~1.3]`:
    /// 0 at the smallest net of the space, 1 at the largest.
    ///
    /// Capacity blends compute (log-FLOPs, weight 0.35) and model size
    /// (log-params, weight 0.65). The blend is what decouples test error
    /// from GPU power: parameters are dominated by fully connected layers
    /// (cheap to run, low occupancy → low power), FLOPs by convolutions
    /// (high occupancy → high power), so iso-accuracy networks can differ
    /// widely in power — the paper's Figure 1 motivation.
    pub fn normalized_capacity(&self, spec: &ArchSpec) -> f64 {
        let p = &self.profile;
        let lg_f = (spec.flops_per_example().max(1) as f64).log10();
        let f_norm =
            ((lg_f - p.log10_flops_lo) / (p.log10_flops_hi - p.log10_flops_lo)).clamp(0.0, 1.3);
        let lg_p = (spec.param_count().max(1) as f64).log10();
        let p_norm =
            ((lg_p - p.log10_params_lo) / (p.log10_params_hi - p.log10_params_lo)).clamp(0.0, 1.3);
        0.35 * f_norm + 0.65 * p_norm
    }

    /// The learning-rate divergence threshold for an architecture: larger
    /// nets tolerate smaller learning rates (the mechanism behind the
    /// paper's Figure 3 right).
    pub fn divergence_threshold(&self, spec: &ArchSpec, hyper: &TrainingHyper) -> f64 {
        let cap = self.normalized_capacity(spec);
        // High momentum destabilises training further.
        let momentum_penalty = 1.0 - 0.8 * ((hyper.momentum() - 0.8) / 0.15).clamp(0.0, 1.0) * 0.35;
        0.13 * 10f64.powf(-0.55 * cap) * momentum_penalty
    }

    /// Asymptotic (infinite-epoch) test error of a configuration, before
    /// run noise. Exposed for calibration tests and ablations.
    pub fn asymptotic_error(&self, spec: &ArchSpec, hyper: &TrainingHyper) -> f64 {
        let p = &self.profile;
        let cap = self.normalized_capacity(spec);
        let spread = p.chance_error - p.base_error;

        // Capacity curve: diminishing returns + mild overfitting penalty.
        // Steep diminishing returns: once a network is adequately sized,
        // architecture stops mattering and training hyper-parameters
        // dominate (as on real MNIST, where almost any CNN reaches ≈99%).
        let arch_floor = p.base_error
            + spread * 0.85 * (-14.0 * cap).exp()
            + spread * 0.08 * (cap - 1.05).max(0.0).powi(2);

        // Hyper-parameter quality in (0, 1]: log-Gaussian in learning rate,
        // quadratic penalties for momentum/weight-decay mis-settings.
        let z_lr = (hyper.learning_rate() / p.optimal_learning_rate).ln() / 4f64.ln();
        let q_lr = (-0.5 * z_lr * z_lr).exp();
        let q_mom = (1.0 - 0.35 * ((hyper.momentum() - 0.90) / 0.10).powi(2)).clamp(0.5, 1.0);
        let z_wd = if hyper.weight_decay() > 0.0 {
            (hyper.weight_decay() / 1e-3).log10()
        } else {
            1.5
        };
        let q_wd = (1.0 - 0.08 * z_wd * z_wd).clamp(0.6, 1.0);
        let quality = q_lr * q_mom * q_wd;

        // The 2.5 exponent keeps the penalty gentle near the optimum
        // (any reasonable learning rate gets close to the floor, as in
        // practice) while still sinking badly mistuned runs toward chance.
        (arch_floor + (p.chance_error - arch_floor) * (1.0 - quality).powf(2.5)).min(p.chance_error)
    }

    /// Simulates a full training run (`profile.full_epochs` epochs).
    pub fn simulate(&self, spec: &ArchSpec, hyper: &TrainingHyper, seed: u64) -> TrainingOutcome {
        self.simulate_epochs(spec, hyper, self.profile.full_epochs, seed)
    }

    /// Simulates training for an explicit number of epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    pub fn simulate_epochs(
        &self,
        spec: &ArchSpec,
        hyper: &TrainingHyper,
        epochs: usize,
        seed: u64,
    ) -> TrainingOutcome {
        assert!(epochs > 0, "at least one epoch required");
        let p = &self.profile;
        let mut rng = self.run_rng(spec, hyper, seed);

        // Divergence: the threshold is smeared multiplicatively so the
        // boundary is soft run-to-run.
        let threshold =
            self.divergence_threshold(spec, hyper) * (0.25 * standard_normal(&mut rng)).exp();
        let diverged = hyper.learning_rate() > threshold;

        let run_noise = (0.06 * standard_normal(&mut rng)).exp();

        let curve: Vec<f64> = if diverged {
            // Accuracy pinned at chance: error hovers at/above chance level.
            (0..epochs)
                .map(|_| {
                    (p.chance_error + 0.02 * standard_normal(&mut rng).abs())
                        .clamp(p.chance_error - 0.01, 1.0)
                })
                .collect()
        } else {
            let err_inf = (self.asymptotic_error(spec, hyper) * run_noise)
                .clamp(p.base_error * 0.85, p.chance_error);
            // Convergence time constant: slower for smaller learning rates.
            let tau =
                (3.0 * (p.optimal_learning_rate / hyper.learning_rate()).sqrt()).clamp(1.0, 60.0);
            (1..=epochs)
                .map(|t| {
                    let base = err_inf + (p.chance_error - err_inf) * (-(t as f64) / tau).exp();
                    let jitter = 1.0 + 0.01 * standard_normal(&mut rng);
                    (base * jitter).clamp(p.base_error * 0.8, p.chance_error + 0.05)
                })
                .collect()
        };

        // Zero-epoch runs produce an empty curve; chance level is the only
        // defensible error estimate there.
        let final_error = curve.last().copied().unwrap_or(p.chance_error);
        TrainingOutcome {
            curve,
            final_error,
            diverged,
        }
    }

    /// Deterministic per-run RNG: hashes the architecture, the training
    /// hyper-parameters and the caller's seed.
    fn run_rng(&self, spec: &ArchSpec, hyper: &TrainingHyper, seed: u64) -> StdRng {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        spec.hash(&mut hasher);
        hyper.learning_rate().to_bits().hash(&mut hasher);
        hyper.momentum().to_bits().hash(&mut hasher);
        hyper.weight_decay().to_bits().hash(&mut hasher);
        seed.hash(&mut hasher);
        StdRng::seed_from_u64(hasher.finish())
    }
}

/// Standard normal sample via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::LayerSpec;

    fn mnist_arch(features: usize, kernel: usize, units: usize) -> ArchSpec {
        ArchSpec::new(
            (1, 28, 28),
            10,
            vec![
                LayerSpec::conv(features, kernel),
                LayerSpec::pool(2),
                LayerSpec::dense(units),
            ],
        )
        .unwrap()
    }

    fn cifar_arch(f: usize, k: usize, units: usize) -> ArchSpec {
        ArchSpec::new(
            (3, 32, 32),
            10,
            vec![
                LayerSpec::conv(f, k),
                LayerSpec::pool(2),
                LayerSpec::conv(f, k),
                LayerSpec::pool(2),
                LayerSpec::dense(units),
            ],
        )
        .unwrap()
    }

    fn good_hyper() -> TrainingHyper {
        TrainingHyper::new(0.012, 0.9, 1e-3).unwrap()
    }

    #[test]
    fn good_mnist_config_reaches_low_error() {
        let sim = TrainingSimulator::new(DatasetProfile::mnist());
        let outcome = sim.simulate(&mnist_arch(60, 5, 600), &good_hyper(), 1);
        assert!(!outcome.diverged);
        assert!(
            outcome.final_error < 0.03,
            "final error {} too high",
            outcome.final_error
        );
    }

    #[test]
    fn good_cifar_config_near_floor() {
        let sim = TrainingSimulator::new(DatasetProfile::cifar10());
        let outcome = sim.simulate(&cifar_arch(70, 5, 650), &good_hyper(), 2);
        assert!(!outcome.diverged);
        assert!(
            (0.18..0.32).contains(&outcome.final_error),
            "cifar error {} outside expected regime",
            outcome.final_error
        );
    }

    #[test]
    fn tiny_network_has_high_error() {
        let sim = TrainingSimulator::new(DatasetProfile::cifar10());
        let small = sim.asymptotic_error(&cifar_arch(4, 2, 16), &good_hyper());
        let large = sim.asymptotic_error(&cifar_arch(70, 5, 650), &good_hyper());
        assert!(small > large + 0.1, "small {small} vs large {large}");
    }

    #[test]
    fn capacity_monotone_with_diminishing_returns() {
        let sim = TrainingSimulator::new(DatasetProfile::cifar10());
        let e20 = sim.asymptotic_error(&cifar_arch(20, 3, 300), &good_hyper());
        let e40 = sim.asymptotic_error(&cifar_arch(40, 3, 300), &good_hyper());
        let e80 = sim.asymptotic_error(&cifar_arch(80, 3, 300), &good_hyper());
        assert!(e20 > e40 && e40 > e80);
        // Diminishing returns.
        assert!((e20 - e40) > (e40 - e80));
    }

    #[test]
    fn huge_learning_rate_diverges() {
        let sim = TrainingSimulator::new(DatasetProfile::cifar10());
        let hyper = TrainingHyper::new(0.1, 0.95, 1e-3).unwrap();
        let outcome = sim.simulate(&cifar_arch(80, 5, 700), &hyper, 3);
        assert!(outcome.diverged);
        // Error pinned at chance.
        assert!(outcome.final_error >= 0.88);
    }

    #[test]
    fn divergent_runs_identifiable_after_few_epochs() {
        // The basis of the paper's early-termination enhancement (Fig. 3).
        let sim = TrainingSimulator::new(DatasetProfile::mnist());
        let hyper = TrainingHyper::new(0.1, 0.95, 1e-3).unwrap();
        let big = mnist_arch(80, 5, 700);
        let outcome = sim.simulate(&big, &hyper, 4);
        assert!(outcome.diverged);
        assert!(outcome.error_at_epoch(3) > 0.85);
        // A converging run is already clearly below chance by epoch 3.
        let ok = sim.simulate(&big, &good_hyper(), 4);
        assert!(!ok.diverged);
        assert!(ok.error_at_epoch(3) < 0.85);
    }

    #[test]
    fn divergence_threshold_shrinks_with_capacity() {
        let sim = TrainingSimulator::new(DatasetProfile::mnist());
        let h = good_hyper();
        let small = sim.divergence_threshold(&mnist_arch(20, 2, 200), &h);
        let large = sim.divergence_threshold(&mnist_arch(80, 5, 700), &h);
        assert!(small > large);
    }

    #[test]
    fn tiny_learning_rate_converges_slowly() {
        let sim = TrainingSimulator::new(DatasetProfile::mnist());
        let slow = TrainingHyper::new(0.001, 0.9, 1e-3).unwrap();
        let arch = mnist_arch(60, 5, 600);
        let out_slow = sim.simulate(&arch, &slow, 5);
        let out_fast = sim.simulate(&arch, &good_hyper(), 5);
        // After the full budget the slow run is still behind.
        assert!(out_slow.final_error > out_fast.final_error);
        // And its curve is decreasing (it is converging, just slowly).
        assert!(out_slow.curve[0] > *out_slow.curve.last().unwrap());
    }

    #[test]
    fn learning_curves_monotone_modulo_noise() {
        let sim = TrainingSimulator::new(DatasetProfile::cifar10());
        let out = sim.simulate(&cifar_arch(60, 4, 500), &good_hyper(), 6);
        // Compare start vs end rather than strict monotonicity (noise).
        assert!(out.curve[0] > out.final_error);
        // All errors are valid probabilities.
        assert!(out.curve.iter().all(|e| (0.0..=1.0).contains(e)));
    }

    #[test]
    fn deterministic_per_seed() {
        let sim = TrainingSimulator::new(DatasetProfile::mnist());
        let arch = mnist_arch(40, 3, 400);
        let a = sim.simulate(&arch, &good_hyper(), 9);
        let b = sim.simulate(&arch, &good_hyper(), 9);
        assert_eq!(a, b);
        let c = sim.simulate(&arch, &good_hyper(), 10);
        assert_ne!(a.final_error, c.final_error);
    }

    #[test]
    fn error_at_epoch_clamps() {
        let sim = TrainingSimulator::new(DatasetProfile::mnist());
        let out = sim.simulate_epochs(&mnist_arch(40, 3, 400), &good_hyper(), 5, 0);
        assert_eq!(out.error_at_epoch(100), out.final_error);
        assert_eq!(out.error_at_epoch(1), out.curve[0]);
    }

    #[test]
    fn capacity_range_override() {
        let p = DatasetProfile::mnist().with_capacity_range(4.0, 9.0);
        assert_eq!(p.log10_flops_lo, 4.0);
        let sim = TrainingSimulator::new(p);
        let cap = sim.normalized_capacity(&mnist_arch(40, 3, 400));
        assert!((0.0..=1.3).contains(&cap));
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn bad_capacity_range_panics() {
        let _ = DatasetProfile::mnist().with_capacity_range(9.0, 4.0);
    }
}
