use std::fmt;

/// Errors produced when building or training networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An architecture specification is invalid (e.g. zero features, a
    /// pooling layer that would reduce the feature map below 1×1, or a
    /// dense layer followed by a convolution).
    InvalidArchitecture(String),
    /// A training hyper-parameter is outside its valid domain.
    InvalidHyperParameter {
        /// Name of the offending hyper-parameter.
        name: &'static str,
        /// Supplied value.
        value: f64,
    },
    /// The dataset's image shape does not match the network's input shape.
    ShapeMismatch {
        /// Shape the network expects, `(channels, height, width)`.
        expected: (usize, usize, usize),
        /// Shape the data provides.
        found: (usize, usize, usize),
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidArchitecture(msg) => write!(f, "invalid architecture: {msg}"),
            Error::InvalidHyperParameter { name, value } => {
                write!(f, "invalid hyper-parameter {name} = {value}")
            }
            Error::ShapeMismatch { expected, found } => write!(
                f,
                "input shape mismatch: network expects {expected:?}, data provides {found:?}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = Error::InvalidHyperParameter {
            name: "learning_rate",
            value: -0.5,
        };
        assert!(e.to_string().contains("learning_rate"));
        let e = Error::ShapeMismatch {
            expected: (1, 28, 28),
            found: (3, 32, 32),
        };
        assert!(e.to_string().contains("28"));
    }
}
