//! Property-based tests for the NN substrate.

// Test-support code: strategies build exact values and assert round-trips
// bit-for-bit; panicking helpers are correct in a test harness.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use hyperpower_nn::sim::{DatasetProfile, TrainingSimulator};
use hyperpower_nn::{ArchSpec, LayerSpec, SoftmaxCrossEntropy, Tensor, TrainingHyper};
use proptest::prelude::*;

/// Strategy: a valid MNIST-shaped architecture from the paper's ranges.
fn arch_strategy() -> impl Strategy<Value = ArchSpec> {
    (20usize..=80, 2usize..=5, 1usize..=3, 200usize..=700).prop_map(|(f, k, p, u)| {
        ArchSpec::new(
            (1, 28, 28),
            10,
            vec![
                LayerSpec::conv(f, k),
                LayerSpec::pool(p),
                LayerSpec::dense(u),
            ],
        )
        .expect("paper ranges always valid")
    })
}

fn hyper_strategy() -> impl Strategy<Value = TrainingHyper> {
    (1e-3f64..0.1, 0.8f64..0.95, 1e-4f64..1e-2)
        .prop_map(|(lr, m, wd)| TrainingHyper::new(lr, m, wd).expect("in range"))
}

proptest! {
    #[test]
    fn shape_walk_is_consistent(spec in arch_strategy()) {
        let walk = spec.shape_walk();
        // Chained shapes: each layer's input is the previous output.
        let mut prev = spec.input_shape();
        for layer in &walk {
            prop_assert_eq!(layer.input, prev);
            prev = layer.output;
        }
        // Classifier ends at (10, 1, 1).
        prop_assert_eq!(prev, (10, 1, 1));
        // Aggregates match the per-layer sums.
        prop_assert_eq!(spec.param_count(), walk.iter().map(|l| l.params).sum::<usize>());
        prop_assert_eq!(spec.flops_per_example(), walk.iter().map(|l| l.flops).sum::<u64>());
        prop_assert!(spec.param_count() > 0);
        prop_assert!(spec.peak_activation() >= 784);
    }

    #[test]
    fn more_features_cost_more(
        f in 20usize..=79, k in 2usize..=5, p in 1usize..=3, u in 200usize..=700
    ) {
        let small = ArchSpec::new((1, 28, 28), 10, vec![
            LayerSpec::conv(f, k), LayerSpec::pool(p), LayerSpec::dense(u),
        ]).unwrap();
        let big = ArchSpec::new((1, 28, 28), 10, vec![
            LayerSpec::conv(f + 1, k), LayerSpec::pool(p), LayerSpec::dense(u),
        ]).unwrap();
        prop_assert!(big.param_count() > small.param_count());
        prop_assert!(big.flops_per_example() > small.flops_per_example());
    }

    #[test]
    fn simulator_errors_are_valid_probabilities(
        spec in arch_strategy(), hyper in hyper_strategy(), seed in 0u64..1000
    ) {
        let sim = TrainingSimulator::new(DatasetProfile::mnist());
        let outcome = sim.simulate(&spec, &hyper, seed);
        prop_assert!(!outcome.curve.is_empty());
        for e in &outcome.curve {
            prop_assert!((0.0..=1.0).contains(e), "error {e} out of range");
        }
        prop_assert_eq!(outcome.final_error, *outcome.curve.last().unwrap());
        // Diverged runs stay at chance.
        if outcome.diverged {
            prop_assert!(outcome.final_error > 0.85);
        }
    }

    #[test]
    fn simulator_asymptote_bounded(
        spec in arch_strategy(), hyper in hyper_strategy()
    ) {
        let sim = TrainingSimulator::new(DatasetProfile::mnist());
        let e = sim.asymptotic_error(&spec, &hyper);
        let p = sim.profile();
        prop_assert!(e >= p.base_error - 1e-12);
        prop_assert!(e <= p.chance_error + 1e-12);
    }

    #[test]
    fn divergence_threshold_positive_and_capacity_monotone(
        hyper in hyper_strategy(), k in 2usize..=5, u in 200usize..=700
    ) {
        let sim = TrainingSimulator::new(DatasetProfile::mnist());
        let small = ArchSpec::new((1, 28, 28), 10, vec![
            LayerSpec::conv(20, k), LayerSpec::pool(2), LayerSpec::dense(u),
        ]).unwrap();
        let large = ArchSpec::new((1, 28, 28), 10, vec![
            LayerSpec::conv(80, k), LayerSpec::pool(2), LayerSpec::dense(u),
        ]).unwrap();
        let ts = sim.divergence_threshold(&small, &hyper);
        let tl = sim.divergence_threshold(&large, &hyper);
        prop_assert!(ts > 0.0 && tl > 0.0);
        prop_assert!(ts >= tl, "bigger nets must not tolerate more aggressive learning rates");
    }

    #[test]
    fn softmax_loss_gradient_sums_to_zero(
        logits in proptest::collection::vec(-5.0f32..5.0, 12),
        label in 0usize..4
    ) {
        let loss = SoftmaxCrossEntropy::new();
        let t = Tensor::from_vec(3, 4, 1, 1, logits);
        let (l, grad) = loss.loss_and_grad(&t, &[label, (label + 1) % 4, (label + 2) % 4]);
        prop_assert!(l >= 0.0);
        for b in 0..3 {
            let s: f32 = grad.example(b).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn training_hyper_roundtrips(lr in 1e-4f64..1.0, m in 0.0f64..0.999, wd in 0.0f64..0.1) {
        let h = TrainingHyper::new(lr, m, wd).unwrap();
        prop_assert_eq!(h.learning_rate(), lr);
        prop_assert_eq!(h.momentum(), m);
        prop_assert_eq!(h.weight_decay(), wd);
    }
}
