//! Property-based tests for the HyperPower core crate.

// Test-support code: strategies build exact values and assert round-trips
// bit-for-bit; panicking helpers are correct in a test harness.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use hyperpower::driver::RunSetup;
use hyperpower::golden::encode_trace;
use hyperpower::methods::History;
use hyperpower::model::{FeatureMap, LinearHwModel};
use hyperpower::recovery::{plan_trial, RetryPolicy, TrialOutcome};
use hyperpower::space::Decoded;
use hyperpower::{
    run_optimization_with, Budget, Budgets, Config, ConstraintOracle, EarlyTermination,
    EvaluationResult, ExecutorOptions, HwModels, Mebibytes, Method, Mode, Objective, SearchSpace,
    Trace, Watts,
};
use hyperpower_gpu_sim::{
    DeviceProfile, FaultPlan, FaultProfile, Gpu, TrainingCostModel, TrainingFault,
};
use proptest::prelude::*;

/// A stub objective with arbitrary (proptest-chosen) virtual durations:
/// the training time and error depend only on the evaluation seed, exactly
/// like the real objectives, so the executor's scheduling decisions are
/// the only thing under test.
struct FakeObjective {
    durations: Vec<f64>,
}

impl Objective for FakeObjective {
    fn evaluate(
        &self,
        _decoded: &Decoded,
        early: Option<&EarlyTermination>,
        seed: u64,
    ) -> hyperpower::Result<EvaluationResult> {
        let idx = (seed as usize) % self.durations.len();
        let terminated_early = early.is_some() && seed.is_multiple_of(3);
        let train_secs = if terminated_early {
            self.durations[idx] * 0.25
        } else {
            self.durations[idx]
        };
        Ok(EvaluationResult {
            error: 0.05 + 0.9 * ((seed % 997) as f64 / 997.0),
            diverged: false,
            terminated_early,
            train_secs,
        })
    }

    fn full_epochs(&self) -> usize {
        10
    }
}

fn run_fake(
    objective: &FakeObjective,
    budget: Budget,
    seed: u64,
    workers: usize,
    gpus: usize,
) -> Trace {
    let space = SearchSpace::mnist();
    let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), seed);
    run_optimization_with(
        RunSetup {
            space: &space,
            objective,
            gpu: &mut gpu,
            budgets: Budgets::default(),
            oracle: None,
            early_termination: Some(EarlyTermination::default()),
            cost: TrainingCostModel::default(),
            method: Method::Rand,
            mode: Mode::HyperPower,
            budget,
            seed,
            searcher_override: None,
        },
        &ExecutorOptions {
            workers,
            simulated_gpus: gpus,
            ..ExecutorOptions::default()
        },
    )
    .expect("fake run")
}

fn run_fake_with_profile(
    objective: &FakeObjective,
    budget: Budget,
    seed: u64,
    workers: usize,
    gpus: usize,
    profile: FaultProfile,
) -> Trace {
    let space = SearchSpace::mnist();
    let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), seed);
    run_optimization_with(
        RunSetup {
            space: &space,
            objective,
            gpu: &mut gpu,
            budgets: Budgets::default(),
            oracle: None,
            early_termination: Some(EarlyTermination::default()),
            cost: TrainingCostModel::default(),
            method: Method::Rand,
            mode: Mode::HyperPower,
            budget,
            seed,
            searcher_override: None,
        },
        &ExecutorOptions {
            workers,
            simulated_gpus: gpus,
            fault_profile: profile,
            ..ExecutorOptions::default()
        },
    )
    .expect("fake run")
}

fn unit_vec(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, dim)
}

/// A power model fitted to `P(z) = 60 + Σ z` with a known residual spread.
fn toy_power_model(noise: f64) -> LinearHwModel {
    let z: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            vec![
                (i % 7) as f64 + 1.0,
                (i % 5) as f64 + 1.0,
                (i % 3) as f64 + 1.0,
            ]
        })
        .collect();
    let y: Vec<f64> = z
        .iter()
        .enumerate()
        .map(|(i, r)| 60.0 + r.iter().sum::<f64>() + noise * if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Linear).expect("fits")
}

proptest! {
    #[test]
    fn every_unit_point_decodes_mnist(unit in unit_vec(6)) {
        let space = SearchSpace::mnist();
        let config = Config::new(unit).unwrap();
        let decoded = space.decode(&config).unwrap();
        // All decoded values within the paper's published ranges.
        prop_assert!((20.0..=80.0).contains(&decoded.values[0]));
        prop_assert!((2.0..=5.0).contains(&decoded.values[1]));
        prop_assert!((1.0..=3.0).contains(&decoded.values[2]));
        prop_assert!((200.0..=700.0).contains(&decoded.values[3]));
        prop_assert!((1e-3..=0.1).contains(&decoded.hyper.learning_rate()));
        prop_assert!((0.8..=0.95).contains(&decoded.hyper.momentum()));
        prop_assert_eq!(decoded.structural.len(), 4);
    }

    #[test]
    fn every_unit_point_decodes_cifar(unit in unit_vec(13)) {
        let space = SearchSpace::cifar10();
        let config = Config::new(unit).unwrap();
        let decoded = space.decode(&config).unwrap();
        prop_assert!(decoded.arch.param_count() > 0);
        prop_assert_eq!(decoded.structural.len(), 10);
        prop_assert!((1e-4..=1e-2).contains(&decoded.hyper.weight_decay()));
    }

    #[test]
    fn structural_values_agree_with_decode(unit in unit_vec(13)) {
        let space = SearchSpace::cifar10();
        let config = Config::new(unit).unwrap();
        let z = space.structural_values(&config).unwrap();
        let decoded = space.decode(&config).unwrap();
        prop_assert_eq!(z, decoded.structural);
    }

    #[test]
    fn integer_dimensions_decode_monotonically(u1 in 0.0f64..=1.0, u2 in 0.0f64..=1.0) {
        let space = SearchSpace::mnist();
        let dim = &space.dimensions()[0]; // conv1_features, 20..=80
        let (lo, hi) = (u1.min(u2), u1.max(u2));
        prop_assert!(dim.decode(lo) <= dim.decode(hi));
    }

    #[test]
    fn gaussian_step_stays_in_cube(unit in unit_vec(13), sigma in 0.001f64..1.0, seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let base = Config::new(unit).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let step = base.gaussian_step(sigma, &mut rng);
        prop_assert!(step.unit().iter().all(|u| (0.0..=1.0).contains(u)));
        prop_assert_eq!(step.dim(), base.dim());
    }

    #[test]
    fn indicator_implies_majority_probability(z in proptest::collection::vec(1.0f64..8.0, 3)) {
        // If the hard indicator says feasible, the Gaussian constraint
        // probability must be at least 1/2 (and vice versa).
        let oracle = ConstraintOracle::new(
            HwModels { power: toy_power_model(2.0), memory: None, latency: None },
            Budgets::power(Watts(70.0)),
        );
        let feasible = oracle.predicted_feasible(&z);
        let p = oracle.feasibility_probability(&z);
        prop_assert!((0.0..=1.0).contains(&p));
        if feasible {
            prop_assert!(p >= 0.5 - 1e-9, "indicator true but probability {p}");
        } else {
            prop_assert!(p <= 0.5 + 1e-9, "indicator false but probability {p}");
        }
    }

    #[test]
    fn budgets_none_accepts_everything(power in 0.0f64..1e4) {
        prop_assert!(
            Budgets::default().satisfied_by(Watts(power), Some(Mebibytes(f64::MAX)))
        );
    }

    #[test]
    fn budget_check_is_monotone_in_power(
        budget in 10.0f64..200.0, below in 0.0f64..1.0, above in 0.0f64..100.0
    ) {
        let b = Budgets::power(Watts(budget));
        prop_assert!(b.satisfied_by(Watts(budget * below), None));
        prop_assert!(!b.satisfied_by(Watts(budget + above + 1e-9), None));
    }

    #[test]
    fn history_best_is_minimum(errors in proptest::collection::vec(0.0f64..1.0, 1..30)) {
        let mut h = History::new();
        for (i, e) in errors.iter().enumerate() {
            let u = (i as f64 / errors.len() as f64).min(1.0);
            h.push(Config::new(vec![u; 3]).unwrap(), *e);
        }
        let best = h.best().unwrap().error;
        let min = errors.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(best, min);
    }

    #[test]
    fn executor_eval_budget_is_exact_and_commits_are_ordered(
        durations in proptest::collection::vec(1.0f64..5000.0, 1..12),
        n in 1usize..10,
        gpus in 1usize..5,
        seed in 0u64..200,
    ) {
        let objective = FakeObjective { durations };
        let trace = run_fake(&objective, Budget::Evaluations(n), seed, 1, gpus);
        // The budget is met exactly: never undershot, never exceeded by
        // in-flight work (no screen here, so every sample is evaluated).
        prop_assert_eq!(trace.evaluations(), n);
        prop_assert_eq!(trace.queried(), n);
        // Commits are sorted by completion time with contiguous indices —
        // no sample lost, duplicated or reordered.
        let mut prev = 0.0f64;
        for (i, s) in trace.samples.iter().enumerate() {
            prop_assert_eq!(s.index, i);
            prop_assert!(s.timestamp_s >= prev, "commit order broken at {i}");
            prev = s.timestamp_s;
        }
        prop_assert!(trace.total_time_s >= prev);
    }

    #[test]
    fn executor_trace_is_worker_count_invariant(
        durations in proptest::collection::vec(1.0f64..5000.0, 1..12),
        n in 1usize..8,
        gpus in 1usize..4,
        seed in 0u64..200,
        workers in 2usize..6,
    ) {
        let objective = FakeObjective { durations };
        let reference = encode_trace(&run_fake(&objective, Budget::Evaluations(n), seed, 1, gpus));
        let parallel = encode_trace(&run_fake(&objective, Budget::Evaluations(n), seed, workers, gpus));
        prop_assert_eq!(reference, parallel);
    }

    #[test]
    fn executor_deadline_overshoot_is_at_most_one_sample_per_gpu(
        durations in proptest::collection::vec(1.0f64..5000.0, 1..12),
        gpus in 1usize..5,
        seed in 0u64..200,
        deadline_h in 0.05f64..2.0,
    ) {
        let objective = FakeObjective { durations };
        let trace = run_fake(&objective, Budget::VirtualHours(deadline_h), seed, 1, gpus);
        // Work is always dispatched at t = 0 < deadline.
        prop_assert!(!trace.samples.is_empty());
        // Only in-flight samples may finish past the deadline: at most one
        // per simulated GPU (the paper's "last sample queried before the
        // limit completes" rule, per worker).
        let deadline_s = deadline_h * 3600.0;
        let overshoots = trace
            .samples
            .iter()
            .filter(|s| s.timestamp_s > deadline_s)
            .count();
        prop_assert!(
            overshoots <= gpus,
            "{overshoots} samples past the deadline with {gpus} GPUs"
        );
    }

    #[test]
    fn charged_virtual_time_is_sum_of_attempts_and_backoff(
        seed in 0u64..5000,
        query in 0u64..5000,
        train_secs in 10.0f64..100_000.0,
        pressure_frac in 0.0f64..1.2,
        glitch_p in 0.0f64..0.5,
        oom_p in 0.0f64..1.0,
        onset_frac in 0.0f64..0.9,
        crash_p in 0.0f64..0.4,
        stall_p in 0.0f64..0.3,
        finite_watchdog_bit in 0u32..2,
        watchdog_secs in 600.0f64..50_000.0,
        max_retries in 0u32..5,
        terminated_early_bit in 0u32..2,
    ) {
        // Satellite invariant: the virtual time a trial charges is exactly
        // the sum of its attempt durations plus the backoff between them —
        // recomputed here independently from the (pure) fault plan, added
        // in the same order so equality is bit-exact.
        let finite_watchdog = finite_watchdog_bit == 1;
        let terminated_early = terminated_early_bit == 1;
        let profile = FaultProfile {
            name: "prop".into(),
            sensor_glitch_prob: glitch_p,
            oom_prob_at_full_pressure: oom_p,
            oom_onset_frac: onset_frac,
            crash_prob: crash_p,
            stall_prob: stall_p,
            timeout_s: if finite_watchdog { watchdog_secs } else { f64::INFINITY },
            sensor_drift_w_per_hour: 0.0,
        };
        let timeout_secs = profile.timeout_s;
        let plan = FaultPlan::new(profile, seed);
        let policy = RetryPolicy { max_retries, ..RetryPolicy::default() };
        let result = EvaluationResult {
            error: 0.1,
            diverged: false,
            terminated_early,
            train_secs,
        };
        let trial = plan_trial(&plan, &policy, query, &result, pressure_frac);

        prop_assert!(trial.attempts >= 1 && trial.attempts <= max_retries + 1);
        let mut expected_secs = 0.0f64;
        for attempt in 1..=trial.attempts {
            let charge_secs = match plan.training_fault(query, attempt, pressure_frac) {
                Some(TrainingFault::Stall) => timeout_secs,
                Some(TrainingFault::Oom) | Some(TrainingFault::Crash) => {
                    plan.fault_point_frac(query, attempt) * train_secs
                }
                None => {
                    if train_secs > timeout_secs && !terminated_early {
                        timeout_secs
                    } else {
                        train_secs
                    }
                }
            };
            expected_secs += charge_secs;
            if attempt < trial.attempts {
                expected_secs += policy.backoff_secs(attempt, plan.backoff_unit(query, attempt));
            }
        }
        prop_assert_eq!(trial.charged_secs, expected_secs);
        // A trial that ran out of attempts is terminal; otherwise the last
        // attempt completed.
        match trial.outcome {
            TrialOutcome::Failed(_) => prop_assert_eq!(trial.attempts, max_retries + 1),
            TrialOutcome::Completed { .. } => {}
        }
    }

    #[test]
    fn executor_deadline_overshoot_bounded_even_with_faults(
        durations in proptest::collection::vec(1.0f64..5000.0, 1..12),
        gpus in 1usize..5,
        seed in 0u64..200,
        deadline_h in 0.05f64..2.0,
    ) {
        // The "last sample queried before the limit completes" rule holds
        // under fault injection too: retries and backoff stretch a trial,
        // but each in-flight trial still commits exactly once.
        let objective = FakeObjective { durations };
        let trace = run_fake_with_profile(
            &objective,
            Budget::VirtualHours(deadline_h),
            seed,
            1,
            gpus,
            FaultProfile::oom_heavy(),
        );
        prop_assert!(!trace.samples.is_empty());
        let deadline_s = deadline_h * 3600.0;
        let overshoots = trace
            .samples
            .iter()
            .filter(|s| s.timestamp_s > deadline_s)
            .count();
        prop_assert!(
            overshoots <= gpus,
            "{overshoots} samples past the deadline with {gpus} GPUs under faults"
        );
    }

    #[test]
    fn recalibrated_weights_are_a_pure_function_of_the_prefix(
        zs in proptest::collection::vec(proptest::collection::vec(1.0f64..8.0, 3), 8..20),
        factor in 1.3f64..2.0,
        split in 0usize..8,
    ) {
        use hyperpower::drift::{DriftConfig, DriftMonitor};
        // Two monitors fed the same committed sequence — plus a third
        // cloned mid-stream — must agree bit-for-bit: recalibration is a
        // pure fold over the committed prefix, with no hidden state.
        let config = DriftConfig {
            recalibrate: true,
            drift_threshold: 0.1,
            safety_margin: 0.0,
        };
        let make = || DriftMonitor::new(
            HwModels { power: toy_power_model(0.0), memory: None, latency: None },
            Budgets::power(Watts(5000.0)),
            config,
        );
        let mut a = make();
        let mut b = make();
        let mut forked = None;
        for (i, z) in zs.iter().enumerate() {
            if i == split {
                forked = Some(a.clone());
            }
            let truth = Watts((60.0 + z.iter().sum::<f64>()) * factor);
            let oa = a.observe_commit(z, truth, None, None, false);
            let ob = b.observe_commit(z, truth, None, None, false);
            prop_assert_eq!(&oa.events, &ob.events);
            prop_assert_eq!(oa.drift_rmspe, ob.drift_rmspe);
            if let Some(c) = forked.as_mut() {
                let oc = c.observe_commit(z, truth, None, None, false);
                prop_assert_eq!(&oa.events, &oc.events);
            }
        }
        prop_assert_eq!(a.recalibrations(), b.recalibrations());
        prop_assert_eq!(
            a.current_models().power.weights(),
            b.current_models().power.weights(),
            "recalibrated weights diverged between identical replays"
        );
        if let Some(c) = forked {
            prop_assert_eq!(
                a.current_models().power.weights(),
                c.current_models().power.weights(),
                "mid-stream clone diverged from the original"
            );
        }
    }

    #[test]
    fn model_prediction_is_affine(z in proptest::collection::vec(0.0f64..10.0, 3), t in 0.0f64..1.0) {
        // Prediction along a segment interpolates linearly.
        let model = toy_power_model(0.0);
        let z2: Vec<f64> = z.iter().map(|v| v + 1.0).collect();
        let mid: Vec<f64> = z.iter().zip(&z2).map(|(a, b)| a + t * (b - a)).collect();
        let interp = model.predict(&z) + t * (model.predict(&z2) - model.predict(&z));
        prop_assert!((model.predict(&mid) - interp).abs() < 1e-9);
    }
}
