//! Property-based tests for the HyperPower core crate.

// Test-support code: strategies build exact values and assert round-trips
// bit-for-bit; panicking helpers are correct in a test harness.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use hyperpower::methods::History;
use hyperpower::model::{FeatureMap, LinearHwModel};
use hyperpower::{Budgets, Config, ConstraintOracle, HwModels, Mebibytes, SearchSpace, Watts};
use proptest::prelude::*;

fn unit_vec(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, dim)
}

/// A power model fitted to `P(z) = 60 + Σ z` with a known residual spread.
fn toy_power_model(noise: f64) -> LinearHwModel {
    let z: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            vec![
                (i % 7) as f64 + 1.0,
                (i % 5) as f64 + 1.0,
                (i % 3) as f64 + 1.0,
            ]
        })
        .collect();
    let y: Vec<f64> = z
        .iter()
        .enumerate()
        .map(|(i, r)| 60.0 + r.iter().sum::<f64>() + noise * if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Linear).expect("fits")
}

proptest! {
    #[test]
    fn every_unit_point_decodes_mnist(unit in unit_vec(6)) {
        let space = SearchSpace::mnist();
        let config = Config::new(unit).unwrap();
        let decoded = space.decode(&config).unwrap();
        // All decoded values within the paper's published ranges.
        prop_assert!((20.0..=80.0).contains(&decoded.values[0]));
        prop_assert!((2.0..=5.0).contains(&decoded.values[1]));
        prop_assert!((1.0..=3.0).contains(&decoded.values[2]));
        prop_assert!((200.0..=700.0).contains(&decoded.values[3]));
        prop_assert!((1e-3..=0.1).contains(&decoded.hyper.learning_rate()));
        prop_assert!((0.8..=0.95).contains(&decoded.hyper.momentum()));
        prop_assert_eq!(decoded.structural.len(), 4);
    }

    #[test]
    fn every_unit_point_decodes_cifar(unit in unit_vec(13)) {
        let space = SearchSpace::cifar10();
        let config = Config::new(unit).unwrap();
        let decoded = space.decode(&config).unwrap();
        prop_assert!(decoded.arch.param_count() > 0);
        prop_assert_eq!(decoded.structural.len(), 10);
        prop_assert!((1e-4..=1e-2).contains(&decoded.hyper.weight_decay()));
    }

    #[test]
    fn structural_values_agree_with_decode(unit in unit_vec(13)) {
        let space = SearchSpace::cifar10();
        let config = Config::new(unit).unwrap();
        let z = space.structural_values(&config).unwrap();
        let decoded = space.decode(&config).unwrap();
        prop_assert_eq!(z, decoded.structural);
    }

    #[test]
    fn integer_dimensions_decode_monotonically(u1 in 0.0f64..=1.0, u2 in 0.0f64..=1.0) {
        let space = SearchSpace::mnist();
        let dim = &space.dimensions()[0]; // conv1_features, 20..=80
        let (lo, hi) = (u1.min(u2), u1.max(u2));
        prop_assert!(dim.decode(lo) <= dim.decode(hi));
    }

    #[test]
    fn gaussian_step_stays_in_cube(unit in unit_vec(13), sigma in 0.001f64..1.0, seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let base = Config::new(unit).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let step = base.gaussian_step(sigma, &mut rng);
        prop_assert!(step.unit().iter().all(|u| (0.0..=1.0).contains(u)));
        prop_assert_eq!(step.dim(), base.dim());
    }

    #[test]
    fn indicator_implies_majority_probability(z in proptest::collection::vec(1.0f64..8.0, 3)) {
        // If the hard indicator says feasible, the Gaussian constraint
        // probability must be at least 1/2 (and vice versa).
        let oracle = ConstraintOracle::new(
            HwModels { power: toy_power_model(2.0), memory: None, latency: None },
            Budgets::power(Watts(70.0)),
        );
        let feasible = oracle.predicted_feasible(&z);
        let p = oracle.feasibility_probability(&z);
        prop_assert!((0.0..=1.0).contains(&p));
        if feasible {
            prop_assert!(p >= 0.5 - 1e-9, "indicator true but probability {p}");
        } else {
            prop_assert!(p <= 0.5 + 1e-9, "indicator false but probability {p}");
        }
    }

    #[test]
    fn budgets_none_accepts_everything(power in 0.0f64..1e4) {
        prop_assert!(
            Budgets::default().satisfied_by(Watts(power), Some(Mebibytes(f64::MAX)))
        );
    }

    #[test]
    fn budget_check_is_monotone_in_power(
        budget in 10.0f64..200.0, below in 0.0f64..1.0, above in 0.0f64..100.0
    ) {
        let b = Budgets::power(Watts(budget));
        prop_assert!(b.satisfied_by(Watts(budget * below), None));
        prop_assert!(!b.satisfied_by(Watts(budget + above + 1e-9), None));
    }

    #[test]
    fn history_best_is_minimum(errors in proptest::collection::vec(0.0f64..1.0, 1..30)) {
        let mut h = History::new();
        for (i, e) in errors.iter().enumerate() {
            let u = (i as f64 / errors.len() as f64).min(1.0);
            h.push(Config::new(vec![u; 3]).unwrap(), *e);
        }
        let best = h.best().unwrap().error;
        let min = errors.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(best, min);
    }

    #[test]
    fn model_prediction_is_affine(z in proptest::collection::vec(0.0f64..10.0, 3), t in 0.0f64..1.0) {
        // Prediction along a segment interpolates linearly.
        let model = toy_power_model(0.0);
        let z2: Vec<f64> = z.iter().map(|v| v + 1.0).collect();
        let mid: Vec<f64> = z.iter().zip(&z2).map(|(a, b)| a + t * (b - a)).collect();
        let interp = model.predict(&z) + t * (model.predict(&z2) - model.predict(&z));
        prop_assert!((model.predict(&mid) - interp).abs() < 1e-9);
    }
}
