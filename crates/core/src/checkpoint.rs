//! Crash-resumable runs: periodic trace checkpoints and bit-exact resume.
//!
//! The executor periodically persists its committed [`Sample`]s and every
//! raw objective evaluation to a checkpoint file encoded with the
//! [`crate::golden`] codec (schema `hyperpower-checkpoint-v2`). Resuming is
//! a *deterministic re-run with an evaluation cache*: the executor replays
//! the whole schedule from the run seed — proposals, sensor draws, fault
//! schedules and commit order come out identical by construction — while
//! the checkpoint's cached [`EvaluationResult`]s stand in for the expensive
//! objective calls that already ran. After the run, the committed prefix is
//! verified bit-for-bit against the checkpoint ([`crate::golden::diff`]),
//! so a resume can never silently diverge from the interrupted run.
//!
//! The file is written atomically (temp file + rename) so a crash *during*
//! checkpointing leaves the previous checkpoint intact. A crash between
//! the temp write and the rename can strand a stale `*.tmp` beside the
//! checkpoint; both [`CheckpointSink::new`] and [`RunCheckpoint::load`]
//! sweep such orphans away so no later open mistakes one for live state.
//!
//! # Integrity frame (v2)
//!
//! Crashes are not the only way durable state dies: bytes at rest rot.
//! Since codec v2 every checkpoint is *checksum-framed*: line 1 is
//! `C <crc32>` — eight lowercase hex digits of the [`crate::integrity`]
//! CRC32 over everything after that line — and the JSON body follows
//! unchanged. A reader verifies the frame before parsing, so a flipped
//! bit surfaces as a typed [`Error::Checkpoint`] instead of resuming a
//! corrupted run. Legacy unframed v1 files are still read (best-effort,
//! no checksum); v2 files with a broken or missing frame are refused.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::driver::{Budget, Sample};
use crate::golden::{self, Value};
use crate::objective::EvaluationResult;
use crate::{Error, Result};

/// Where and how often the executor checkpoints a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Checkpoint file path (created/overwritten; written atomically).
    pub path: PathBuf,
    /// Write the file every this many committed samples (≥ 1; the final
    /// state is always written when the run ends).
    pub every_commits: usize,
}

impl CheckpointConfig {
    /// Checkpoint to `path` after every commit.
    pub fn every_commit(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every_commits: 1,
        }
    }
}

/// The run identity a checkpoint is bound to. Resume refuses to mix
/// checkpoints across seeds, methods, budgets, schedules or fault setups.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointHeader {
    /// Run seed.
    pub seed: u64,
    /// Method label (wire form, e.g. `"hw-ieci"`).
    pub method: String,
    /// Mode label (wire form).
    pub mode: String,
    /// Stop criterion.
    pub budget: Budget,
    /// Virtual schedule width (semantic knob; worker *threads* are not
    /// part of run identity).
    pub simulated_gpus: usize,
    /// Fault profile name (e.g. `"none"`, `"flaky-sensor"`).
    pub fault_profile: String,
    /// Retry budget in force.
    pub max_retries: u32,
    /// Whether online recalibration was enabled (semantic knob: a
    /// recalibrating run commits different oracles, so its checkpoints are
    /// not interchangeable with a non-recalibrating run's).
    pub recalibrate: bool,
    /// Drift threshold in force.
    pub drift_threshold: f64,
    /// Safety-margin step in force.
    pub safety_margin: f64,
}

fn budget_fields(budget: Budget) -> (&'static str, f64) {
    match budget {
        Budget::Evaluations(n) => ("evaluations", n as f64),
        Budget::VirtualHours(h) => ("virtual_hours", h),
    }
}

fn encode_header(h: &CheckpointHeader) -> String {
    let (budget_kind, budget_value) = budget_fields(h.budget);
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"hyperpower-checkpoint-v2\",\n  \"seed\": \"");
    out.push_str(&h.seed.to_string());
    out.push_str("\",\n  \"method\": \"");
    out.push_str(&h.method);
    out.push_str("\",\n  \"mode\": \"");
    out.push_str(&h.mode);
    out.push_str("\",\n  \"budget\": {\"kind\": \"");
    out.push_str(budget_kind);
    out.push_str("\", \"value\": ");
    out.push_str(&format!("{budget_value:?}"));
    out.push_str("},\n  \"simulated_gpus\": ");
    out.push_str(&h.simulated_gpus.to_string());
    out.push_str(",\n  \"fault_profile\": \"");
    out.push_str(&h.fault_profile);
    out.push_str("\",\n  \"max_retries\": ");
    out.push_str(&h.max_retries.to_string());
    out.push_str(",\n  \"recalibrate\": ");
    out.push_str(if h.recalibrate { "true" } else { "false" });
    out.push_str(",\n  \"drift_threshold\": ");
    out.push_str(&format!("{:?}", h.drift_threshold));
    out.push_str(",\n  \"safety_margin\": ");
    out.push_str(&format!("{:?}", h.safety_margin));
    out
}

fn encode_eval(eval_seed: u64, r: &EvaluationResult) -> String {
    format!(
        "{{\"seed\": \"{}\", \"error\": {:?}, \"diverged\": {}, \"terminated_early\": {}, \"train_secs\": {:?}}}",
        eval_seed, r.error, r.diverged, r.terminated_early, r.train_secs
    )
}

/// Accumulates committed samples and raw evaluations during a run and
/// writes the checkpoint file every `every_commits` commits.
#[derive(Debug)]
pub struct CheckpointSink {
    config: CheckpointConfig,
    header: String,
    eval_lines: Vec<String>,
    sample_lines: Vec<String>,
    commits_since_write: usize,
}

impl CheckpointSink {
    /// Creates a sink for one run, sweeping away any orphaned temp file a
    /// crashed predecessor left beside the checkpoint path (a crash
    /// between temp write and rename strands one; it holds no committed
    /// state — the rename is the commit point — so removal is safe).
    pub fn new(config: CheckpointConfig, header: &CheckpointHeader) -> Self {
        clean_orphaned_tmp(&config.path);
        CheckpointSink {
            config,
            header: encode_header(header),
            eval_lines: Vec::new(),
            sample_lines: Vec::new(),
            commits_since_write: 0,
        }
    }

    /// Records one raw objective evaluation (keyed by its eval seed). The
    /// executor calls this for every evaluation it *uses*, including cache
    /// hits on a resumed run, so a rewritten checkpoint is always complete.
    pub fn record_eval(&mut self, eval_seed: u64, result: &EvaluationResult) {
        self.eval_lines.push(encode_eval(eval_seed, result));
    }

    /// Records one committed sample and writes the file if a checkpoint
    /// interval elapsed.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint-file I/O failures as [`Error::Checkpoint`].
    pub fn record_commit(&mut self, sample: &Sample) -> Result<()> {
        self.sample_lines.push(golden::encode_sample(sample));
        self.commits_since_write += 1;
        if self.commits_since_write >= self.config.every_commits.max(1) {
            self.write()?;
            self.commits_since_write = 0;
        }
        Ok(())
    }

    /// Writes the final state (always called when the run ends, whatever
    /// the interval).
    ///
    /// # Errors
    ///
    /// Propagates checkpoint-file I/O failures as [`Error::Checkpoint`].
    pub fn flush(&mut self) -> Result<()> {
        self.write()?;
        self.commits_since_write = 0;
        Ok(())
    }

    fn write(&self) -> Result<()> {
        let mut out = String::with_capacity(
            self.header.len() + 64 * (self.eval_lines.len() + self.sample_lines.len()),
        );
        out.push_str(&self.header);
        out.push_str(",\n  \"evals\": [");
        for (i, line) in self.eval_lines.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(line);
        }
        out.push_str(if self.eval_lines.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"samples\": [");
        for (i, line) in self.sample_lines.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(line);
        }
        out.push_str(if self.sample_lines.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        write_atomic(&self.config.path, &frame_body(&out))
    }
}

/// Prepends the v2 integrity frame: `C <crc32-of-body>` on its own line.
pub(crate) fn frame_body(body: &str) -> String {
    format!("C {}\n{body}", crate::integrity::crc32_hex(body.as_bytes()))
}

/// Splits a checkpoint file into its verified body. A `C <crc>` first
/// line must checksum-match the remainder; unframed text (legacy v1) is
/// returned as-is for the schema check to sort out.
fn unframe_body(text: &str) -> Result<&str> {
    let Some(rest) = text.strip_prefix("C ") else {
        return Ok(text);
    };
    let Some((token, body)) = rest.split_once('\n') else {
        return Err(Error::Checkpoint(
            "integrity frame has no body after it".into(),
        ));
    };
    let Some(expected) = crate::integrity::parse_crc32_hex(token) else {
        return Err(Error::Checkpoint(format!(
            "malformed integrity frame token {token:?}"
        )));
    };
    let actual = crate::integrity::crc32(body.as_bytes());
    if actual != expected {
        return Err(Error::Checkpoint(format!(
            "integrity frame mismatch: recorded crc32 {expected:08x}, computed {actual:08x} — \
             the file has rotted or was truncated mid-body"
        )));
    }
    Ok(body)
}

fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let describe = |what: &str, e: std::io::Error| {
        Error::Checkpoint(format!("{what} {}: {e}", path.display()))
    };
    std::fs::write(&tmp, contents).map_err(|e| describe("writing", e))?;
    std::fs::rename(&tmp, path).map_err(|e| describe("committing", e))
}

/// Removes the stale `*.tmp` a crash between temp write and rename leaves
/// beside `path`. Best-effort: the orphan never holds committed state (the
/// rename is the commit point), so failing to remove it only means the
/// next atomic write overwrites it anyway.
fn clean_orphaned_tmp(path: &Path) {
    let tmp = path.with_extension("tmp");
    if tmp != path {
        std::fs::remove_file(&tmp).ok();
    }
}

/// A loaded checkpoint: the run identity it was written under, the cached
/// raw evaluations and the committed samples (kept as parsed JSON for
/// bit-exact prefix verification).
#[derive(Debug, Clone)]
pub struct RunCheckpoint {
    /// The run identity recorded in the file.
    pub header: CheckpointHeader,
    /// Raw objective results keyed by eval seed.
    pub evals: BTreeMap<u64, EvaluationResult>,
    /// Committed samples, as parsed golden-codec values.
    pub samples: Vec<Value>,
}

fn obj_get<'a>(members: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str(members: &[(String, Value)], key: &str) -> Result<String> {
    match obj_get(members, key) {
        Some(Value::String(s)) => Ok(s.clone()),
        _ => Err(Error::Checkpoint(format!("missing string field `{key}`"))),
    }
}

fn get_num(members: &[(String, Value)], key: &str) -> Result<f64> {
    match obj_get(members, key) {
        Some(Value::Number(x)) => Ok(*x),
        _ => Err(Error::Checkpoint(format!("missing numeric field `{key}`"))),
    }
}

fn get_bool(members: &[(String, Value)], key: &str) -> Result<bool> {
    match obj_get(members, key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(Error::Checkpoint(format!("missing boolean field `{key}`"))),
    }
}

fn get_u64_str(members: &[(String, Value)], key: &str) -> Result<u64> {
    // u64 values are stored as strings: JSON numbers are f64 here and
    // cannot hold every 64-bit seed exactly.
    get_str(members, key)?
        .parse::<u64>()
        .map_err(|e| Error::Checkpoint(format!("bad u64 field `{key}`: {e}")))
}

impl RunCheckpoint {
    /// Loads and validates a checkpoint file, first sweeping away any
    /// orphaned `*.tmp` a crashed writer left beside it (the checkpoint
    /// proper is always complete — the rename is the commit point — so the
    /// orphan is garbage, never a better candidate to resume from).
    ///
    /// # Errors
    ///
    /// [`Error::Checkpoint`] on I/O failures, malformed JSON or a wrong
    /// schema marker.
    pub fn load(path: &Path) -> Result<Self> {
        clean_orphaned_tmp(path);
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Checkpoint(format!("reading {}: {e}", path.display())))?;
        Self::decode(&text)
    }

    /// Parses checkpoint text (see [`RunCheckpoint::load`]).
    ///
    /// # Errors
    ///
    /// [`Error::Checkpoint`] on malformed input.
    pub fn decode(text: &str) -> Result<Self> {
        let framed = text.starts_with("C ");
        let body = unframe_body(text)?;
        let value =
            golden::parse(body).map_err(|e| Error::Checkpoint(format!("parse error: {e}")))?;
        let Value::Object(top) = value else {
            return Err(Error::Checkpoint("top level is not an object".into()));
        };
        let schema = get_str(&top, "schema")?;
        match (schema.as_str(), framed) {
            ("hyperpower-checkpoint-v2", true) => {}
            // Legacy pre-frame files: readable, but carry no checksum.
            ("hyperpower-checkpoint-v1", false) => {}
            ("hyperpower-checkpoint-v2", false) => {
                return Err(Error::Checkpoint(
                    "v2 checkpoint is missing its integrity frame (truncated head?)".into(),
                ));
            }
            _ => return Err(Error::Checkpoint(format!("unknown schema {schema:?}"))),
        }
        let budget = match obj_get(&top, "budget") {
            Some(Value::Object(b)) => {
                let kind = get_str(b, "kind")?;
                let value = get_num(b, "value")?;
                match kind.as_str() {
                    "evaluations" => Budget::Evaluations(value as usize),
                    "virtual_hours" => Budget::VirtualHours(value),
                    other => {
                        return Err(Error::Checkpoint(format!("unknown budget kind {other:?}")))
                    }
                }
            }
            _ => return Err(Error::Checkpoint("missing object field `budget`".into())),
        };
        let header = CheckpointHeader {
            seed: get_u64_str(&top, "seed")?,
            method: get_str(&top, "method")?,
            mode: get_str(&top, "mode")?,
            budget,
            simulated_gpus: get_num(&top, "simulated_gpus")? as usize,
            fault_profile: get_str(&top, "fault_profile")?,
            max_retries: get_num(&top, "max_retries")? as u32,
            recalibrate: get_bool(&top, "recalibrate")?,
            drift_threshold: get_num(&top, "drift_threshold")?,
            safety_margin: get_num(&top, "safety_margin")?,
        };
        let mut evals = BTreeMap::new();
        let Some(Value::Array(eval_items)) = obj_get(&top, "evals") else {
            return Err(Error::Checkpoint("missing array field `evals`".into()));
        };
        for item in eval_items {
            let Value::Object(members) = item else {
                return Err(Error::Checkpoint("eval entry is not an object".into()));
            };
            let seed = get_u64_str(members, "seed")?;
            evals.insert(
                seed,
                EvaluationResult {
                    error: get_num(members, "error")?,
                    diverged: get_bool(members, "diverged")?,
                    terminated_early: get_bool(members, "terminated_early")?,
                    train_secs: get_num(members, "train_secs")?,
                },
            );
        }
        let Some(Value::Array(samples)) = obj_get(&top, "samples") else {
            return Err(Error::Checkpoint("missing array field `samples`".into()));
        };
        Ok(RunCheckpoint {
            header,
            evals,
            samples: samples.clone(),
        })
    }

    /// Verifies this checkpoint was written by the run described by
    /// `expected`.
    ///
    /// # Errors
    ///
    /// [`Error::ResumeMismatch`] naming every differing field.
    pub fn verify_header(&self, expected: &CheckpointHeader) -> Result<()> {
        let mut mismatches = Vec::new();
        let mut check = |field: &str, got: String, want: String| {
            if got != want {
                mismatches.push(format!("{field}: checkpoint has {got}, run wants {want}"));
            }
        };
        let h = &self.header;
        check("seed", h.seed.to_string(), expected.seed.to_string());
        check("method", h.method.clone(), expected.method.clone());
        check("mode", h.mode.clone(), expected.mode.clone());
        // Budgets compare by exact bits: a resumed run must not quietly run
        // under a slightly different deadline.
        let fmt_budget = |b: Budget| {
            let (kind, value) = budget_fields(b);
            format!("{kind}({value:?}/bits {:016x})", value.to_bits())
        };
        check("budget", fmt_budget(h.budget), fmt_budget(expected.budget));
        check(
            "simulated_gpus",
            h.simulated_gpus.to_string(),
            expected.simulated_gpus.to_string(),
        );
        check(
            "fault_profile",
            h.fault_profile.clone(),
            expected.fault_profile.clone(),
        );
        check(
            "max_retries",
            h.max_retries.to_string(),
            expected.max_retries.to_string(),
        );
        check(
            "recalibrate",
            h.recalibrate.to_string(),
            expected.recalibrate.to_string(),
        );
        // Drift knobs compare by exact bits, like the budget: they change
        // committed oracles and therefore run identity.
        let fmt_f64 = |x: f64| format!("{x:?}/bits {:016x}", x.to_bits());
        check(
            "drift_threshold",
            fmt_f64(h.drift_threshold),
            fmt_f64(expected.drift_threshold),
        );
        check(
            "safety_margin",
            fmt_f64(h.safety_margin),
            fmt_f64(expected.safety_margin),
        );
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(Error::ResumeMismatch(mismatches.join("; ")))
        }
    }

    /// Verifies the committed samples in this checkpoint are a bit-exact
    /// prefix of `final_samples` (the resumed run's full sample list).
    ///
    /// # Errors
    ///
    /// [`Error::ResumeMismatch`] with the golden differ's per-field report.
    pub fn verify_prefix(&self, final_samples: &[Sample]) -> Result<()> {
        if final_samples.len() < self.samples.len() {
            return Err(Error::ResumeMismatch(format!(
                "resumed run committed {} samples, checkpoint already had {}",
                final_samples.len(),
                self.samples.len()
            )));
        }
        let mut report = Vec::new();
        for (i, expected) in self.samples.iter().enumerate() {
            let line = golden::encode_sample(&final_samples[i]);
            let actual = golden::parse(&line)
                .map_err(|e| Error::Checkpoint(format!("re-encoding sample {i}: {e}")))?;
            for d in golden::diff(expected, &actual) {
                report.push(format!("samples[{i}]{}", d.trim_start_matches('$')));
            }
        }
        if report.is_empty() {
            Ok(())
        } else {
            Err(Error::ResumeMismatch(report.join("; ")))
        }
    }
}

#[cfg(test)]
// Tests assert exact constructed values; strict float equality intended.
#[allow(clippy::float_cmp, clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::driver::SampleKind;
    use crate::Config;

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            seed: u64::MAX - 7, // not representable as f64: exercises the string encoding
            method: "hw-ieci".into(),
            mode: "hyperpower".into(),
            budget: Budget::VirtualHours(0.1),
            simulated_gpus: 2,
            fault_profile: "flaky-sensor".into(),
            max_retries: 2,
            recalibrate: true,
            drift_threshold: 0.2,
            safety_margin: 0.05,
        }
    }

    fn sample(index: usize) -> Sample {
        Sample {
            index,
            timestamp_s: 100.5 * (index as f64 + 1.0),
            kind: SampleKind::Trained,
            error: Some(0.25),
            power_w: 80.25,
            memory_bytes: Some(123_456),
            latency_s: Some(0.001),
            feasible: true,
            retries: 1,
            faults: vec![crate::recovery::TrialFailure::Crash],
            failure: None,
            drift_events: vec![crate::drift::DriftEvent::MarginTightened],
            degradations: Vec::new(),
            drift_rmspe: Some(0.125),
            hedged: 0,
            reclaimed: 0,
            config: Config::new(vec![0.25, 0.75]).unwrap(),
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hyperpower-ckpt-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_header_evals_and_samples() {
        let path = tmp_path("roundtrip.json");
        let mut sink = CheckpointSink::new(
            CheckpointConfig {
                path: path.clone(),
                every_commits: 2,
            },
            &header(),
        );
        let r = EvaluationResult {
            error: 0.1 + 0.2, // deliberately not 0.3
            diverged: false,
            terminated_early: true,
            train_secs: 1234.5,
        };
        sink.record_eval(42, &r);
        sink.record_eval(u64::MAX, &r);
        sink.record_commit(&sample(0)).unwrap();
        sink.record_commit(&sample(1)).unwrap();
        let ck = RunCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ck.header, header());
        assert_eq!(ck.evals.len(), 2);
        assert_eq!(ck.evals[&42].error.to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(ck.evals[&u64::MAX].terminated_early);
        assert_eq!(ck.samples.len(), 2);
        ck.verify_header(&header()).unwrap();
        ck.verify_prefix(&[sample(0), sample(1), sample(2)])
            .unwrap();
    }

    #[test]
    fn interval_batches_writes_and_flush_forces_one() {
        let path = tmp_path("interval.json");
        std::fs::remove_file(&path).ok();
        let mut sink = CheckpointSink::new(
            CheckpointConfig {
                path: path.clone(),
                every_commits: 3,
            },
            &header(),
        );
        sink.record_commit(&sample(0)).unwrap();
        assert!(!path.exists(), "one commit of three must not write yet");
        sink.flush().unwrap();
        assert!(path.exists());
        let ck = RunCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ck.samples.len(), 1);
    }

    #[test]
    fn header_mismatch_names_the_fields() {
        let path = tmp_path("mismatch.json");
        let mut sink = CheckpointSink::new(CheckpointConfig::every_commit(path.clone()), &header());
        sink.flush().unwrap();
        let ck = RunCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut other = header();
        other.seed ^= 1;
        other.fault_profile = "none".into();
        other.recalibrate = false;
        other.safety_margin = 0.0;
        let err = ck.verify_header(&other).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("fault_profile"), "{msg}");
        assert!(msg.contains("recalibrate"), "{msg}");
        assert!(msg.contains("safety_margin"), "{msg}");
        assert!(!msg.contains("method:"), "{msg}");
        assert!(!msg.contains("drift_threshold:"), "{msg}");
    }

    #[test]
    fn prefix_mismatch_is_bit_exact() {
        let path = tmp_path("prefix.json");
        let mut sink = CheckpointSink::new(CheckpointConfig::every_commit(path.clone()), &header());
        sink.record_commit(&sample(0)).unwrap();
        let ck = RunCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut drifted = sample(0);
        drifted.power_w = f64::from_bits(drifted.power_w.to_bits() + 1);
        let err = ck.verify_prefix(&[drifted]).unwrap_err();
        assert!(err.to_string().contains("power_w"), "{err}");
        // Too-short final runs are rejected outright.
        assert!(ck.verify_prefix(&[]).is_err());
    }

    #[test]
    fn decode_rejects_malformed_files() {
        assert!(RunCheckpoint::decode("{").is_err());
        assert!(RunCheckpoint::decode("{\"schema\": \"other\"}").is_err());
        assert!(
            RunCheckpoint::decode("{\"schema\": \"hyperpower-checkpoint-v1\"}").is_err(),
            "missing fields must fail"
        );
        let err = RunCheckpoint::load(Path::new("/nonexistent/ckpt.json")).unwrap_err();
        assert!(matches!(err, Error::Checkpoint(_)));
    }

    #[test]
    fn bit_rot_is_detected_by_the_integrity_frame() {
        let path = tmp_path("bitrot.json");
        let mut sink = CheckpointSink::new(CheckpointConfig::every_commit(path.clone()), &header());
        sink.record_commit(&sample(0)).unwrap();
        let clean = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(clean.starts_with("C "), "v2 files lead with the frame");
        assert!(RunCheckpoint::decode(&clean).is_ok());
        // Flip one bit in the middle of the body: the frame must catch it.
        let mut rotted = clean.clone().into_bytes();
        let mid = rotted.len() / 2;
        rotted[mid] ^= 0x08;
        let rotted = String::from_utf8(rotted).unwrap();
        let err = RunCheckpoint::decode(&rotted).unwrap_err();
        assert!(err.to_string().contains("integrity frame"), "{err}");
        // Stripping the frame off a v2 body is refused too.
        let body = clean.split_once('\n').unwrap().1;
        assert!(RunCheckpoint::decode(body).is_err());
    }
}
