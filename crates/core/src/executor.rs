//! Deterministic parallel candidate evaluation.
//!
//! The paper's asymmetry — constraint checks cost milliseconds while
//! candidate *training* dominates wall-clock (§5 trains 50 candidates over
//! 2–5 simulated hours) — makes training the obvious thing to parallelise.
//! This module runs up to `workers` candidate trainings concurrently on OS
//! threads ([`std::thread::scope`]; the workspace is hermetic, so no rayon)
//! while keeping every emitted [`Trace`] **bit-for-bit reproducible**.
//!
//! Two dials, two very different meanings:
//!
//! * [`ExecutorOptions::workers`] — how many OS threads evaluate
//!   candidates. This is *semantics-neutral*: the trace is byte-identical
//!   for workers ∈ {1, 2, 4, 8} at a fixed seed (proven by
//!   `tests/parallel_determinism.rs`), only real wall-clock changes.
//! * [`ExecutorOptions::simulated_gpus`] — how many *virtual* training
//!   GPUs the experiment models. This is a *semantic* knob: with 1 GPU the
//!   executor reproduces the paper's sequential schedule exactly; with
//!   G > 1 it runs the honest batch-parallel experiment (constant-liar
//!   pending points, samples committed in completion-time order) — still
//!   deterministic given the seed and G, and still independent of
//!   `workers`.
//!
//! # Why the two dials cannot be one
//!
//! A single "K workers ⇒ K-point batches" knob would tie the *algorithm*
//! (what gets proposed) to the *machine* (how many threads run), and the
//! headline invariant — byte-identical traces across thread counts — would
//! be unsatisfiable: a K-point constant-liar batch proposes different
//! configurations than the sequential loop. Splitting the dials keeps the
//! invariant testable and makes workers=1 the semantic reference.
//!
//! # Determinism scheme
//!
//! * **Proposal RNG**: one `StdRng::seed_from_u64(seed)` stream, consumed
//!   strictly in proposal order (single-GPU: trace order; multi-GPU:
//!   earliest-free-worker order with lowest-index tiebreak).
//! * **Per-candidate evaluation seeds**: derived as
//!   `seed × 0x9e37_79b9_7f4a_7c15 + query_index` (the golden-ratio mix the
//!   sequential driver has always used), so a candidate's training outcome
//!   depends only on *which* proposal it was — never on which thread ran
//!   it or when it finished.
//! * **Sensor measurements**: performed at *commit* time on the
//!   coordinator's single [`hyperpower_gpu_sim::Gpu`] stream, in commit
//!   order — the shared noise stream never races.
//! * **Commit order**: completion-time order with proposal-index tiebreak,
//!   via [`CommitQueue`]; with one simulated GPU this degenerates to
//!   proposal order.
//! * **Faults**: every fault decision ([`FaultPlan`]) is a pure function of
//!   `(run seed, proposal index, attempt)` on salted streams separate from
//!   the proposal and sensor RNGs, so fault schedules replay exactly, and
//!   [`FaultProfile::none`] leaves the fault-free byte-identity intact (see
//!   DESIGN.md §5b).
//!
//! # Fault recovery and resumable runs
//!
//! With a non-inert [`FaultProfile`], each evaluated candidate is run
//! through [`crate::recovery::plan_trial`]: injected faults abort attempts,
//! a bounded [`RetryPolicy`] re-runs them with seeded exponential backoff
//! (charged to *virtual* time, so `Budget::VirtualHours` stays honest), and
//! a trial whose every attempt fails commits as [`SampleKind::Failed`] — a
//! worst-case "liar" observation for the searcher — and quarantines its
//! configuration (circuit breaker: re-proposals are rejected at model-eval
//! cost without training). [`ExecutorOptions::checkpoint`] persists the
//! committed trace periodically; [`ExecutorOptions::resume_from`] replays a
//! checkpoint's cached evaluations through a deterministic re-run and
//! verifies the committed prefix bit-for-bit.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use hyperpower_gpu_sim::{CommitQueue, FaultPlan, FaultProfile, WorkerClock};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::checkpoint::{CheckpointConfig, CheckpointHeader, CheckpointSink, RunCheckpoint};
use crate::constraints::ConstraintOracle;
use crate::drift::{DriftConfig, DriftMonitor};
use crate::driver::{Budget, RunSetup, Sample, SampleKind, Trace, MAX_CONSECUTIVE_REJECTIONS};
use crate::methods::{make_searcher, History};
use crate::objective::EvaluationResult;
use crate::recovery::{plan_trial, RetryPolicy, TrialFailure, TrialOutcome, LIAR_ERROR};
use crate::space::Decoded;
use crate::study::{
    config_key, heal_on_commit, heal_on_rejection, memory_pressure_frac, screening_oracle, Study,
    StudySpec, SEED_MIX,
};
use crate::{Config, EarlyTermination, Error, Objective, Result, Watts};

/// Environment variable read by [`ExecutorOptions::from_env`] for the
/// default worker-thread count (used by the CI matrix to exercise the
/// parallel paths across the whole test suite).
pub const WORKERS_ENV: &str = "HYPERPOWER_WORKERS";

/// Knobs for the parallel evaluation executor. See the module docs for why
/// `workers` (threads, semantics-neutral) and `simulated_gpus` (virtual
/// schedule, semantic) are separate dials.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorOptions {
    /// Maximum OS threads evaluating candidates concurrently. Never
    /// affects the emitted trace; 0 is treated as 1.
    pub workers: usize,
    /// Number of simulated training GPUs in the virtual schedule. 1 (the
    /// default and the semantic reference) reproduces the sequential
    /// paper experiment; G > 1 runs the batch-parallel variant. 0 is
    /// treated as 1.
    pub simulated_gpus: usize,
    /// Fault-injection profile. [`FaultProfile::none`] (the default) is
    /// inert: no fault draws happen and traces are byte-identical to the
    /// pre-fault executor. Like `simulated_gpus`, this is a *semantic*
    /// knob and part of run identity for checkpoints.
    pub fault_profile: FaultProfile,
    /// Retry/backoff policy applied when faults abort an attempt.
    pub retry: RetryPolicy,
    /// When set, the committed trace is checkpointed here periodically
    /// (and always at run end), atomically.
    pub checkpoint: Option<CheckpointConfig>,
    /// When set, the run resumes from this checkpoint: cached evaluations
    /// replace objective calls during a deterministic re-run, and the
    /// checkpoint's committed samples are verified as a bit-exact prefix
    /// of the final trace.
    pub resume_from: Option<PathBuf>,
    /// Self-healing configuration (drift detection, online recalibration,
    /// adaptive safety margins). Inert by default; a semantic knob and
    /// part of run identity for checkpoints when enabled.
    pub drift: DriftConfig,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            workers: 1,
            simulated_gpus: 1,
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::default(),
            checkpoint: None,
            resume_from: None,
            drift: DriftConfig::default(),
        }
    }
}

impl ExecutorOptions {
    /// Options with the worker count taken from the `HYPERPOWER_WORKERS`
    /// environment variable (unset, unparsable or zero ⇒ 1) and one
    /// simulated GPU. Fault injection, checkpointing and resume stay at
    /// their defaults — they are semantic knobs, never ambient state.
    pub fn from_env() -> Self {
        let workers = std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w > 0)
            .unwrap_or(1);
        ExecutorOptions {
            workers,
            ..ExecutorOptions::default()
        }
    }

    /// Replaces the worker-thread count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the simulated-GPU count (builder style).
    pub fn with_simulated_gpus(mut self, simulated_gpus: usize) -> Self {
        self.simulated_gpus = simulated_gpus;
        self
    }

    /// Replaces the fault profile (builder style).
    pub fn with_fault_profile(mut self, profile: FaultProfile) -> Self {
        self.fault_profile = profile;
        self
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables periodic checkpointing (builder style).
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Resumes from a checkpoint file (builder style).
    pub fn with_resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Replaces the whole self-healing configuration (builder style).
    pub fn with_drift(mut self, drift: DriftConfig) -> Self {
        self.drift = drift;
        self
    }

    /// Enables online recalibration (builder style).
    pub fn with_recalibrate(mut self, recalibrate: bool) -> Self {
        self.drift.recalibrate = recalibrate;
        self
    }

    /// Replaces the drift-detection threshold (builder style).
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift.drift_threshold = threshold;
        self
    }

    /// Replaces the adaptive safety-margin step (builder style).
    pub fn with_safety_margin(mut self, margin: f64) -> Self {
        self.drift.safety_margin = margin;
        self
    }

    fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }
}

/// Runs one optimization with explicit executor options.
///
/// `options.simulated_gpus == 1` reproduces [`crate::driver::run_optimization`]'s
/// sequential schedule byte-for-byte at any worker count; larger values run
/// the deterministic batch-parallel schedule.
///
/// # Errors
///
/// Propagates space-decoding, GP-fitting and objective errors (the first
/// error in proposal order wins, so failures are deterministic too), plus
/// [`Error::WorkerPanic`] for panicking objectives, [`Error::Checkpoint`]
/// for checkpoint I/O failures and [`Error::ResumeMismatch`] when a resume
/// checkpoint belongs to a different run or its committed samples fail the
/// bit-exact prefix check.
pub fn run_optimization_with(setup: RunSetup<'_>, options: &ExecutorOptions) -> Result<Trace> {
    let workers = options.effective_workers();
    let gpus = options.simulated_gpus.max(1);
    let header = CheckpointHeader {
        seed: setup.seed,
        method: setup.method.to_string(),
        mode: setup.mode.to_string(),
        budget: setup.budget,
        simulated_gpus: gpus,
        fault_profile: options.fault_profile.name.clone(),
        max_retries: options.retry.max_retries,
        recalibrate: options.drift.recalibrate,
        drift_threshold: options.drift.drift_threshold,
        safety_margin: options.drift.safety_margin,
    };
    let plan = FaultPlan::new(options.fault_profile.clone(), setup.seed);
    let mut sink = options
        .checkpoint
        .clone()
        .map(|config| CheckpointSink::new(config, &header));
    let engine = Engine {
        workers,
        gpus,
        plan: &plan,
        retry: &options.retry,
        drift: options.drift,
    };

    let resumed = match &options.resume_from {
        Some(path) => {
            let checkpoint = RunCheckpoint::load(path)?;
            checkpoint.verify_header(&header)?;
            Some(checkpoint)
        }
        None => None,
    };

    let trace = match &resumed {
        Some(checkpoint) => {
            // Resume = deterministic re-run with an evaluation cache: the
            // schedule (proposals, sensors, faults) replays identically by
            // construction; only never-before-seen evaluations actually
            // call the objective.
            let RunSetup {
                space,
                objective,
                gpu,
                budgets,
                oracle,
                early_termination,
                cost,
                method,
                mode,
                budget,
                seed,
                searcher_override,
            } = setup;
            let cached = CachedObjective {
                inner: objective,
                cache: &checkpoint.evals,
            };
            engine.run(
                RunSetup {
                    space,
                    objective: &cached,
                    gpu,
                    budgets,
                    oracle,
                    early_termination,
                    cost,
                    method,
                    mode,
                    budget,
                    seed,
                    searcher_override,
                },
                sink.as_mut(),
            )?
        }
        None => engine.run(setup, sink.as_mut())?,
    };
    if let Some(checkpoint) = &resumed {
        checkpoint.verify_prefix(&trace.samples)?;
    }
    Ok(trace)
}

/// An objective wrapper that answers from a resume checkpoint's cached
/// results where possible. Keyed by eval seed — the executor derives eval
/// seeds purely from `(run seed, proposal index)`, so a hit is exactly "the
/// interrupted run already trained this proposal".
struct CachedObjective<'a> {
    inner: &'a dyn Objective,
    cache: &'a BTreeMap<u64, EvaluationResult>,
}

impl Objective for CachedObjective<'_> {
    fn evaluate(
        &self,
        decoded: &Decoded,
        early: Option<&EarlyTermination>,
        seed: u64,
    ) -> Result<EvaluationResult> {
        if let Some(result) = self.cache.get(&seed) {
            return Ok(*result);
        }
        self.inner.evaluate(decoded, early, seed)
    }

    fn full_epochs(&self) -> usize {
        self.inner.full_epochs()
    }
}

/// The executor's per-run read-only context.
struct Engine<'p> {
    workers: usize,
    gpus: usize,
    plan: &'p FaultPlan,
    retry: &'p RetryPolicy,
    drift: DriftConfig,
}

impl Engine<'_> {
    fn run(&self, setup: RunSetup<'_>, sink: Option<&mut CheckpointSink>) -> Result<Trace> {
        if self.gpus == 1 {
            run_single_gpu(setup, self, sink)
        } else {
            run_multi_gpu(setup, self, sink)
        }
    }
}

/// Single-GPU mode: the semantic reference, now a thin driver over the
/// [`Study`] ask–tell state machine. The virtual schedule is the
/// sequential paper experiment; `workers` only lets history-independent
/// searchers (Rand, grid) *prefetch* a block of proposals and train them on
/// concurrent threads. The study re-checks the budget before every commit,
/// so a prefetched tail that the sequential loop would never have proposed
/// is discarded unseen — byte identity with the sequential trace is
/// preserved. (Quarantine membership is likewise checked at *commit* time
/// inside the study; see `crate::study` for the full exactness argument.)
fn run_single_gpu(
    setup: RunSetup<'_>,
    engine: &Engine<'_>,
    mut sink: Option<&mut CheckpointSink>,
) -> Result<Trace> {
    let RunSetup {
        space,
        objective,
        gpu,
        budgets,
        oracle,
        early_termination,
        cost,
        method,
        mode,
        budget,
        seed,
        searcher_override,
    } = setup;
    let workers = engine.workers;
    let spec = StudySpec {
        method,
        mode,
        budget,
        seed,
        budgets,
        cost,
        early_termination,
        fault_profile: engine.plan.profile().clone(),
        retry: *engine.retry,
        drift: engine.drift,
    };
    let mut study = Study::new(spec, oracle, searcher_override);

    // The driver evaluates every asked batch to completion before asking
    // again, so lease deadlines never matter here: `now_s` stays 0.
    loop {
        let batch = study.ask(space, gpu, workers, 0.0, sink.as_deref_mut())?;
        if batch.is_empty() {
            break;
        }
        let tasks: Vec<(u64, &Decoded, u64)> = batch
            .iter()
            .map(|c| (c.query, &c.decoded, c.eval_seed))
            .collect();
        let results = evaluate_parallel(objective, early_termination.as_ref(), &tasks, workers)?;
        for (candidate, result) in batch.iter().zip(results) {
            study.tell(gpu, candidate.lease_id, &result, sink.as_deref_mut())?;
        }
    }

    if let Some(s) = sink {
        s.flush()?;
    }
    Ok(study.into_trace())
}

/// A candidate dispatched to a simulated GPU, awaiting training.
struct InFlight {
    worker: usize,
    query: u64,
    config: Config,
    decoded: Decoded,
    eval_seed: u64,
    degradations: Vec<crate::drift::DegradationEvent>,
}

/// What a finished queue entry commits to the trace.
enum CommitItem {
    Rejected {
        config: Config,
        predicted_power_w: f64,
        /// `Some(Quarantined)` for circuit-breaker rejections.
        failure: Option<TrialFailure>,
        degradations: Vec<crate::drift::DegradationEvent>,
        drift_events: Vec<crate::drift::DriftEvent>,
    },
    Evaluated {
        worker: usize,
        config: Config,
        decoded: Decoded,
        result: EvaluationResult,
        retries: u32,
        faults: Vec<TrialFailure>,
        secondary: Option<TrialFailure>,
        glitched: bool,
        degradations: Vec<crate::drift::DegradationEvent>,
    },
    Failed {
        worker: usize,
        config: Config,
        decoded: Decoded,
        retries: u32,
        faults: Vec<TrialFailure>,
        cause: TrialFailure,
        degradations: Vec<crate::drift::DegradationEvent>,
    },
}

/// Multi-GPU mode: a discrete-event simulation over `gpus` virtual worker
/// timelines.
///
/// Each round (a) fills every free worker with proposals — the earliest
/// free worker (lowest-index tiebreak) proposes next, with the in-flight
/// configurations passed as constant-liar pending points; (b) trains the
/// newly dispatched candidates concurrently (real threads, virtual
/// durations) and replays each one's fault schedule; (c) pops exactly one
/// entry — the globally earliest `(completion time, proposal index)` —
/// from the [`CommitQueue`] and commits it. Popping the minimum is safe
/// because after (a)+(b) every potential earlier commit is already queued:
/// all workers are either busy (their entry is queued) or blocked for the
/// rest of the run.
///
/// Quarantine is checked at *dispatch* time here (phases are sequential
/// coordinator code, so the set is worker-count-independent), and retries
/// with their backoff run on the owning worker's timeline.
fn run_multi_gpu(
    setup: RunSetup<'_>,
    engine: &Engine<'_>,
    mut sink: Option<&mut CheckpointSink>,
) -> Result<Trace> {
    let RunSetup {
        space,
        objective,
        gpu,
        budgets,
        oracle,
        early_termination,
        cost,
        method,
        mode,
        budget,
        seed,
        searcher_override,
    } = setup;
    let (workers, gpus) = (engine.workers, engine.gpus);

    let mut searcher =
        searcher_override.unwrap_or_else(|| make_searcher(method, mode, oracle.cloned()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clock = WorkerClock::new(gpus);
    let mut queue: CommitQueue<CommitItem> = CommitQueue::new();
    let mut history = History::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut evaluations = 0usize;
    let mut consecutive_rejections = 0usize;
    let mut rejections_exhausted = false;
    let mut busy = vec![false; gpus];
    let mut blocked = vec![false; gpus];
    let mut pending: Vec<(u64, Config)> = Vec::new();
    let mut query: u64 = 0;
    let mut dispatched_evals = 0usize;
    let mut quarantine: BTreeSet<Vec<u64>> = BTreeSet::new();
    let screen_active = screening_oracle(mode, method, oracle).is_some();
    // Live oracle + drift monitor: same scheme as the single-GPU loop.
    // Oracle swaps happen in Phase C (measured commits) and at Phase A
    // rejection planning (the starvation valve) — both sequential
    // coordinator code whose order is fixed by the committed prefix and
    // the planned-rejection sequence, never by the worker-thread count.
    let mut live_oracle: Option<ConstraintOracle> = oracle.cloned();
    let mut monitor = if engine.drift.is_inert() {
        None
    } else {
        oracle.map(|o| DriftMonitor::new(o.models().clone(), o.budgets(), engine.drift))
    };

    loop {
        // Phase A: fill free workers with proposals, earliest worker first.
        let mut newly_planned: Vec<InFlight> = Vec::new();
        'fill: loop {
            if rejections_exhausted {
                break;
            }
            // The evaluation budget is never exceeded by in-flight work:
            // dispatches, not commits, are counted against it.
            if let Budget::Evaluations(n) = budget {
                if dispatched_evals >= n {
                    break;
                }
            }
            let Some(w) = earliest_free(&clock, &busy, &blocked) else {
                break;
            };
            if let Budget::VirtualHours(h) = budget {
                // Paper rule: the last sample queried before the deadline
                // completes; nothing further is queried on this worker.
                if clock.seconds(w) / 3600.0 >= h {
                    blocked[w] = true; // in-bounds: earliest_free yields w < workers. analyze::allow(R15)
                    continue 'fill;
                }
            }
            let pending_configs: Vec<Config> = pending.iter().map(|(_, c)| c.clone()).collect();
            let config =
                searcher.propose_with_pending(space, &history, &pending_configs, &mut rng)?;
            let degradations = searcher.drain_degradations();
            let decoded = space.decode(&config)?;
            let q = query;
            query += 1;
            if screen_active {
                let (rejected, predicted_power) = {
                    let Some(oracle) = live_oracle.as_ref() else {
                        // screen_active implies a live oracle. analyze::allow(R15)
                        unreachable!("screening is only active with an oracle");
                    };
                    (
                        !oracle.predicted_feasible(&decoded.structural),
                        oracle.models().predict_power(&decoded.structural),
                    )
                };
                if rejected {
                    clock.advance_secs(w, cost.model_eval_s);
                    let drift_events =
                        heal_on_rejection(monitor.as_mut(), &mut live_oracle, searcher.as_mut());
                    queue.push(
                        clock.seconds(w),
                        q,
                        CommitItem::Rejected {
                            config,
                            predicted_power_w: predicted_power.get(),
                            failure: None,
                            degradations,
                            drift_events,
                        },
                    );
                    consecutive_rejections += 1;
                    if consecutive_rejections >= MAX_CONSECUTIVE_REJECTIONS {
                        rejections_exhausted = true;
                    }
                    continue 'fill;
                }
            }
            if quarantine.contains(&config_key(&config)) {
                // Circuit breaker (see the single-GPU loop). The worker
                // stays free: nothing trains.
                clock.advance_secs(w, cost.model_eval_s);
                queue.push(
                    clock.seconds(w),
                    q,
                    CommitItem::Rejected {
                        config,
                        predicted_power_w: gpu.analyze(&decoded.arch).power.get(),
                        failure: Some(TrialFailure::Quarantined),
                        degradations,
                        drift_events: Vec::new(),
                    },
                );
                consecutive_rejections += 1;
                if consecutive_rejections >= MAX_CONSECUTIVE_REJECTIONS {
                    rejections_exhausted = true;
                }
                continue 'fill;
            }
            if screen_active {
                clock.advance_secs(w, cost.model_eval_s);
            }
            consecutive_rejections = 0;
            let eval_seed = seed.wrapping_mul(SEED_MIX).wrapping_add(q);
            pending.push((q, config.clone()));
            busy[w] = true; // in-bounds: earliest_free yields w < workers. analyze::allow(R15)
            if matches!(budget, Budget::Evaluations(_)) {
                dispatched_evals += 1;
            }
            newly_planned.push(InFlight {
                worker: w,
                query: q,
                config,
                decoded,
                eval_seed,
                degradations,
            });
        }

        // Phase B: train the dispatched candidates concurrently, replay
        // each one's fault schedule on its worker's timeline, and queue
        // the completions (or terminal failures).
        let tasks: Vec<(u64, &Decoded, u64)> = newly_planned
            .iter()
            .map(|p| (p.query, &p.decoded, p.eval_seed))
            .collect();
        let results = evaluate_parallel(objective, early_termination.as_ref(), &tasks, workers)?;
        for (item, result) in newly_planned.into_iter().zip(results) {
            if let Some(s) = sink.as_deref_mut() {
                s.record_eval(item.eval_seed, &result);
            }
            let pressure_frac = memory_pressure_frac(gpu, &item.decoded);
            let trial = plan_trial(
                engine.plan,
                engine.retry,
                item.query,
                &result,
                pressure_frac,
            );
            clock.advance_secs(item.worker, trial.charged_secs);
            match trial.outcome {
                TrialOutcome::Completed { secondary } => {
                    let glitched = engine.plan.sensor_glitch(item.query);
                    clock.advance_secs(item.worker, cost.measurement_s);
                    if glitched {
                        // The repeated measurement pass is paid on the
                        // worker's own timeline; the discarded sensor draw
                        // happens at commit, on the shared stream.
                        clock.advance_secs(item.worker, cost.measurement_s);
                    }
                    queue.push(
                        clock.seconds(item.worker),
                        item.query,
                        CommitItem::Evaluated {
                            worker: item.worker,
                            config: item.config,
                            decoded: item.decoded,
                            result,
                            retries: trial.attempts - 1,
                            faults: trial.faults,
                            secondary,
                            glitched,
                            degradations: item.degradations,
                        },
                    );
                }
                TrialOutcome::Failed(cause) => {
                    queue.push(
                        clock.seconds(item.worker),
                        item.query,
                        CommitItem::Failed {
                            worker: item.worker,
                            config: item.config,
                            decoded: item.decoded,
                            retries: trial.attempts - 1,
                            faults: trial.faults,
                            cause,
                            degradations: item.degradations,
                        },
                    );
                }
            }
        }

        // Phase C: commit the globally earliest completion.
        let Some((time_s, q, item)) = queue.pop_min() else {
            break;
        };
        let sample = match item {
            CommitItem::Rejected {
                config,
                predicted_power_w,
                failure,
                degradations,
                drift_events,
            } => Sample {
                index: samples.len(),
                timestamp_s: time_s,
                kind: SampleKind::Rejected,
                error: None,
                power_w: predicted_power_w,
                memory_bytes: None,
                latency_s: None,
                feasible: false,
                retries: 0,
                faults: Vec::new(),
                failure,
                drift_events,
                degradations,
                drift_rmspe: None,
                hedged: 0,
                reclaimed: 0,
                config,
            },
            CommitItem::Evaluated {
                worker,
                config,
                decoded,
                result,
                retries,
                mut faults,
                secondary,
                glitched,
                degradations,
            } => {
                // Sensors are read on the coordinator's single GPU stream
                // in commit order: the noise sequence is a function of the
                // trace, not of thread scheduling.
                if glitched {
                    let _ = gpu.measure_power(&decoded.arch);
                    faults.push(TrialFailure::SensorGlitch);
                }
                let raw_power = gpu.measure_power(&decoded.arch);
                // Sensor drift biases the reading as a function of the commit
                // timestamp — deterministic across worker counts because the
                // commit order (and thus `time_s`) is.
                let power = Watts(raw_power.get() + engine.plan.profile().power_bias_w(time_s));
                let memory = gpu.measure_memory(&decoded.arch).ok();
                let latency = gpu.measure_latency(&decoded.arch);
                let feasible = budgets.satisfied_by_measurements(power, memory, Some(latency));
                let healing = heal_on_commit(
                    monitor.as_mut(),
                    &mut live_oracle,
                    searcher.as_mut(),
                    engine.drift.safety_margin,
                    &decoded.structural,
                    power,
                    memory,
                    latency,
                    feasible,
                );
                history.push(
                    config.clone(),
                    if healing.liar {
                        LIAR_ERROR
                    } else {
                        result.error
                    },
                );
                evaluations += 1;
                busy[worker] = false; // in-bounds: workers only dispatch valid indices. analyze::allow(R15)
                pending.retain(|(pq, _)| *pq != q);
                Sample {
                    index: samples.len(),
                    timestamp_s: time_s,
                    kind: if result.terminated_early {
                        SampleKind::EarlyTerminated
                    } else {
                        SampleKind::Trained
                    },
                    error: Some(result.error),
                    power_w: power.get(),
                    memory_bytes: memory.map(|m| m.as_bytes() as u64),
                    latency_s: Some(latency.get()),
                    feasible,
                    retries,
                    faults,
                    failure: secondary,
                    drift_events: healing.drift_events,
                    degradations,
                    drift_rmspe: healing.drift_rmspe,
                    hedged: 0,
                    reclaimed: 0,
                    config,
                }
            }
            CommitItem::Failed {
                worker,
                config,
                decoded,
                retries,
                faults,
                cause,
                degradations,
            } => {
                history.push(config.clone(), LIAR_ERROR);
                evaluations += 1;
                quarantine.insert(config_key(&config));
                busy[worker] = false; // in-bounds: workers only dispatch valid indices. analyze::allow(R15)
                pending.retain(|(pq, _)| *pq != q);
                Sample {
                    index: samples.len(),
                    timestamp_s: time_s,
                    kind: SampleKind::Failed,
                    error: None,
                    power_w: gpu.analyze(&decoded.arch).power.get(),
                    memory_bytes: None,
                    latency_s: None,
                    feasible: false,
                    retries,
                    faults,
                    failure: Some(cause),
                    drift_events: Vec::new(),
                    degradations,
                    drift_rmspe: None,
                    hedged: 0,
                    reclaimed: 0,
                    config,
                }
            }
        };
        if let Some(s) = sink.as_deref_mut() {
            s.record_commit(&sample)?;
        }
        samples.push(sample);
    }

    // `evaluations` feeds the dispatch gate; the trace recomputes its own
    // count, and the two must agree once the queue has drained.
    debug_assert_eq!(
        evaluations,
        samples
            .iter()
            .filter(|s| s.kind != SampleKind::Rejected)
            .count()
    );

    if let Some(s) = sink {
        s.flush()?;
    }
    Ok(Trace {
        method,
        mode,
        budgets,
        samples,
        total_time_s: clock.latest_secs(),
    })
}

/// The earliest-timeline free worker, lowest index on ties; `None` when
/// every worker is busy or blocked.
fn earliest_free(clock: &WorkerClock, busy: &[bool], blocked: &[bool]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for w in 0..clock.workers() {
        // in-bounds: both slices have workers() entries. analyze::allow(R15)
        if busy[w] || blocked[w] {
            continue;
        }
        best = match best {
            Some(b)
                if clock.seconds(w).total_cmp(&clock.seconds(b)) != std::cmp::Ordering::Less =>
            {
                Some(b)
            }
            _ => Some(w),
        };
    }
    best
}

/// Stringifies a panic payload (the `&str`/`String` payloads `panic!`
/// produces; anything else gets a fixed marker).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one evaluation with the worker boundary hardened: a panicking
/// objective becomes a typed [`Error::WorkerPanic`] carrying the proposal
/// index and payload, instead of tearing down the whole run with a raw
/// join failure.
fn evaluate_caught(
    objective: &dyn Objective,
    early: Option<&EarlyTermination>,
    decoded: &Decoded,
    query: u64,
    eval_seed: u64,
) -> Result<EvaluationResult> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        objective.evaluate(decoded, early, eval_seed)
    })) {
        Ok(result) => result,
        Err(payload) => Err(Error::WorkerPanic {
            query,
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Evaluates `tasks` (a `(query, decoded, eval_seed)` per candidate), using
/// up to `workers` scoped threads, and returns the results in task order.
///
/// Work is assigned round-robin and each result lands in its own slot, so
/// neither thread scheduling nor completion order can influence the output;
/// on failure the first error *in task order* is returned — including
/// panics, which are captured at the worker boundary as
/// [`Error::WorkerPanic`].
fn evaluate_parallel(
    objective: &dyn Objective,
    early: Option<&EarlyTermination>,
    tasks: &[(u64, &Decoded, u64)],
    workers: usize,
) -> Result<Vec<EvaluationResult>> {
    if tasks.len() <= 1 || workers <= 1 {
        let mut out = Vec::with_capacity(tasks.len());
        for (qu, decoded, eval_seed) in tasks {
            out.push(evaluate_caught(objective, early, decoded, *qu, *eval_seed)?);
        }
        return Ok(out);
    }

    let threads = workers.min(tasks.len());
    let mut slots: Vec<Option<Result<EvaluationResult>>> = Vec::with_capacity(tasks.len());
    slots.resize_with(tasks.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                let mut i = t;
                while i < tasks.len() {
                    let (qu, decoded, eval_seed) = tasks[i]; // bounded by the while condition. analyze::allow(R15)
                    mine.push((i, evaluate_caught(objective, early, decoded, qu, eval_seed)));
                    i += threads;
                }
                mine
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(pairs) => {
                    for (i, result) in pairs {
                        slots[i] = Some(result); // in-bounds: i indexes tasks, slots is same length. analyze::allow(R15)
                    }
                }
                // Objective panics are caught inside the worker; a join
                // failure can only come from the executor's own code.
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    let mut out = Vec::with_capacity(tasks.len());
    for slot in slots {
        let Some(result) = slot else {
            // Round-robin assignment fills every slot. analyze::allow(R15)
            unreachable!("round-robin assignment covers every task slot");
        };
        out.push(result?);
    }
    Ok(out)
}
