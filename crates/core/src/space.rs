//! Hyper-parameter search spaces and configuration en/decoding.
//!
//! The paper optimizes AlexNet variants with **six** (MNIST) and
//! **thirteen** (CIFAR-10) hyper-parameters: per convolution layer the
//! feature count (20–80) and kernel size (2–5), per pooling layer the
//! kernel size (1–3), fully connected widths (200–700), plus learning rate
//! (0.001–0.1), momentum (0.8–0.95) and weight decay (0.0001–0.01).
//!
//! Searchers operate on the **unit hypercube**: a [`Config`] is a vector in
//! `[0, 1]ᵈ` and the [`SearchSpace`] decodes it into a concrete
//! [`ArchSpec`] + [`TrainingHyper`] pair. The *structural* subset `z` of
//! the decoded values — everything that shapes the network, as opposed to
//! the training dynamics — is what the predictive power/memory models
//! consume (paper §3.3).

use hyperpower_nn::{ArchSpec, LayerSpec, TrainingHyper};
use rand::{Rng, RngExt};

use crate::{Error, Result};

/// One dimension of a search space.
#[derive(Debug, Clone, PartialEq)]
pub enum Dimension {
    /// An integer range `lo..=hi`, decoded by stratified rounding.
    Integer {
        /// Dimension name (for reports).
        name: &'static str,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Whether this dimension is structural (affects power/memory).
        structural: bool,
    },
    /// A log-uniform continuous range (e.g. learning rate).
    LogUniform {
        /// Dimension name (for reports).
        name: &'static str,
        /// Lower bound (positive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A uniform continuous range (e.g. momentum).
    Uniform {
        /// Dimension name (for reports).
        name: &'static str,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl Dimension {
    /// The dimension's name.
    pub fn name(&self) -> &'static str {
        match self {
            Dimension::Integer { name, .. }
            | Dimension::LogUniform { name, .. }
            | Dimension::Uniform { name, .. } => name,
        }
    }

    /// Whether the dimension is structural (enters the `z` vector).
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            Dimension::Integer {
                structural: true,
                ..
            }
        )
    }

    /// Decodes a unit-interval coordinate into the dimension's value.
    ///
    /// # Panics
    ///
    /// Debug-asserts `u ∈ [0, 1]`.
    pub fn decode(&self, u: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&u));
        match *self {
            Dimension::Integer { lo, hi, .. } => {
                let span = (hi - lo + 1) as f64;
                let v = lo + (u * span).floor() as i64;
                v.min(hi) as f64
            }
            Dimension::LogUniform { lo, hi, .. } => (lo.ln() + u * (hi.ln() - lo.ln())).exp(),
            Dimension::Uniform { lo, hi, .. } => lo + u * (hi - lo),
        }
    }

    fn validate(&self) -> Result<()> {
        let ok = match *self {
            Dimension::Integer { lo, hi, .. } => lo <= hi,
            Dimension::LogUniform { lo, hi, .. } => lo > 0.0 && lo < hi && hi.is_finite(),
            Dimension::Uniform { lo, hi, .. } => lo < hi && lo.is_finite() && hi.is_finite(),
        };
        if ok {
            Ok(())
        } else {
            Err(Error::InvalidSpace(format!(
                "dimension {} has an invalid range",
                self.name()
            )))
        }
    }
}

/// A point in the unit hypercube, i.e. an *encoded* hyper-parameter
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    unit: Vec<f64>,
}

impl Config {
    /// Wraps a unit-hypercube vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any component is outside
    /// `[0, 1]` or non-finite.
    pub fn new(unit: Vec<f64>) -> Result<Self> {
        if unit.iter().any(|u| !(0.0..=1.0).contains(u)) {
            return Err(Error::InvalidConfig("components must lie in [0, 1]".into()));
        }
        Ok(Config { unit })
    }

    /// Draws a uniform random configuration of dimension `d`.
    pub fn random(rng: &mut impl Rng, d: usize) -> Self {
        Config {
            unit: (0..d).map(|_| rng.random_range(0.0..1.0)).collect(),
        }
    }

    /// The unit-hypercube coordinates.
    pub fn unit(&self) -> &[f64] {
        &self.unit
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.unit.len()
    }

    /// A Gaussian perturbation of this configuration, clamped to the unit
    /// cube — the proposal rule of the paper's Rand-Walk method
    /// (`x_{n+1} ~ N(x⁺, σ₀²)`).
    pub fn gaussian_step(&self, sigma: f64, rng: &mut impl Rng) -> Config {
        let unit = self
            .unit
            .iter()
            .map(|u| {
                let n = {
                    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.random_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                };
                (u + sigma * n).clamp(0.0, 1.0)
            })
            .collect();
        Config { unit }
    }
}

/// A decoded configuration: the concrete network and training settings a
/// [`Config`] denotes, plus the raw decoded values.
#[derive(Debug, Clone)]
pub struct Decoded {
    /// The network architecture.
    pub arch: ArchSpec,
    /// The training hyper-parameters.
    pub hyper: TrainingHyper,
    /// All decoded dimension values, in space order.
    pub values: Vec<f64>,
    /// The structural sub-vector `z` (inputs to the power/memory models).
    pub structural: Vec<f64>,
}

/// Which network template a space decodes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Template {
    /// 1 conv + 1 pool + 1 FC on 28×28×1 (6 hyper-parameters).
    MnistAlexNet,
    /// 3×(conv+pool) + 1 FC on 32×32×3 (13 hyper-parameters).
    CifarAlexNet,
}

/// A named hyper-parameter search space bound to a network template.
///
/// # Examples
///
/// ```
/// use hyperpower::{Config, SearchSpace};
///
/// # fn main() -> Result<(), hyperpower::Error> {
/// let space = SearchSpace::mnist();
/// assert_eq!(space.dim(), 6);
/// let config = Config::new(vec![0.5; 6])?;
/// let decoded = space.decode(&config)?;
/// assert_eq!(decoded.arch.input_shape(), (1, 28, 28));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SearchSpace {
    name: String,
    template: Template,
    dims: Vec<Dimension>,
    fixed_weight_decay: Option<f64>,
}

impl SearchSpace {
    /// The paper's 6-dimensional MNIST space: one conv block and one FC
    /// layer (weight decay fixed at 5·10⁻⁴).
    pub fn mnist() -> Self {
        SearchSpace {
            name: "mnist".into(),
            template: Template::MnistAlexNet,
            dims: vec![
                Dimension::Integer {
                    name: "conv1_features",
                    lo: 20,
                    hi: 80,
                    structural: true,
                },
                Dimension::Integer {
                    name: "conv1_kernel",
                    lo: 2,
                    hi: 5,
                    structural: true,
                },
                Dimension::Integer {
                    name: "pool1_kernel",
                    lo: 1,
                    hi: 3,
                    structural: true,
                },
                Dimension::Integer {
                    name: "fc1_units",
                    lo: 200,
                    hi: 700,
                    structural: true,
                },
                Dimension::LogUniform {
                    name: "learning_rate",
                    lo: 1e-3,
                    hi: 0.1,
                },
                Dimension::Uniform {
                    name: "momentum",
                    lo: 0.8,
                    hi: 0.95,
                },
            ],
            fixed_weight_decay: Some(5e-4),
        }
    }

    /// The paper's 13-dimensional CIFAR-10 space: three conv blocks, one FC
    /// layer and all three training hyper-parameters.
    pub fn cifar10() -> Self {
        SearchSpace {
            name: "cifar10".into(),
            template: Template::CifarAlexNet,
            dims: vec![
                Dimension::Integer {
                    name: "conv1_features",
                    lo: 20,
                    hi: 80,
                    structural: true,
                },
                Dimension::Integer {
                    name: "conv1_kernel",
                    lo: 2,
                    hi: 5,
                    structural: true,
                },
                Dimension::Integer {
                    name: "pool1_kernel",
                    lo: 1,
                    hi: 3,
                    structural: true,
                },
                Dimension::Integer {
                    name: "conv2_features",
                    lo: 20,
                    hi: 80,
                    structural: true,
                },
                Dimension::Integer {
                    name: "conv2_kernel",
                    lo: 2,
                    hi: 5,
                    structural: true,
                },
                Dimension::Integer {
                    name: "pool2_kernel",
                    lo: 1,
                    hi: 3,
                    structural: true,
                },
                Dimension::Integer {
                    name: "conv3_features",
                    lo: 20,
                    hi: 80,
                    structural: true,
                },
                Dimension::Integer {
                    name: "conv3_kernel",
                    lo: 2,
                    hi: 5,
                    structural: true,
                },
                Dimension::Integer {
                    name: "pool3_kernel",
                    lo: 1,
                    hi: 3,
                    structural: true,
                },
                Dimension::Integer {
                    name: "fc1_units",
                    lo: 200,
                    hi: 700,
                    structural: true,
                },
                Dimension::LogUniform {
                    name: "learning_rate",
                    lo: 1e-3,
                    hi: 0.1,
                },
                Dimension::Uniform {
                    name: "momentum",
                    lo: 0.8,
                    hi: 0.95,
                },
                Dimension::LogUniform {
                    name: "weight_decay",
                    lo: 1e-4,
                    hi: 1e-2,
                },
            ],
            fixed_weight_decay: None,
        }
    }

    /// Space name (`"mnist"` or `"cifar10"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensionality of the unit hypercube.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// The dimensions, in decode order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dims
    }

    /// Number of structural dimensions (length of `z`).
    pub fn structural_dim(&self) -> usize {
        self.dims.iter().filter(|d| d.is_structural()).count()
    }

    /// Validates the space definition. Called by the built-in constructors'
    /// tests; public so downstream spaces can self-check.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpace`] for empty spaces or bad ranges.
    pub fn validate(&self) -> Result<()> {
        if self.dims.is_empty() {
            return Err(Error::InvalidSpace("no dimensions".into()));
        }
        for d in &self.dims {
            d.validate()?;
        }
        Ok(())
    }

    /// Decodes a configuration into a concrete architecture and training
    /// hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on dimension mismatch; architecture
    /// assembly errors are impossible for in-range values of the built-in
    /// templates but are propagated defensively.
    pub fn decode(&self, config: &Config) -> Result<Decoded> {
        if config.dim() != self.dim() {
            return Err(Error::InvalidConfig(format!(
                "expected {} dimensions, got {}",
                self.dim(),
                config.dim()
            )));
        }
        let values: Vec<f64> = self
            .dims
            .iter()
            .zip(config.unit())
            .map(|(d, u)| d.decode(*u))
            .collect();
        let structural: Vec<f64> = self
            .dims
            .iter()
            .zip(&values)
            .filter(|(d, _)| d.is_structural())
            .map(|(_, v)| *v)
            .collect();

        let v = |name: &str| -> f64 {
            self.dims
                .iter()
                .position(|d| d.name() == name)
                .map(|i| values[i])
                .unwrap_or_else(|| panic!("template references unknown dimension {name}"))
        };

        let (arch, weight_decay) = match self.template {
            Template::MnistAlexNet => {
                let arch = ArchSpec::new(
                    (1, 28, 28),
                    10,
                    vec![
                        LayerSpec::conv(v("conv1_features") as usize, v("conv1_kernel") as usize),
                        LayerSpec::pool(v("pool1_kernel") as usize),
                        LayerSpec::dense(v("fc1_units") as usize),
                    ],
                )?;
                (arch, self.fixed_weight_decay.unwrap_or(5e-4))
            }
            Template::CifarAlexNet => {
                let arch = ArchSpec::new(
                    (3, 32, 32),
                    10,
                    vec![
                        LayerSpec::conv(v("conv1_features") as usize, v("conv1_kernel") as usize),
                        LayerSpec::pool(v("pool1_kernel") as usize),
                        LayerSpec::conv(v("conv2_features") as usize, v("conv2_kernel") as usize),
                        LayerSpec::pool(v("pool2_kernel") as usize),
                        LayerSpec::conv(v("conv3_features") as usize, v("conv3_kernel") as usize),
                        LayerSpec::pool(v("pool3_kernel") as usize),
                        LayerSpec::dense(v("fc1_units") as usize),
                    ],
                )?;
                (arch, v("weight_decay"))
            }
        };
        let hyper = TrainingHyper::new(v("learning_rate"), v("momentum"), weight_decay)?;
        Ok(Decoded {
            arch,
            hyper,
            values,
            structural,
        })
    }

    /// Extracts the structural sub-vector `z` without building the network.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on dimension mismatch.
    pub fn structural_values(&self, config: &Config) -> Result<Vec<f64>> {
        if config.dim() != self.dim() {
            return Err(Error::InvalidConfig(format!(
                "expected {} dimensions, got {}",
                self.dim(),
                config.dim()
            )));
        }
        Ok(self
            .dims
            .iter()
            .zip(config.unit())
            .filter(|(d, _)| d.is_structural())
            .map(|(d, u)| d.decode(*u))
            .collect())
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_dimensionalities() {
        assert_eq!(SearchSpace::mnist().dim(), 6);
        assert_eq!(SearchSpace::cifar10().dim(), 13);
        SearchSpace::mnist().validate().unwrap();
        SearchSpace::cifar10().validate().unwrap();
    }

    #[test]
    fn structural_subset_excludes_training_dims() {
        let mnist = SearchSpace::mnist();
        assert_eq!(mnist.structural_dim(), 4);
        let cifar = SearchSpace::cifar10();
        assert_eq!(cifar.structural_dim(), 10);
    }

    #[test]
    fn integer_decode_covers_range_uniformly() {
        let d = Dimension::Integer {
            name: "k",
            lo: 2,
            hi: 5,
            structural: true,
        };
        assert_eq!(d.decode(0.0), 2.0);
        assert_eq!(d.decode(0.24), 2.0);
        assert_eq!(d.decode(0.26), 3.0);
        assert_eq!(d.decode(0.99), 5.0);
        assert_eq!(d.decode(1.0), 5.0); // clamped at the top
    }

    #[test]
    fn log_uniform_decode_endpoints() {
        let d = Dimension::LogUniform {
            name: "lr",
            lo: 1e-3,
            hi: 0.1,
        };
        assert!((d.decode(0.0) - 1e-3).abs() < 1e-12);
        assert!((d.decode(1.0) - 0.1).abs() < 1e-12);
        // Midpoint in log space is the geometric mean.
        assert!((d.decode(0.5) - 0.01).abs() < 1e-10);
    }

    #[test]
    fn uniform_decode_endpoints() {
        let d = Dimension::Uniform {
            name: "m",
            lo: 0.8,
            hi: 0.95,
        };
        assert_eq!(d.decode(0.0), 0.8);
        assert!((d.decode(1.0) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn all_corner_configs_decode_to_valid_networks() {
        // Every corner of the hypercube must produce a valid architecture
        // (the pool cascade must never shrink feature maps below 1x1).
        for space in [SearchSpace::mnist(), SearchSpace::cifar10()] {
            for corner in [0.0, 1.0] {
                let config = Config::new(vec![corner; space.dim()]).unwrap();
                let decoded = space.decode(&config).unwrap();
                assert!(decoded.arch.param_count() > 0);
            }
        }
    }

    #[test]
    fn random_configs_decode_to_valid_networks() {
        let mut rng = StdRng::seed_from_u64(5);
        for space in [SearchSpace::mnist(), SearchSpace::cifar10()] {
            for _ in 0..200 {
                let config = Config::random(&mut rng, space.dim());
                let decoded = space.decode(&config).unwrap();
                assert_eq!(decoded.values.len(), space.dim());
                assert_eq!(decoded.structural.len(), space.structural_dim());
                let lr = decoded.hyper.learning_rate();
                assert!((1e-3..=0.1).contains(&lr));
            }
        }
    }

    #[test]
    fn structural_values_match_decode() {
        let space = SearchSpace::cifar10();
        let mut rng = StdRng::seed_from_u64(6);
        let config = Config::random(&mut rng, space.dim());
        let decoded = space.decode(&config).unwrap();
        assert_eq!(
            space.structural_values(&config).unwrap(),
            decoded.structural
        );
    }

    #[test]
    fn config_validation() {
        assert!(Config::new(vec![0.0, 0.5, 1.0]).is_ok());
        assert!(Config::new(vec![-0.1]).is_err());
        assert!(Config::new(vec![1.1]).is_err());
        assert!(Config::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let space = SearchSpace::mnist();
        let config = Config::new(vec![0.5; 3]).unwrap();
        assert!(space.decode(&config).is_err());
        assert!(space.structural_values(&config).is_err());
    }

    #[test]
    fn gaussian_step_stays_in_cube() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = Config::new(vec![0.05, 0.95, 0.5]).unwrap();
        for _ in 0..100 {
            let step = base.gaussian_step(0.3, &mut rng);
            assert!(step.unit().iter().all(|u| (0.0..=1.0).contains(u)));
        }
    }

    #[test]
    fn gaussian_step_is_local_for_small_sigma() {
        let mut rng = StdRng::seed_from_u64(8);
        let base = Config::new(vec![0.5; 5]).unwrap();
        let step = base.gaussian_step(0.01, &mut rng);
        for (a, b) in base.unit().iter().zip(step.unit()) {
            assert!((a - b).abs() < 0.1);
        }
    }

    #[test]
    fn bad_dimension_ranges_rejected() {
        let d = Dimension::Integer {
            name: "bad",
            lo: 5,
            hi: 2,
            structural: false,
        };
        assert!(d.validate().is_err());
        let d = Dimension::LogUniform {
            name: "bad",
            lo: 0.0,
            hi: 1.0,
        };
        assert!(d.validate().is_err());
        let d = Dimension::Uniform {
            name: "bad",
            lo: 1.0,
            hi: 1.0,
        };
        assert!(d.validate().is_err());
    }

    #[test]
    fn cifar_max_pooling_cascade_valid() {
        // pool kernels 3,3,3: 32 -> 10 -> 3 -> 1.
        let space = SearchSpace::cifar10();
        let mut unit = vec![0.5; 13];
        unit[2] = 0.99; // pool1 = 3
        unit[5] = 0.99; // pool2 = 3
        unit[8] = 0.99; // pool3 = 3
        let config = Config::new(unit).unwrap();
        let decoded = space.decode(&config).unwrap();
        let walk = decoded.arch.shape_walk();
        let last_pool = walk.iter().rev().find(|l| l.kind == "pool").unwrap();
        assert_eq!(last_pool.output.1, 1);
    }
}
