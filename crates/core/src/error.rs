use std::fmt;

/// Errors produced by the HyperPower framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A search-space definition is invalid (empty, or a dimension with an
    /// empty/reversed range).
    InvalidSpace(String),
    /// A configuration vector has the wrong dimensionality or components
    /// outside `[0, 1]`.
    InvalidConfig(String),
    /// Model fitting requires profiling data that was not supplied (e.g. a
    /// memory model on a platform without memory measurements).
    MissingProfilingData(&'static str),
    /// Not enough profiled samples to fit/cross-validate a model.
    NotEnoughSamples {
        /// Samples required.
        required: usize,
        /// Samples available.
        available: usize,
    },
    /// A worker thread panicked while evaluating a candidate. The panic
    /// payload is captured instead of poisoning the whole run.
    WorkerPanic {
        /// Proposal index (trace query) of the candidate being evaluated.
        query: u64,
        /// Stringified panic payload.
        message: String,
    },
    /// A `tell` referenced a lease this study never issued.
    UnknownLease {
        /// The unrecognized lease identifier.
        lease_id: u64,
    },
    /// A `tell` arrived for a lease that was already reclaimed after its
    /// deadline passed; the observation is rejected and study state is
    /// untouched (the re-issued lease's tell will carry the result).
    LeaseExpired {
        /// The expired lease identifier.
        lease_id: u64,
        /// Trace slot of the proposal the lease covered.
        query: u64,
    },
    /// A resume checkpoint does not match the requested run (different
    /// seed, method, mode, budget, fault profile, or corrupted file).
    ResumeMismatch(String),
    /// Writing or reading a run checkpoint failed.
    Checkpoint(String),
    /// An underlying numerical routine failed.
    Numerical(hyperpower_linalg::Error),
    /// Gaussian-process fitting failed.
    Gp(hyperpower_gp::Error),
    /// Network construction or training failed.
    Nn(hyperpower_nn::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidSpace(msg) => write!(f, "invalid search space: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::MissingProfilingData(what) => {
                write!(f, "missing profiling data for {what}")
            }
            Error::NotEnoughSamples {
                required,
                available,
            } => write!(
                f,
                "not enough profiled samples: need {required}, have {available}"
            ),
            Error::WorkerPanic { query, message } => {
                write!(f, "worker panicked evaluating proposal {query}: {message}")
            }
            Error::UnknownLease { lease_id } => {
                write!(f, "unknown lease {lease_id}: this study never issued it")
            }
            Error::LeaseExpired { lease_id, query } => {
                write!(
                    f,
                    "lease {lease_id} for proposal {query} expired and was reclaimed"
                )
            }
            Error::ResumeMismatch(msg) => write!(f, "resume checkpoint mismatch: {msg}"),
            Error::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
            Error::Numerical(e) => write!(f, "numerical failure: {e}"),
            Error::Gp(e) => write!(f, "gaussian-process failure: {e}"),
            Error::Nn(e) => write!(f, "network failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numerical(e) => Some(e),
            Error::Gp(e) => Some(e),
            Error::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hyperpower_linalg::Error> for Error {
    fn from(e: hyperpower_linalg::Error) -> Self {
        Error::Numerical(e)
    }
}

impl From<hyperpower_gp::Error> for Error {
    fn from(e: hyperpower_gp::Error) -> Self {
        Error::Gp(e)
    }
}

impl From<hyperpower_nn::Error> for Error {
    fn from(e: hyperpower_nn::Error) -> Self {
        Error::Nn(e)
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_nonempty() {
        let e = Error::NotEnoughSamples {
            required: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn sources_chain() {
        let e = Error::from(hyperpower_linalg::Error::NonFiniteInput);
        assert!(e.source().is_some());
        let e = Error::InvalidSpace("x".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
