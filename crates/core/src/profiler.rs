//! Offline random profiling of the hyper-parameter space (paper §3.3).
//!
//! Before any optimization runs, HyperPower samples `L` random
//! configurations, measures each one's inference power `Pₗ` and memory
//! `Mₗ` on the target platform, and fits the predictive models on
//! `{(zₗ, Pₗ, Mₗ)}`. The crucial property (paper §3.2, Fig. 3 left): these
//! measurements do **not** require trained networks — power and memory are
//! invariant to weight values — so profiling costs seconds per sample, not
//! training hours.

use hyperpower_gp::sampler::latin_hypercube;
use hyperpower_gpu_sim::{Gpu, TrainingCostModel, VirtualClock};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::model::{FeatureMap, LinearHwModel};
use crate::{Config, Error, HwModels, Result, SearchSpace};

/// The raw profiling dataset `{(zₗ, Pₗ, Mₗ)}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledData {
    /// Structural vectors, one per profiled configuration.
    pub z: Vec<Vec<f64>>,
    /// Measured power in watts.
    pub power_w: Vec<f64>,
    /// Measured memory in bytes, or `None` on platforms without a memory
    /// API (Tegra TX1).
    pub memory_bytes: Option<Vec<f64>>,
    /// Measured inference latency in seconds per example (extension: the
    /// paper profiles power/memory only).
    pub latency_s: Vec<f64>,
}

impl ProfiledData {
    /// Number of profiled configurations.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Returns `true` if no configurations were profiled.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }
}

/// Profiles random configurations on a (simulated) GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profiler {
    samples: usize,
}

impl Profiler {
    /// A profiler that will measure `samples` configurations (the
    /// experiments use `L = 100`).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn new(samples: usize) -> Self {
        assert!(samples > 0, "need at least one profiling sample");
        Profiler { samples }
    }

    /// Draws a Latin-hypercube sample of the space and measures each point
    /// on `gpu`, advancing `clock` by the measurement cost.
    ///
    /// Deterministic for a given `(space, gpu seed, profiler seed)`.
    ///
    /// # Errors
    ///
    /// Propagates decode errors (impossible for the built-in spaces).
    pub fn profile(
        &self,
        space: &SearchSpace,
        gpu: &mut Gpu,
        clock: &mut VirtualClock,
        cost: &TrainingCostModel,
        seed: u64,
    ) -> Result<ProfiledData> {
        let mut rng = StdRng::seed_from_u64(seed);
        let grid = latin_hypercube(&mut rng, self.samples, space.dim());
        let supports_memory = gpu.device().supports_memory_measurement;

        let mut z = Vec::with_capacity(self.samples);
        let mut power = Vec::with_capacity(self.samples);
        let mut latency = Vec::with_capacity(self.samples);
        let mut memory = if supports_memory {
            Some(Vec::with_capacity(self.samples))
        } else {
            None
        };

        for i in 0..grid.rows() {
            let config = Config::new(grid.row(i).to_vec())?;
            let decoded = space.decode(&config)?;
            // The regression targets stay raw (suffixed) magnitudes: the
            // linear models fit watts/bytes/seconds directly, and the typed
            // wrappers come back at the prediction boundary (`HwModels`).
            power.push(gpu.measure_power(&decoded.arch).get());
            latency.push(gpu.measure_latency(&decoded.arch).get());
            if let Some(mem) = memory.as_mut() {
                // `supports_memory` was checked when `memory` was created,
                // so a measurement refusal here cannot occur; skipping the
                // sample keeps the profiler panic-free regardless.
                if let Ok(m) = gpu.measure_memory(&decoded.arch) {
                    mem.push(m.as_bytes());
                }
            }
            z.push(decoded.structural);
            clock.advance_secs(cost.measurement_s);
        }

        Ok(ProfiledData {
            z,
            power_w: power,
            memory_bytes: memory,
            latency_s: latency,
        })
    }
}

/// Fits the power (and, where measured, memory) models on profiling data
/// with `k`-fold cross-validation.
///
/// # Errors
///
/// Propagates fitting errors ([`Error::NotEnoughSamples`] for undersized
/// profiling runs).
pub fn fit_models(data: &ProfiledData, k: usize, feature_map: FeatureMap) -> Result<HwModels> {
    if data.is_empty() {
        return Err(Error::MissingProfilingData("power"));
    }
    let power = LinearHwModel::fit_kfold(&data.z, &data.power_w, k, feature_map)?;
    let memory = match &data.memory_bytes {
        Some(m) => Some(LinearHwModel::fit_kfold(&data.z, m, k, feature_map)?),
        None => None,
    };
    // Latency spans orders of magnitude across the space; fit it on the
    // log scale (predictions are exponentiated, staying near-free).
    let latency = if data.latency_s.is_empty() {
        None
    } else {
        Some(LinearHwModel::fit_kfold_transformed(
            &data.z,
            &data.latency_s,
            k,
            feature_map,
            crate::model::TargetTransform::Log,
        )?)
    };
    Ok(HwModels {
        power,
        memory,
        latency,
    })
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use hyperpower_gpu_sim::DeviceProfile;

    fn profile_pair(
        space: &SearchSpace,
        device: DeviceProfile,
        n: usize,
    ) -> (ProfiledData, VirtualClock) {
        let mut gpu = Gpu::new(device, 11);
        let mut clock = VirtualClock::new();
        let cost = TrainingCostModel::default();
        let data = Profiler::new(n)
            .profile(space, &mut gpu, &mut clock, &cost, 22)
            .unwrap();
        (data, clock)
    }

    #[test]
    fn profiling_collects_l_samples_and_costs_time() {
        let (data, clock) = profile_pair(&SearchSpace::mnist(), DeviceProfile::gtx_1070(), 50);
        assert_eq!(data.len(), 50);
        assert!(data.memory_bytes.is_some());
        assert_eq!(data.z[0].len(), SearchSpace::mnist().structural_dim());
        // 50 measurements at 10 s each.
        assert!((clock.seconds() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn tegra_has_no_memory_column() {
        let (data, _) = profile_pair(&SearchSpace::cifar10(), DeviceProfile::tegra_tx1(), 40);
        assert!(data.memory_bytes.is_none());
        assert_eq!(data.power_w.len(), 40);
    }

    #[test]
    fn fitted_power_model_rmspe_in_paper_range() {
        // The paper reports RMSPE < 7% for all pairs (Table 1).
        for (space, device) in [
            (SearchSpace::mnist(), DeviceProfile::gtx_1070()),
            (SearchSpace::cifar10(), DeviceProfile::gtx_1070()),
            (SearchSpace::mnist(), DeviceProfile::tegra_tx1()),
            (SearchSpace::cifar10(), DeviceProfile::tegra_tx1()),
        ] {
            let (data, _) = profile_pair(&space, device.clone(), 100);
            let models = fit_models(&data, 10, FeatureMap::Linear).unwrap();
            let rmspe = models.power.cv_rmspe();
            assert!(
                rmspe < 0.10,
                "{} on {}: power RMSPE {:.1}% too high",
                space.name(),
                device.name,
                rmspe * 100.0
            );
        }
    }

    #[test]
    fn fitted_memory_model_rmspe_small() {
        for space in [SearchSpace::mnist(), SearchSpace::cifar10()] {
            let (data, _) = profile_pair(&space, DeviceProfile::gtx_1070(), 100);
            let models = fit_models(&data, 10, FeatureMap::Linear).unwrap();
            let mem = models.memory.expect("GTX measures memory");
            assert!(
                mem.cv_rmspe() < 0.10,
                "{}: memory RMSPE {:.1}%",
                space.name(),
                mem.cv_rmspe() * 100.0
            );
        }
    }

    #[test]
    fn model_predictions_track_measurements() {
        let (data, _) = profile_pair(&SearchSpace::cifar10(), DeviceProfile::gtx_1070(), 100);
        let models = fit_models(&data, 10, FeatureMap::Linear).unwrap();
        // On the training data itself, predictions should correlate: mean
        // absolute percentage deviation well under 20%.
        let mut total = 0.0;
        for (z, p) in data.z.iter().zip(&data.power_w) {
            total += ((models.predict_power(z).get() - p) / p).abs();
        }
        assert!((total / data.len() as f64) < 0.1);
    }

    #[test]
    fn deterministic_profiling() {
        let (a, _) = profile_pair(&SearchSpace::mnist(), DeviceProfile::gtx_1070(), 30);
        let (b, _) = profile_pair(&SearchSpace::mnist(), DeviceProfile::gtx_1070(), 30);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_data_rejected() {
        let empty = ProfiledData {
            z: vec![],
            power_w: vec![],
            memory_bytes: None,
            latency_s: vec![],
        };
        assert!(fit_models(&empty, 10, FeatureMap::Linear).is_err());
        assert!(empty.is_empty());
    }
}
