//! Content integrity: the CRC32 (IEEE 802.3) checksum that frames every
//! durable record the workspace writes.
//!
//! The durability layers (the study journal and the checkpoint/snapshot
//! codec) prepend a checksum frame to every record so that *bit-rot* —
//! silent corruption of bytes at rest, as opposed to the torn-tail and
//! stale-tmp windows a crash leaves — is detected on read instead of
//! being replayed into a study. The polynomial is the reflected IEEE one
//! (`0xEDB88320`), computed byte-wise over a 256-entry table baked in at
//! compile time; no external dependency and no `unsafe`.
//!
//! Frames render the checksum as exactly eight lowercase hex digits
//! ([`crc32_hex`]) so framed lines stay single-line, fixed-width, and
//! greppable.

/// The reflected IEEE polynomial used by zlib, PNG, and Ethernet.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// The CRC32 (IEEE) checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

/// The checksum of `bytes` as the canonical eight-digit lowercase hex
/// frame token.
pub fn crc32_hex(bytes: &[u8]) -> String {
    format!("{:08x}", crc32(bytes))
}

/// Parses an eight-digit lowercase hex frame token back to its checksum.
/// Returns `None` for anything that is not exactly the canonical form —
/// framing is detected syntactically, so near-misses must not parse.
pub fn parse_crc32_hex(token: &str) -> Option<u32> {
    if token.len() != 8
        || !token
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u32::from_str_radix(token, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_check_value() {
        // The standard check vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn hex_roundtrip_is_canonical() {
        let hex = crc32_hex(b"hyperpower");
        assert_eq!(hex.len(), 8);
        assert_eq!(parse_crc32_hex(&hex), Some(crc32(b"hyperpower")));
        // Uppercase, short, long and non-hex tokens are all rejected.
        assert_eq!(parse_crc32_hex("CBF43926"), None);
        assert_eq!(parse_crc32_hex("cbf4392"), None);
        assert_eq!(parse_crc32_hex("cbf439261"), None);
        assert_eq!(parse_crc32_hex("cbf4392g"), None);
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let payload = b"{\"index\": 3, \"error\": 0.125}".to_vec();
        let reference = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut rotted = payload.clone();
                rotted[byte] ^= 1 << bit;
                assert_ne!(crc32(&rotted), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
