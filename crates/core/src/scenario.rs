//! The paper's four device–dataset scenarios and the end-to-end session.
//!
//! A [`Scenario`] bundles a platform, a search space, a dataset regime and
//! the published budgets (paper §5):
//!
//! | Pair | Power | Memory | Time budget |
//! |---|---|---|---|
//! | MNIST / GTX 1070 | 85 W | 1.15 GiB | 2 h |
//! | CIFAR-10 / GTX 1070 | 90 W | 1.25 GiB | 5 h |
//! | MNIST / Tegra TX1 | 10 W | — (no API) | 2 h |
//! | CIFAR-10 / Tegra TX1 | 12 W | — (no API) | 5 h |
//!
//! A [`Session`] performs the offline phase once — profile `L = 100`
//! random configurations, fit the power/memory models with 10-fold CV —
//! and then runs any number of `(method, mode, budget)` searches against
//! the same fitted models, as the paper's experiments do.

use hyperpower_gp::sampler::latin_hypercube;
use hyperpower_gpu_sim::{DeviceProfile, Gpu, TrainingCostModel, VirtualClock};
use hyperpower_nn::sim::{DatasetProfile, TrainingSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::driver::{run_optimization, Budget, RunSetup, Trace};
use crate::executor::{run_optimization_with, ExecutorOptions};
use crate::model::FeatureMap;
use crate::objective::SimulatedObjective;
use crate::profiler::{fit_models, Profiler};
use crate::{
    Budgets, Config, ConstraintOracle, EarlyTermination, HwModels, Mebibytes, Method, Mode, Result,
    SearchSpace, Watts,
};

/// One of the paper's device–dataset experiment settings.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name, e.g. `"cifar10-gtx1070"`.
    pub name: String,
    /// The target platform.
    pub device: DeviceProfile,
    /// The hyper-parameter search space.
    pub space: SearchSpace,
    /// The dataset regime for the training simulator (capacity anchors are
    /// calibrated to the space, see [`Scenario::calibrated_profile`]).
    pub dataset: DatasetProfile,
    /// Power/memory budgets.
    pub budgets: Budgets,
    /// The paper's wall-clock budget for this pair, in hours.
    pub time_budget_hours: f64,
    /// Virtual training-set size (drives training cost).
    pub train_examples: usize,
    /// Offline profiling samples `L`.
    pub profiling_samples: usize,
}

impl Scenario {
    /// MNIST on GTX 1070: 85 W, 1.15 GiB, 2 h.
    pub fn mnist_gtx1070() -> Self {
        let space = SearchSpace::mnist();
        let dataset = Self::calibrated_profile(DatasetProfile::mnist(), &space);
        Scenario {
            name: "mnist-gtx1070".into(),
            device: DeviceProfile::gtx_1070(),
            space,
            dataset,
            budgets: Budgets::power_and_memory(Watts(85.0), Mebibytes::from_gib(1.15)),
            time_budget_hours: 2.0,
            train_examples: 60_000,
            profiling_samples: 100,
        }
    }

    /// CIFAR-10 on GTX 1070: 90 W, 1.25 GiB, 5 h.
    pub fn cifar10_gtx1070() -> Self {
        let space = SearchSpace::cifar10();
        let dataset = Self::calibrated_profile(DatasetProfile::cifar10(), &space);
        Scenario {
            name: "cifar10-gtx1070".into(),
            device: DeviceProfile::gtx_1070(),
            space,
            dataset,
            budgets: Budgets::power_and_memory(Watts(90.0), Mebibytes::from_gib(1.25)),
            time_budget_hours: 5.0,
            train_examples: 50_000,
            profiling_samples: 100,
        }
    }

    /// MNIST on Tegra TX1: 10 W, no memory constraint (no API), 2 h.
    pub fn mnist_tegra_tx1() -> Self {
        let space = SearchSpace::mnist();
        let dataset = Self::calibrated_profile(DatasetProfile::mnist(), &space);
        Scenario {
            name: "mnist-tegra-tx1".into(),
            device: DeviceProfile::tegra_tx1(),
            space,
            dataset,
            budgets: Budgets::power(Watts(10.0)),
            time_budget_hours: 2.0,
            train_examples: 60_000,
            profiling_samples: 100,
        }
    }

    /// CIFAR-10 on Tegra TX1: 12 W, no memory constraint (no API), 5 h.
    pub fn cifar10_tegra_tx1() -> Self {
        let space = SearchSpace::cifar10();
        let dataset = Self::calibrated_profile(DatasetProfile::cifar10(), &space);
        Scenario {
            name: "cifar10-tegra-tx1".into(),
            device: DeviceProfile::tegra_tx1(),
            space,
            dataset,
            budgets: Budgets::power(Watts(12.0)),
            time_budget_hours: 5.0,
            train_examples: 50_000,
            profiling_samples: 100,
        }
    }

    /// All four pairs in the paper's table order.
    pub fn all_pairs() -> Vec<Scenario> {
        vec![
            Scenario::mnist_gtx1070(),
            Scenario::cifar10_gtx1070(),
            Scenario::mnist_tegra_tx1(),
            Scenario::cifar10_tegra_tx1(),
        ]
    }

    /// Anchors the dataset profile's capacity normalisation to the actual
    /// FLOP extremes of the search space (measured over a deterministic
    /// Latin-hypercube sample).
    pub fn calibrated_profile(base: DatasetProfile, space: &SearchSpace) -> DatasetProfile {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        let grid = latin_hypercube(&mut rng, 256, space.dim());
        let mut f_lo = f64::INFINITY;
        let mut f_hi = f64::NEG_INFINITY;
        let mut p_lo = f64::INFINITY;
        let mut p_hi = f64::NEG_INFINITY;
        for i in 0..grid.rows() {
            // Latin-hypercube rows are unit samples and built-in spaces
            // always decode; skip (rather than panic on) any exception so
            // calibration degrades gracefully.
            let Ok(config) = Config::new(grid.row(i).to_vec()) else {
                continue;
            };
            let Ok(decoded) = space.decode(&config) else {
                continue;
            };
            let lg_f = (decoded.arch.flops_per_example().max(1) as f64).log10();
            f_lo = f_lo.min(lg_f);
            f_hi = f_hi.max(lg_f);
            let lg_p = (decoded.arch.param_count().max(1) as f64).log10();
            p_lo = p_lo.min(lg_p);
            p_hi = p_hi.max(lg_p);
        }
        base.with_capacity_range(f_lo, f_hi)
            .with_param_range(p_lo, p_hi)
    }
}

/// An end-to-end HyperPower session: offline profiling + model fitting,
/// then repeated optimization runs.
///
/// See the crate-level quickstart for an example.
#[derive(Debug)]
pub struct Session {
    scenario: Scenario,
    models: HwModels,
    oracle: ConstraintOracle,
    profiling_secs: f64,
    seed: u64,
    runs_started: u64,
}

impl Session {
    /// Creates a session: profiles `L` random configurations on the
    /// scenario's platform and fits the predictive models with 10-fold
    /// cross-validation.
    ///
    /// # Errors
    ///
    /// Propagates profiling/fitting failures (e.g. undersized `L`).
    pub fn new(scenario: Scenario, seed: u64) -> Result<Self> {
        let mut gpu = Gpu::new(scenario.device.clone(), seed);
        let mut clock = VirtualClock::new();
        let cost = TrainingCostModel::default();
        let data = Profiler::new(scenario.profiling_samples).profile(
            &scenario.space,
            &mut gpu,
            &mut clock,
            &cost,
            seed ^ 0x50_50,
        )?;
        let models = fit_models(&data, 10, FeatureMap::Linear)?;
        let oracle = ConstraintOracle::new(models.clone(), scenario.budgets);
        Ok(Session {
            scenario,
            models,
            oracle,
            profiling_secs: clock.seconds(),
            seed,
            runs_started: 0,
        })
    }

    /// The scenario this session is bound to.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The fitted predictive models.
    pub fn models(&self) -> &HwModels {
        &self.models
    }

    /// The constraint oracle (models + budgets).
    pub fn oracle(&self) -> &ConstraintOracle {
        &self.oracle
    }

    /// Virtual time the offline profiling phase took, in seconds. (The
    /// paper treats profiling as offline and does not bill it to the
    /// optimization budget; neither do we.)
    pub fn profiling_secs(&self) -> f64 {
        self.profiling_secs
    }

    /// Runs one optimization with an automatically advanced run seed.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn run(&mut self, method: Method, mode: Mode, budget: Budget) -> Result<Trace> {
        self.runs_started += 1;
        let run_seed = self
            .seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(self.runs_started);
        self.run_seeded(method, mode, budget, run_seed)
    }

    /// Runs one optimization with an explicit run seed (used by the
    /// benchmark harnesses for paired Default/HyperPower runs).
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn run_seeded(
        &mut self,
        method: Method,
        mode: Mode,
        budget: Budget,
        run_seed: u64,
    ) -> Result<Trace> {
        let (models, early) = match mode {
            Mode::Default => (false, false),
            Mode::HyperPower => (true, true),
        };
        self.run_ablation(method, models, early, budget, run_seed)
    }

    /// Like [`Session::run_seeded`], with explicit [`ExecutorOptions`]
    /// (worker threads and simulated-GPU count). The trace does not depend
    /// on `options.workers`; it does depend on `options.simulated_gpus`.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn run_seeded_with(
        &mut self,
        method: Method,
        mode: Mode,
        budget: Budget,
        run_seed: u64,
        options: &ExecutorOptions,
    ) -> Result<Trace> {
        let (models, early) = match mode {
            Mode::Default => (false, false),
            Mode::HyperPower => (true, true),
        };
        self.run_ablation_with(method, models, early, budget, run_seed, options)
    }

    /// Runs one optimization with a custom proposal strategy (e.g. an
    /// alternative acquisition function or grid search), in HyperPower
    /// mode with the session's oracle and early termination.
    ///
    /// The trace's `method`/`mode` labels are taken from `label_method`.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn run_with_searcher(
        &mut self,
        searcher: Box<dyn crate::methods::Searcher>,
        label_method: Method,
        budget: Budget,
        run_seed: u64,
    ) -> Result<Trace> {
        let cost = TrainingCostModel::default();
        let sim = TrainingSimulator::new(self.scenario.dataset.clone());
        let objective = SimulatedObjective::new(sim, cost, self.scenario.train_examples);
        let mut gpu = Gpu::new(self.scenario.device.clone(), run_seed ^ 0xDEAD_BEEF);
        run_optimization(RunSetup {
            space: &self.scenario.space,
            objective: &objective,
            gpu: &mut gpu,
            budgets: self.scenario.budgets,
            oracle: Some(&self.oracle),
            early_termination: Some(EarlyTermination::default()),
            cost,
            method: label_method,
            mode: Mode::HyperPower,
            budget,
            seed: run_seed,
            searcher_override: Some(searcher),
        })
    }

    /// Runs one optimization with the two HyperPower enhancements toggled
    /// *independently* — the ablation the paper's Figure 6 discussion
    /// motivates (how much of the win comes from the predictive models vs
    /// from early termination).
    ///
    /// `use_models` enables the constraint models (rejection filter /
    /// constraint-aware acquisition); `use_early_termination` enables the
    /// divergence cutoff. Both on ≡ HyperPower mode; both off ≡ Default.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn run_ablation(
        &mut self,
        method: Method,
        use_models: bool,
        use_early_termination: bool,
        budget: Budget,
        run_seed: u64,
    ) -> Result<Trace> {
        self.run_ablation_with(
            method,
            use_models,
            use_early_termination,
            budget,
            run_seed,
            &ExecutorOptions::from_env(),
        )
    }

    /// [`Session::run_ablation`] with explicit [`ExecutorOptions`].
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn run_ablation_with(
        &mut self,
        method: Method,
        use_models: bool,
        use_early_termination: bool,
        budget: Budget,
        run_seed: u64,
        options: &ExecutorOptions,
    ) -> Result<Trace> {
        let cost = TrainingCostModel::default();
        let sim = TrainingSimulator::new(self.scenario.dataset.clone());
        let objective = SimulatedObjective::new(sim, cost, self.scenario.train_examples);
        let mut gpu = Gpu::new(self.scenario.device.clone(), run_seed ^ 0xDEAD_BEEF);
        let mode = if use_models {
            Mode::HyperPower
        } else {
            Mode::Default
        };
        let oracle = use_models.then_some(&self.oracle);
        let early = use_early_termination.then(EarlyTermination::default);
        run_optimization_with(
            RunSetup {
                space: &self.scenario.space,
                objective: &objective,
                gpu: &mut gpu,
                budgets: self.scenario.budgets,
                oracle,
                early_termination: early,
                cost,
                method,
                mode,
                budget,
                seed: run_seed,
                searcher_override: None,
            },
            options,
        )
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::driver::SampleKind;

    #[test]
    fn scenarios_carry_paper_budgets() {
        let pairs = Scenario::all_pairs();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0].budgets.power, Some(Watts(85.0)));
        assert_eq!(pairs[0].budgets.memory, Some(Mebibytes::from_gib(1.15)));
        assert_eq!(pairs[1].budgets.power, Some(Watts(90.0)));
        assert_eq!(pairs[1].budgets.memory, Some(Mebibytes::from_gib(1.25)));
        assert_eq!(pairs[2].budgets.power, Some(Watts(10.0)));
        assert_eq!(pairs[2].budgets.memory, None);
        assert_eq!(pairs[3].budgets.power, Some(Watts(12.0)));
        assert_eq!(pairs[3].budgets.memory, None);
        // No scenario imposes the latency extension.
        assert!(pairs.iter().all(|p| p.budgets.latency.is_none()));
        assert_eq!(pairs[0].time_budget_hours, 2.0);
        assert_eq!(pairs[1].time_budget_hours, 5.0);
    }

    #[test]
    fn capacity_calibration_brackets_space() {
        let s = Scenario::cifar10_gtx1070();
        // The calibrated range must be non-trivial and ordered.
        assert!(s.dataset.log10_flops_lo < s.dataset.log10_flops_hi);
        assert!(s.dataset.log10_flops_hi - s.dataset.log10_flops_lo > 1.0);
    }

    #[test]
    fn session_fits_models_with_small_rmspe() {
        let session = Session::new(Scenario::mnist_gtx1070(), 3).unwrap();
        assert!(session.models().power.cv_rmspe() < 0.10);
        assert!(session.models().memory.is_some());
        assert!(session.profiling_secs() > 0.0);
    }

    #[test]
    fn tegra_session_has_no_memory_model() {
        let session = Session::new(Scenario::mnist_tegra_tx1(), 4).unwrap();
        assert!(session.models().memory.is_none());
    }

    #[test]
    fn hyperpower_rand_run_produces_feasible_best() {
        let mut session = Session::new(Scenario::mnist_gtx1070(), 5).unwrap();
        let trace = session
            .run(Method::Rand, Mode::HyperPower, Budget::Evaluations(6))
            .unwrap();
        assert_eq!(trace.evaluations(), 6);
        // The screen rejected some predicted-infeasible candidates.
        let best = trace.best_feasible().expect("feasible design found");
        assert!(best.error < 0.9);
    }

    #[test]
    fn default_mode_never_rejects() {
        let mut session = Session::new(Scenario::mnist_gtx1070(), 6).unwrap();
        let trace = session
            .run(Method::Rand, Mode::Default, Budget::Evaluations(5))
            .unwrap();
        assert_eq!(trace.queried(), 5);
        assert!(trace.samples.iter().all(|s| s.kind != SampleKind::Rejected));
    }

    #[test]
    fn paired_seeds_reproduce() {
        let mut session = Session::new(Scenario::mnist_tegra_tx1(), 7).unwrap();
        let a = session
            .run_seeded(Method::Rand, Mode::HyperPower, Budget::Evaluations(4), 99)
            .unwrap();
        let b = session
            .run_seeded(Method::Rand, Mode::HyperPower, Budget::Evaluations(4), 99)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn time_budget_stops_near_deadline() {
        let mut session = Session::new(Scenario::mnist_gtx1070(), 8).unwrap();
        let trace = session
            .run(Method::Rand, Mode::Default, Budget::VirtualHours(0.5))
            .unwrap();
        // The run passes the deadline only by the in-flight sample.
        assert!(trace.total_time_s >= 0.5 * 3600.0);
        assert!(trace.total_time_s < 0.5 * 3600.0 + 3600.0);
        assert!(trace.queried() >= 1);
    }
}
