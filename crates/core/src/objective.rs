//! The expensive objective: train a candidate network, report test error.
//!
//! This is step 2 of the paper's Figure 2 — the step every enhancement
//! tries to bypass or shorten. Two interchangeable implementations are
//! provided behind the [`Objective`] trait:
//!
//! * [`SimulatedObjective`] — the calibrated training simulator
//!   ([`hyperpower_nn::sim`]) used for paper-scale sweeps, with virtual
//!   time from a [`TrainingCostModel`],
//! * [`RealTrainingObjective`] — actual SGD training of a
//!   [`hyperpower_nn::Network`] on a synthetic dataset, exercised by the
//!   examples and integration tests to prove the full code path works.
//!
//! Both honour the paper's **early termination** enhancement (§3.2):
//! diverging runs are identified after a few epochs and aborted, saving
//! nearly the entire training cost.

use hyperpower_data::{Dataset, Split};
use hyperpower_gpu_sim::TrainingCostModel;
use hyperpower_nn::sim::TrainingSimulator;
use hyperpower_nn::Network;

use crate::space::Decoded;
use crate::Result;

/// The early-termination policy (paper §3.2, Fig. 3 right): after
/// `check_epoch` epochs, a run whose test error is still above
/// `error_threshold` is declared diverging and aborted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyTermination {
    /// Epoch at which the check fires.
    pub check_epoch: usize,
    /// Error above which the run is considered diverging. The paper flags
    /// configurations that fail to exceed 10% accuracy; with 10 balanced
    /// classes that corresponds to an error threshold of 0.85–0.90.
    pub error_threshold: f64,
}

impl Default for EarlyTermination {
    fn default() -> Self {
        EarlyTermination {
            check_epoch: 3,
            error_threshold: 0.85,
        }
    }
}

/// Outcome of one objective evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluationResult {
    /// Observed test error (final, or at the termination epoch).
    pub error: f64,
    /// Whether the run diverged.
    pub diverged: bool,
    /// Whether early termination cut the run short.
    pub terminated_early: bool,
    /// Modelled wall-clock cost of the run in (virtual) seconds.
    pub train_secs: f64,
}

/// An expensive objective function over decoded configurations.
///
/// Implementations must be deterministic given `(decoded, early, seed)`:
/// all run-to-run variation flows through the explicit seed, never through
/// interior mutable state. That is also why `evaluate` takes `&self` and
/// the trait requires [`Sync`] — the parallel executor evaluates several
/// candidates against one shared objective from scoped threads.
pub trait Objective: Sync {
    /// Trains the candidate and reports its test error.
    ///
    /// # Errors
    ///
    /// Implementations may fail on invalid architectures; the built-in
    /// search spaces never produce those.
    fn evaluate(
        &self,
        decoded: &Decoded,
        early: Option<&EarlyTermination>,
        seed: u64,
    ) -> Result<EvaluationResult>;

    /// Number of full-training epochs this objective runs.
    fn full_epochs(&self) -> usize;
}

/// Paper-scale objective backed by the analytical training simulator.
#[derive(Debug, Clone)]
pub struct SimulatedObjective {
    sim: TrainingSimulator,
    cost: TrainingCostModel,
    train_examples: usize,
}

impl SimulatedObjective {
    /// Creates a simulated objective.
    ///
    /// `train_examples` is the (virtual) training-set size that, together
    /// with the cost model, determines how long each run takes.
    pub fn new(sim: TrainingSimulator, cost: TrainingCostModel, train_examples: usize) -> Self {
        SimulatedObjective {
            sim,
            cost,
            train_examples,
        }
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &TrainingSimulator {
        &self.sim
    }

    /// The cost model used for virtual-time accounting.
    pub fn cost_model(&self) -> &TrainingCostModel {
        &self.cost
    }
}

impl Objective for SimulatedObjective {
    fn evaluate(
        &self,
        decoded: &Decoded,
        early: Option<&EarlyTermination>,
        seed: u64,
    ) -> Result<EvaluationResult> {
        let outcome = self.sim.simulate(&decoded.arch, &decoded.hyper, seed);
        let full_epochs = self.sim.profile().full_epochs;
        let epoch_secs = self.cost.epoch_secs(&decoded.arch, self.train_examples);

        if let Some(policy) = early {
            // Epochs are 1-based: a `check_epoch` of 0 means "check as
            // soon as possible" (epoch 1), and anything past the full run
            // checks at the final epoch.
            let check = policy.check_epoch.min(full_epochs).max(1);
            let error_at_check = outcome.error_at_epoch(check);
            if error_at_check > policy.error_threshold {
                return Ok(EvaluationResult {
                    error: error_at_check,
                    diverged: outcome.diverged,
                    terminated_early: true,
                    train_secs: self.cost.per_run_overhead_s + epoch_secs * check as f64,
                });
            }
        }
        Ok(EvaluationResult {
            error: outcome.final_error,
            diverged: outcome.diverged,
            terminated_early: false,
            train_secs: self.cost.per_run_overhead_s + epoch_secs * full_epochs as f64,
        })
    }

    fn full_epochs(&self) -> usize {
        self.sim.profile().full_epochs
    }
}

/// Objective that really trains a [`Network`] with SGD on a dataset from
/// the `hyperpower-data` crate.
///
/// Wall-clock accounting still uses the virtual [`TrainingCostModel`] — the
/// experiments reason about *target-platform-era* durations, not about how
/// fast this reproduction's CPU happens to be.
#[derive(Debug, Clone)]
pub struct RealTrainingObjective {
    dataset: Dataset,
    epochs: usize,
    batch_size: usize,
    cost: TrainingCostModel,
}

impl RealTrainingObjective {
    /// Creates a real-training objective.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` or `batch_size` is zero.
    pub fn new(
        dataset: Dataset,
        epochs: usize,
        batch_size: usize,
        cost: TrainingCostModel,
    ) -> Self {
        assert!(
            epochs > 0 && batch_size > 0,
            "epochs and batch size must be positive"
        );
        RealTrainingObjective {
            dataset,
            epochs,
            batch_size,
            cost,
        }
    }
}

impl Objective for RealTrainingObjective {
    fn evaluate(
        &self,
        decoded: &Decoded,
        early: Option<&EarlyTermination>,
        seed: u64,
    ) -> Result<EvaluationResult> {
        let mut net = Network::from_spec(&decoded.arch, seed)?;
        let examples = self.dataset.num_train();
        let epoch_secs = self.cost.epoch_secs(&decoded.arch, examples);
        // Same clamp as the simulated objective: epochs are 1-based and
        // the check cannot land past the end of the run.
        let check = early.map(|p| p.check_epoch.min(self.epochs).max(1));
        let mut last_error = 1.0;
        for epoch in 1..=self.epochs {
            net.train_epoch(&self.dataset, self.batch_size, &decoded.hyper);
            last_error = net.evaluate(&self.dataset, Split::Test);
            if let (Some(policy), Some(check)) = (early, check) {
                if epoch == check && last_error > policy.error_threshold {
                    return Ok(EvaluationResult {
                        error: last_error,
                        diverged: true,
                        terminated_early: true,
                        train_secs: self.cost.per_run_overhead_s + epoch_secs * epoch as f64,
                    });
                }
            }
        }
        Ok(EvaluationResult {
            error: last_error,
            diverged: false,
            terminated_early: false,
            train_secs: self.cost.per_run_overhead_s + epoch_secs * self.epochs as f64,
        })
    }

    fn full_epochs(&self) -> usize {
        self.epochs
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{Config, SearchSpace};
    use hyperpower_nn::sim::DatasetProfile;

    fn decoded_from_unit(space: &SearchSpace, unit: Vec<f64>) -> Decoded {
        space.decode(&Config::new(unit).unwrap()).unwrap()
    }

    fn simulated() -> SimulatedObjective {
        SimulatedObjective::new(
            TrainingSimulator::new(DatasetProfile::mnist()),
            TrainingCostModel::default(),
            60_000,
        )
    }

    #[test]
    fn good_config_trains_fully() {
        let space = SearchSpace::mnist();
        // Large net, mid lr (0.5 decodes to the geometric mean 0.01), mid momentum.
        let decoded = decoded_from_unit(&space, vec![0.9, 0.9, 0.4, 0.9, 0.5, 0.5]);
        let obj = simulated();
        let r = obj
            .evaluate(&decoded, Some(&EarlyTermination::default()), 1)
            .unwrap();
        assert!(!r.terminated_early);
        assert!(!r.diverged);
        assert!(r.error < 0.1, "error {}", r.error);
        assert!(r.train_secs > 100.0);
    }

    #[test]
    fn divergent_config_terminates_early_and_saves_time() {
        let space = SearchSpace::mnist();
        // Max learning rate + max momentum on a big net: diverges.
        let decoded = decoded_from_unit(&space, vec![0.9, 0.9, 0.4, 0.9, 1.0, 1.0]);
        let obj = simulated();
        let with_early = obj
            .evaluate(&decoded, Some(&EarlyTermination::default()), 2)
            .unwrap();
        let without = obj.evaluate(&decoded, None, 2).unwrap();
        assert!(with_early.terminated_early);
        assert!(with_early.diverged);
        assert!(with_early.error > 0.85);
        assert!(!without.terminated_early);
        assert!(
            with_early.train_secs < without.train_secs * 0.4,
            "early {} vs full {}",
            with_early.train_secs,
            without.train_secs
        );
    }

    #[test]
    fn early_termination_never_fires_on_converging_runs() {
        let space = SearchSpace::mnist();
        let obj = simulated();
        // Sweep mid-range learning rates; none should be flagged.
        for lr_unit in [0.3, 0.4, 0.5, 0.6] {
            let decoded = decoded_from_unit(&space, vec![0.8, 0.5, 0.4, 0.8, lr_unit, 0.3]);
            let r = obj
                .evaluate(&decoded, Some(&EarlyTermination::default()), 3)
                .unwrap();
            assert!(!r.terminated_early, "lr unit {lr_unit} was terminated");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let space = SearchSpace::mnist();
        let decoded = decoded_from_unit(&space, vec![0.5; 6]);
        let obj = simulated();
        let a = obj.evaluate(&decoded, None, 7).unwrap();
        let b = obj.evaluate(&decoded, None, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn full_epochs_reported() {
        assert_eq!(
            simulated().full_epochs(),
            DatasetProfile::mnist().full_epochs
        );
    }

    #[test]
    fn real_training_objective_runs() {
        use hyperpower_data::synthetic_dataset;
        use hyperpower_data::GeneratorOptions;
        // A tiny easy dataset and a tiny space-decoded network.
        let opts = GeneratorOptions {
            channels: 1,
            height: 28,
            width: 28,
            num_classes: 10,
            noise_level: 0.15,
            max_shift: 1,
        };
        let data = synthetic_dataset(opts, 1, 80, 40);
        let obj = RealTrainingObjective::new(data, 3, 16, TrainingCostModel::default());
        let space = SearchSpace::mnist();
        // Small net (fast), sensible lr.
        let decoded = decoded_from_unit(&space, vec![0.0, 0.3, 0.6, 0.0, 0.6, 0.3]);
        let r = obj.evaluate(&decoded, None, 5).unwrap();
        assert!((0.0..=1.0).contains(&r.error));
        assert!(!r.terminated_early);
        assert!(r.train_secs > 0.0);
        assert_eq!(obj.full_epochs(), 3);
    }

    // --- EarlyTermination boundary behavior -------------------------------
    // The policy's contract at its edges, pinned directly instead of only
    // through end-to-end runs.

    /// A configuration that diverges under the simulator (max lr + max
    /// momentum on a big net), together with its per-epoch error curve.
    fn diverging_decoded(space: &SearchSpace) -> Decoded {
        decoded_from_unit(space, vec![0.9, 0.9, 0.4, 0.9, 1.0, 1.0])
    }

    #[test]
    fn error_exactly_at_threshold_is_not_terminated() {
        // The check is strict (`error > threshold`): a run sitting exactly
        // at chance level — threshold == observed error, bit for bit — must
        // be allowed to continue.
        let space = SearchSpace::mnist();
        let decoded = diverging_decoded(&space);
        let obj = simulated();
        let check_epoch = 3;
        let error_at_check = obj
            .simulator()
            .simulate(&decoded.arch, &decoded.hyper, 2)
            .error_at_epoch(check_epoch);

        let at_threshold = EarlyTermination {
            check_epoch,
            error_threshold: error_at_check,
        };
        let r = obj.evaluate(&decoded, Some(&at_threshold), 2).unwrap();
        assert!(
            !r.terminated_early,
            "error == threshold must not terminate (strict comparison)"
        );

        // One representable notch below the observed error, it fires.
        let below = EarlyTermination {
            check_epoch,
            error_threshold: f64::from_bits(error_at_check.to_bits() - 1),
        };
        let r = obj.evaluate(&decoded, Some(&below), 2).unwrap();
        assert!(r.terminated_early);
        assert_eq!(r.error, error_at_check);
    }

    #[test]
    fn check_epoch_zero_checks_at_first_epoch() {
        // Epochs are 1-based; a zero check epoch clamps to epoch 1 rather
        // than panicking or silently disabling the policy.
        let space = SearchSpace::mnist();
        let decoded = diverging_decoded(&space);
        let obj = simulated();
        let zero = EarlyTermination {
            check_epoch: 0,
            error_threshold: 0.85,
        };
        let one = EarlyTermination {
            check_epoch: 1,
            error_threshold: 0.85,
        };
        let r0 = obj.evaluate(&decoded, Some(&zero), 2).unwrap();
        let r1 = obj.evaluate(&decoded, Some(&one), 2).unwrap();
        assert_eq!(r0, r1, "check_epoch 0 must behave like epoch 1");
        assert!(r0.terminated_early);
        let overhead = obj.cost_model().per_run_overhead_s;
        let epoch_secs = obj.cost_model().epoch_secs(&decoded.arch, 60_000);
        assert_eq!(r0.train_secs, overhead + epoch_secs);
    }

    #[test]
    fn check_epoch_at_and_past_max_clamps_to_final_epoch() {
        let space = SearchSpace::mnist();
        let decoded = diverging_decoded(&space);
        let obj = simulated();
        let full = obj.full_epochs();
        let at_max = EarlyTermination {
            check_epoch: full,
            error_threshold: 0.85,
        };
        let past_max = EarlyTermination {
            check_epoch: usize::MAX,
            error_threshold: 0.85,
        };
        let r_at = obj.evaluate(&decoded, Some(&at_max), 2).unwrap();
        let r_past = obj.evaluate(&decoded, Some(&past_max), 2).unwrap();
        // Past-the-end clamps onto the final epoch: identical outcome.
        assert_eq!(r_at, r_past);
        // A diverging run flagged at the final epoch has paid the full
        // training cost; only the label differs from an unchecked run.
        let unchecked = obj.evaluate(&decoded, None, 2).unwrap();
        assert!(r_at.terminated_early);
        assert_eq!(r_at.train_secs, unchecked.train_secs);
    }

    #[test]
    fn real_training_check_epoch_zero_does_not_disable_the_policy() {
        use hyperpower_data::synthetic_dataset;
        use hyperpower_data::GeneratorOptions;
        let opts = GeneratorOptions {
            channels: 1,
            height: 28,
            width: 28,
            num_classes: 10,
            noise_level: 0.15,
            max_shift: 1,
        };
        let data = synthetic_dataset(opts, 1, 80, 40);
        let obj = RealTrainingObjective::new(data, 2, 16, TrainingCostModel::default());
        let space = SearchSpace::mnist();
        let decoded = decoded_from_unit(&space, vec![0.0, 0.3, 0.6, 0.0, 0.6, 0.3]);
        // A threshold of -1 means *any* error triggers termination: with
        // the clamp the policy fires at epoch 1 even for check_epoch 0.
        let policy = EarlyTermination {
            check_epoch: 0,
            error_threshold: -1.0,
        };
        let r = obj.evaluate(&decoded, Some(&policy), 5).unwrap();
        assert!(r.terminated_early);
        let epoch_secs = obj.cost.epoch_secs(&decoded.arch, obj.dataset.num_train());
        assert_eq!(r.train_secs, obj.cost.per_run_overhead_s + epoch_secs);
    }
}
