//! Retry, backoff and failure accounting for fault-injected trials.
//!
//! The executor hands every evaluated candidate through [`plan_trial`],
//! which replays the candidate's seeded fault schedule
//! ([`FaultPlan`]) against a [`RetryPolicy`] and returns the complete,
//! virtual-time-accounted story of the trial: which faults struck, how
//! many attempts ran, how much backoff was paid, and whether the trial
//! ultimately completed or failed.
//!
//! `plan_trial` is a *pure* function — the objective is deterministic in
//! `(decoded, eval_seed)`, so every retry of an attempt reproduces the
//! same [`EvaluationResult`] and the whole attempt/backoff schedule can
//! be computed as arithmetic without re-running training. That keeps the
//! fault path on the same determinism footing as the fault-free path
//! (byte-identical traces across worker counts) and makes the
//! virtual-time accounting property-testable in isolation.
//!
//! Precedence rule (see DESIGN.md §5b): when early termination and the
//! watchdog timeout would both fire on the same attempt, **early
//! termination wins** — the trial completes as early-terminated and the
//! timeout is recorded as a secondary cause instead of last-writer-wins.

use hyperpower_gpu_sim::{FaultPlan, TrainingFault};

use crate::objective::EvaluationResult;

/// The test error recorded into the searcher history for a terminally
/// failed trial: the "constant liar" worst-case observation that steers
/// Bayesian searchers away from the failing region instead of leaving a
/// silent hole in the evidence.
pub const LIAR_ERROR: f64 = 1.0;

/// Why a trial attempt (or the whole trial) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TrialFailure {
    /// A transient sensor glitch forced one measurement to be discarded
    /// and repeated (never terminal).
    SensorGlitch,
    /// The training job aborted with an out-of-memory error.
    Oom,
    /// The training job crashed hard.
    Crash,
    /// The worker stalled; the virtual-time watchdog reaped it.
    Stall,
    /// Training ran past the watchdog timeout.
    Timeout,
    /// The configuration was circuit-broken: it already failed terminally
    /// and sits in the quarantine set.
    Quarantined,
}

impl TrialFailure {
    /// Stable wire name used by the golden codec, the CSV export and the
    /// checkpoint format.
    pub fn wire_name(self) -> &'static str {
        match self {
            TrialFailure::SensorGlitch => "sensor_glitch",
            TrialFailure::Oom => "oom",
            TrialFailure::Crash => "crash",
            TrialFailure::Stall => "stall",
            TrialFailure::Timeout => "timeout",
            TrialFailure::Quarantined => "quarantined",
        }
    }

    /// Inverse of [`TrialFailure::wire_name`].
    pub fn from_wire_name(name: &str) -> Option<Self> {
        match name {
            "sensor_glitch" => Some(TrialFailure::SensorGlitch),
            "oom" => Some(TrialFailure::Oom),
            "crash" => Some(TrialFailure::Crash),
            "stall" => Some(TrialFailure::Stall),
            "timeout" => Some(TrialFailure::Timeout),
            "quarantined" => Some(TrialFailure::Quarantined),
            _ => None,
        }
    }
}

impl std::fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

impl From<TrainingFault> for TrialFailure {
    fn from(fault: TrainingFault) -> Self {
        match fault {
            TrainingFault::Oom => TrialFailure::Oom,
            TrainingFault::Crash => TrialFailure::Crash,
            TrainingFault::Stall => TrialFailure::Stall,
        }
    }
}

/// What an integrity scan can find wrong with a study's durable store —
/// the *at-rest* counterpart of [`TrialFailure`]'s in-flight taxonomy.
/// Each defect maps to exactly one salvage rule (see the server's fsck).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StoreDefect {
    /// A record's checksum frame does not match its payload (bit-rot), or
    /// the frame token itself is malformed.
    CorruptFrame,
    /// The file's final record is torn — no trailing newline — from a
    /// crash mid-append. Benign: the record was never acknowledged.
    TruncatedTail,
    /// A stale temp file (`*.tmp` / `*.journal-tmp`) stranded by a crash
    /// between temp write and atomic rename. Benign garbage.
    StaleTmp,
    /// The journal header and the snapshot disagree about the run
    /// identity — the two files belong to different runs.
    HeaderMismatch,
}

impl StoreDefect {
    /// Stable wire name used by fsck reports.
    pub fn wire_name(self) -> &'static str {
        match self {
            StoreDefect::CorruptFrame => "corrupt_frame",
            StoreDefect::TruncatedTail => "truncated_tail",
            StoreDefect::StaleTmp => "stale_tmp",
            StoreDefect::HeaderMismatch => "header_mismatch",
        }
    }
}

impl std::fmt::Display for StoreDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Bounded-retry policy with seeded exponential backoff.
///
/// A failed attempt is retried up to `max_retries` times; the wait before
/// retry `k` (1-based) is
/// `backoff_base_s × backoff_factor^(k-1) × (1 + backoff_jitter_frac × u)`
/// with `u` drawn from the candidate's seeded backoff stream — charged to
/// *virtual* time, so `Budget::VirtualHours` accounting stays honest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`2` ⇒ at most 3 attempts).
    pub max_retries: u32,
    /// Base backoff before the first retry, in virtual seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff per additional retry.
    pub backoff_factor: f64,
    /// Jitter amplitude as a fraction of the deterministic backoff.
    pub backoff_jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base_s: 30.0,
            backoff_factor: 2.0,
            backoff_jitter_frac: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged after failed attempt `attempt` (1-based),
    /// given the `[0, 1)` jitter draw for that attempt.
    pub fn backoff_secs(&self, attempt: u32, jitter_unit: f64) -> f64 {
        let exp = self.backoff_factor.powi(attempt.saturating_sub(1) as i32);
        self.backoff_base_s * exp * (1.0 + self.backoff_jitter_frac * jitter_unit)
    }
}

/// How a fully-retried trial ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialOutcome {
    /// An attempt ran to (possibly early-terminated) completion.
    Completed {
        /// A failure cause that also fired on the winning attempt but was
        /// outranked — today only [`TrialFailure::Timeout`] when early
        /// termination won the precedence race.
        secondary: Option<TrialFailure>,
    },
    /// Every attempt failed; this is the terminal cause.
    Failed(TrialFailure),
}

/// The complete virtual-time story of one trial under faults.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialPlan {
    /// How the trial ended.
    pub outcome: TrialOutcome,
    /// Every fault that struck an attempt, in attempt order (the terminal
    /// cause, if any, is the last entry).
    pub faults: Vec<TrialFailure>,
    /// Attempts executed (1 when no fault struck).
    pub attempts: u32,
    /// Total virtual time charged: the sum of every attempt's duration
    /// plus every backoff wait. Excludes measurement time, which the
    /// executor charges separately on success.
    pub charged_secs: f64,
}

/// Replays the seeded fault schedule of query `query` against `policy`
/// and the (deterministic) evaluation `result`, returning the trial's
/// outcome and exact virtual-time charge.
///
/// `memory_pressure_frac` is the candidate's noise-free predicted memory
/// as a fraction of device capacity; it gates the OOM injection rate.
///
/// Per attempt, in order:
/// 1. an injected fault ([`FaultPlan::training_fault`]) aborts the
///    attempt — OOM/crash strike partway through training
///    ([`FaultPlan::fault_point_frac`]), a stall is reaped at the
///    watchdog timeout;
/// 2. otherwise, if the attempt's training time exceeds the watchdog
///    timeout: early termination (if it fired) wins and the timeout is
///    recorded as a secondary cause; a full-length run times out and the
///    attempt is charged exactly the timeout;
/// 3. otherwise the attempt completes and the trial succeeds.
///
/// A failed attempt `k < max_retries + 1` charges a seeded exponential
/// backoff and retries; the last allowed attempt's failure is terminal.
pub fn plan_trial(
    plan: &FaultPlan,
    policy: &RetryPolicy,
    query: u64,
    result: &EvaluationResult,
    memory_pressure_frac: f64,
) -> TrialPlan {
    let timeout_secs = plan.profile().timeout_s;
    let max_attempts = policy.max_retries.saturating_add(1);
    let mut faults = Vec::new();
    let mut charged_secs = 0.0;
    let mut attempts = 0;

    while attempts < max_attempts {
        attempts += 1;
        let failure = match plan.training_fault(query, attempts, memory_pressure_frac) {
            Some(TrainingFault::Stall) => {
                // The worker hangs; the watchdog reaps it at the timeout.
                charged_secs += timeout_secs;
                Some(TrialFailure::Stall)
            }
            Some(fault) => {
                // OOM/crash strike partway through the attempt's training.
                charged_secs += plan.fault_point_frac(query, attempts) * result.train_secs;
                Some(TrialFailure::from(fault))
            }
            None if result.train_secs > timeout_secs => {
                if result.terminated_early {
                    // Precedence: the early-termination check fires inside
                    // the run, before the watchdog verdict is final — it
                    // wins, and the timeout is recorded as secondary.
                    charged_secs += result.train_secs;
                    faults.push(TrialFailure::Timeout);
                    return TrialPlan {
                        outcome: TrialOutcome::Completed {
                            secondary: Some(TrialFailure::Timeout),
                        },
                        faults,
                        attempts,
                        charged_secs,
                    };
                }
                charged_secs += timeout_secs;
                Some(TrialFailure::Timeout)
            }
            None => None,
        };
        let Some(failure) = failure else {
            charged_secs += result.train_secs;
            return TrialPlan {
                outcome: TrialOutcome::Completed { secondary: None },
                faults,
                attempts,
                charged_secs,
            };
        };
        faults.push(failure);
        if attempts == max_attempts {
            return TrialPlan {
                outcome: TrialOutcome::Failed(failure),
                faults,
                attempts,
                charged_secs,
            };
        }
        charged_secs += policy.backoff_secs(attempts, plan.backoff_unit(query, attempts));
    }
    // max_attempts >= 1, so the loop always returns from within. analyze::allow(R15)
    unreachable!("retry loop exits via completion or terminal failure");
}

#[cfg(test)]
// Exact float equality is intended: the accounting contract is exact
// arithmetic over deterministic draws.
#[allow(clippy::float_cmp, clippy::unwrap_used)]
mod tests {
    use super::*;
    use hyperpower_gpu_sim::FaultProfile;

    fn result(train_secs: f64, terminated_early: bool) -> EvaluationResult {
        EvaluationResult {
            error: 0.25,
            diverged: false,
            terminated_early,
            train_secs,
        }
    }

    fn crash_always() -> FaultProfile {
        FaultProfile {
            name: "crash-always".into(),
            sensor_glitch_prob: 0.0,
            oom_prob_at_full_pressure: 0.0,
            oom_onset_frac: 1.0,
            crash_prob: 1.0,
            stall_prob: 0.0,
            timeout_s: f64::INFINITY,
            sensor_drift_w_per_hour: 0.0,
        }
    }

    #[test]
    fn faultless_trial_charges_exactly_the_training_time() {
        let plan = FaultPlan::new(FaultProfile::none(), 7);
        let t = plan_trial(
            &plan,
            &RetryPolicy::default(),
            3,
            &result(500.0, false),
            0.2,
        );
        assert_eq!(t.outcome, TrialOutcome::Completed { secondary: None });
        assert_eq!(t.attempts, 1);
        assert!(t.faults.is_empty());
        assert_eq!(t.charged_secs, 500.0);
    }

    #[test]
    fn guaranteed_crash_exhausts_retries_and_charges_backoff() {
        let plan = FaultPlan::new(crash_always(), 11);
        let policy = RetryPolicy::default();
        let q = 4;
        let t = plan_trial(&plan, &policy, q, &result(1000.0, false), 0.0);
        assert_eq!(t.outcome, TrialOutcome::Failed(TrialFailure::Crash));
        assert_eq!(t.attempts, 3);
        assert_eq!(t.faults, vec![TrialFailure::Crash; 3]);
        // Exact accounting: three partial attempts + two backoffs, summed
        // in charge order so the comparison is bit-exact.
        let mut expected = 0.0f64;
        for a in 1..=3 {
            expected += plan.fault_point_frac(q, a) * 1000.0;
            if a < 3 {
                expected += policy.backoff_secs(a, plan.backoff_unit(q, a));
            }
        }
        assert_eq!(t.charged_secs, expected);
    }

    #[test]
    fn zero_retries_fails_on_the_first_fault() {
        let plan = FaultPlan::new(crash_always(), 2);
        let policy = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        let t = plan_trial(&plan, &policy, 0, &result(100.0, false), 0.0);
        assert_eq!(t.attempts, 1);
        assert_eq!(t.outcome, TrialOutcome::Failed(TrialFailure::Crash));
        assert_eq!(t.charged_secs, plan.fault_point_frac(0, 1) * 100.0);
    }

    #[test]
    fn timeout_charges_exactly_the_watchdog_and_retries() {
        let mut profile = FaultProfile::none();
        profile.timeout_s = 200.0;
        let plan = FaultPlan::new(profile, 5);
        let policy = RetryPolicy::default();
        // Training takes 900 s > 200 s watchdog, never early-terminated:
        // every attempt times out at exactly 200 s.
        let t = plan_trial(&plan, &policy, 9, &result(900.0, false), 0.0);
        assert_eq!(t.outcome, TrialOutcome::Failed(TrialFailure::Timeout));
        assert_eq!(t.attempts, 3);
        let backoffs = policy.backoff_secs(1, plan.backoff_unit(9, 1))
            + policy.backoff_secs(2, plan.backoff_unit(9, 2));
        assert_eq!(t.charged_secs, 3.0 * 200.0 + backoffs);
    }

    #[test]
    fn early_termination_wins_over_timeout_with_secondary_cause() {
        let mut profile = FaultProfile::none();
        profile.timeout_s = 200.0;
        let plan = FaultPlan::new(profile, 5);
        // Early-terminated at 250 s — still past the 200 s watchdog. The
        // trial completes (ET wins), charges the *full* ET duration, and
        // records the timeout as a secondary cause.
        let t = plan_trial(&plan, &RetryPolicy::default(), 9, &result(250.0, true), 0.0);
        assert_eq!(
            t.outcome,
            TrialOutcome::Completed {
                secondary: Some(TrialFailure::Timeout)
            }
        );
        assert_eq!(t.attempts, 1);
        assert_eq!(t.faults, vec![TrialFailure::Timeout]);
        assert_eq!(t.charged_secs, 250.0);
    }

    #[test]
    fn stall_charges_the_watchdog_not_the_training_time() {
        let profile = FaultProfile {
            name: "stall-always".into(),
            sensor_glitch_prob: 0.0,
            oom_prob_at_full_pressure: 0.0,
            oom_onset_frac: 1.0,
            crash_prob: 0.0,
            stall_prob: 1.0,
            timeout_s: 333.0,
            sensor_drift_w_per_hour: 0.0,
        };
        let plan = FaultPlan::new(profile, 8);
        let policy = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        let t = plan_trial(&plan, &policy, 2, &result(10_000.0, false), 0.0);
        assert_eq!(t.outcome, TrialOutcome::Failed(TrialFailure::Stall));
        assert_eq!(t.charged_secs, 333.0);
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let policy = RetryPolicy {
            max_retries: 5,
            backoff_base_s: 10.0,
            backoff_factor: 2.0,
            backoff_jitter_frac: 0.5,
        };
        assert_eq!(policy.backoff_secs(1, 0.0), 10.0);
        assert_eq!(policy.backoff_secs(2, 0.0), 20.0);
        assert_eq!(policy.backoff_secs(3, 0.0), 40.0);
        assert_eq!(policy.backoff_secs(1, 1.0), 15.0);
        // Jitter never exceeds the configured fraction.
        for a in 1..5 {
            for u in [0.0, 0.3, 0.999] {
                let b = policy.backoff_secs(a, u);
                let base = 10.0 * 2f64.powi(a as i32 - 1);
                assert!(b >= base && b <= base * 1.5, "backoff {b} out of band");
            }
        }
    }

    #[test]
    fn wire_names_roundtrip() {
        for f in [
            TrialFailure::SensorGlitch,
            TrialFailure::Oom,
            TrialFailure::Crash,
            TrialFailure::Stall,
            TrialFailure::Timeout,
            TrialFailure::Quarantined,
        ] {
            assert_eq!(TrialFailure::from_wire_name(f.wire_name()), Some(f));
            assert_eq!(f.to_string(), f.wire_name());
        }
        assert_eq!(TrialFailure::from_wire_name("gremlins"), None);
    }
}
