//! **HyperPower** — power- and memory-constrained hyper-parameter
//! optimization for neural networks.
//!
//! A from-scratch Rust reproduction of Stamoulis et al.,
//! *"HyperPower: Power- and Memory-Constrained Hyper-Parameter Optimization
//! for Neural Networks"* (DATE 2018, arXiv:1712.02446).
//!
//! # The method
//!
//! HyperPower observes that a CNN's inference-time **power** and **memory**
//! on a target GPU depend only on its *structural* hyper-parameters `z`
//! (feature counts, kernel sizes, layer widths) — not on trained weights —
//! and can therefore be treated as **a-priori-known constraints**:
//!
//! 1. Profile `L` random architectures offline on the target platform and
//!    fit linear models `P(z) = Σ wⱼ·zⱼ`, `M(z) = Σ mⱼ·zⱼ` (paper Eq. 1–2,
//!    [`model`]).
//! 2. Fold the models into the Bayesian-optimization acquisition function:
//!    * **HW-IECI** — Expected Improvement × hard indicators
//!      `I[P(z) ≤ P_B]·I[M(z) ≤ M_B]` (paper Eq. 3),
//!    * **HW-CWEI** — EI × probability of constraint satisfaction,
//!    * constraint-aware **Rand** / **Rand-Walk** reject predicted-invalid
//!      candidates at model-evaluation cost (milliseconds, not hours).
//! 3. Terminate diverging training runs after a few epochs
//!    ([`EarlyTermination`]).
//!
//! # Architecture of this crate
//!
//! * [`space`] — the paper's AlexNet-variant search spaces (6-dim MNIST,
//!   13-dim CIFAR-10) and configuration en/decoding,
//! * [`model`] — linear predictive power/memory models with 10-fold CV,
//! * [`profiler`] — offline random profiling on a simulated GPU,
//! * [`constraints`] — budgets and model-backed feasibility oracles,
//! * [`drift`] — the self-healing layer: drift detection, online
//!   recalibration, adaptive safety margins, degradation events,
//! * [`objective`] — the expensive objective (train a CNN, report test
//!   error), in both simulated and real-training flavours,
//! * [`methods`] — the four searchers (Rand, Rand-Walk, HW-CWEI, HW-IECI),
//! * [`driver`] — evaluation- and virtual-time-budgeted optimization loops
//!   producing [`Trace`]s,
//! * [`study`] — the ask–tell state machine behind the loops: leased
//!   candidate batches out, idempotent observations in, byte-identical
//!   traces committed,
//! * [`executor`] — the deterministic (optionally multi-threaded) candidate
//!   evaluation engine behind the driver,
//! * [`golden`] — a dependency-free byte-exact trace codec for the
//!   golden-trace regression fixtures,
//! * [`integrity`] — the CRC32 checksum framing every durable record
//!   against bit-rot,
//! * [`scenario`] — the paper's four device–dataset pairs with their
//!   published budgets,
//! * [`report`] — aggregation into the paper's Tables 2–5.
//!
//! # Quickstart
//!
//! ```
//! use hyperpower::{Budget, Method, Mode, Scenario, Session};
//!
//! # fn main() -> Result<(), hyperpower::Error> {
//! // MNIST on a (simulated) GTX 1070: 85 W / 1.15 GiB budgets.
//! let scenario = Scenario::mnist_gtx1070();
//! let mut session = Session::new(scenario, 42)?;
//! let outcome = session.run(Method::HwIeci, Mode::HyperPower, Budget::Evaluations(8))?;
//! let best = outcome.best_feasible().expect("found a feasible design");
//! assert!(best.error < 0.9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod constraints;
pub mod drift;
pub mod driver;
mod error;
pub mod executor;
pub mod golden;
pub mod integrity;
pub mod methods;
pub mod model;
pub mod objective;
pub mod profiler;
pub mod recovery;
pub mod report;
pub mod scenario;
pub mod space;
pub mod study;

pub use checkpoint::CheckpointConfig;
pub use constraints::{Budgets, ConstraintOracle};
pub use drift::{DegradationEvent, DriftConfig, DriftEvent, DriftMonitor, DriftTarget};
pub use driver::{Budget, Outcome, Sample, SampleKind, Trace};
// Typed hardware units used throughout the budget/constraint API.
pub use error::Error;
pub use executor::{run_optimization_with, ExecutorOptions};
pub use hyperpower_linalg::units::{Joules, Mebibytes, Seconds, Watts};
pub use methods::{Conditioning, Method, Mode, Searcher};
pub use model::{HwModels, LinearHwModel};
pub use objective::{EarlyTermination, EvaluationResult, Objective, SimulatedObjective};
pub use profiler::{ProfiledData, Profiler};
pub use recovery::{RetryPolicy, StoreDefect, TrialFailure};
pub use scenario::{Scenario, Session};
pub use space::{Config, Dimension, SearchSpace};
pub use study::{LeasedCandidate, NullSink, ObservationSink, Study, StudySpec, TellOutcome};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
