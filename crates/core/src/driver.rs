//! The optimization loop: budgets, traces and the sample-by-sample record.
//!
//! [`run_optimization`] executes one full hyper-parameter search under
//! either a fixed evaluation count (paper §5, "fixed number of function
//! evaluations": 50 iterations, 30 for MNIST) or a virtual wall-clock
//! budget (2 h MNIST / 5 h CIFAR-10). The resulting [`Trace`] records every
//! *queried sample* — model-rejected, early-terminated or fully trained —
//! with its timestamp, measured hardware metrics and feasibility, which is
//! exactly the information the paper's Figures 4 and 6 and Tables 2–5 are
//! built from.

use hyperpower_gpu_sim::{Gpu, TrainingCostModel};

use crate::executor::{run_optimization_with, ExecutorOptions};
use crate::methods::Searcher;
use crate::{
    Budgets, Config, ConstraintOracle, EarlyTermination, Method, Mode, Objective, Result,
    SearchSpace,
};

/// Stop criterion for one optimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Stop after this many *function evaluations* (trained candidates;
    /// model-rejected samples do not count).
    Evaluations(usize),
    /// Stop once the virtual clock passes this many hours. The sample in
    /// flight at the deadline completes (as in the paper: "we allow the
    /// last sample queried right before the maximum time limit to
    /// complete").
    VirtualHours(f64),
}

/// How a queried sample was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Predicted constraint-violating by the models and discarded without
    /// training (HyperPower-mode model-free methods only).
    Rejected,
    /// Training started but was aborted by early termination.
    EarlyTerminated,
    /// Trained to completion.
    Trained,
    /// Every attempt failed (fault injection or watchdog timeout); the
    /// sample is recorded as a worst-case "liar" observation.
    Failed,
}

/// One queried sample in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// 0-based query index.
    pub index: usize,
    /// Virtual timestamp (seconds) at which processing of this sample
    /// finished.
    pub timestamp_s: f64,
    /// How the sample was handled.
    pub kind: SampleKind,
    /// Observed test error (`None` for rejected samples).
    pub error: Option<f64>,
    /// Power in watts: measured for evaluated samples, model-predicted for
    /// rejected ones.
    pub power_w: f64,
    /// Measured memory in bytes, where the platform supports it.
    pub memory_bytes: Option<u64>,
    /// Measured inference latency in seconds per example (`None` for
    /// rejected samples).
    pub latency_s: Option<f64>,
    /// Whether the sample satisfies the budgets (by measurement for
    /// evaluated samples; rejected samples are infeasible by prediction).
    pub feasible: bool,
    /// Retries consumed by this sample (0 when the first attempt stood).
    pub retries: u32,
    /// Every fault that struck this sample's attempts, in attempt order.
    pub faults: Vec<crate::recovery::TrialFailure>,
    /// Terminal failure cause for [`SampleKind::Failed`] samples, the
    /// quarantine marker for circuit-broken rejections, or the secondary
    /// cause on a completed sample (e.g. a timeout outranked by early
    /// termination).
    pub failure: Option<crate::recovery::TrialFailure>,
    /// Self-healing state transitions caused by committing this sample
    /// (drift detections, recalibrations, margin moves); empty unless the
    /// drift monitor is active.
    pub drift_events: Vec<crate::drift::DriftEvent>,
    /// Numerical degradation-ladder events hit while *proposing* this
    /// sample (GP jitter escalations, Rand-Walk fallbacks).
    pub degradations: Vec<crate::drift::DegradationEvent>,
    /// Worst live model RMSPE after this commit, when the drift monitor is
    /// active and has measurements.
    pub drift_rmspe: Option<f64>,
    /// Speculative (hedged) duplicate leases issued for this proposal
    /// while a straggler held the original. Operational lease telemetry:
    /// hedging is trace-neutral, so this field is deliberately *excluded*
    /// from the golden codec and the journal/checkpoint record.
    pub hedged: u32,
    /// Leases on this proposal reclaimed after their deadline passed (or
    /// shed under overload) before a worker delivered. Operational lease
    /// telemetry, excluded from the golden codec like [`Sample::hedged`].
    pub reclaimed: u32,
    /// The queried configuration.
    pub config: Config,
}

/// The best feasible design found by a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Best {
    /// Test error of the best feasible design.
    pub error: f64,
    /// Its measured power in watts.
    pub power_w: f64,
    /// Its measured memory in bytes, if available.
    pub memory_bytes: Option<u64>,
    /// Virtual time at which it was found, in seconds.
    pub timestamp_s: f64,
    /// The configuration itself.
    pub config: Config,
}

/// The complete record of one optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Method that produced the trace.
    pub method: Method,
    /// Mode (Default vs HyperPower).
    pub mode: Mode,
    /// Budgets in force.
    pub budgets: Budgets,
    /// Every queried sample, in order.
    pub samples: Vec<Sample>,
    /// Virtual time when the run finished, in seconds.
    pub total_time_s: f64,
}

/// Alias kept for API clarity: a finished run *is* its trace.
pub type Outcome = Trace;

impl Trace {
    /// Total queried samples (the paper's Table 4 metric): rejected +
    /// early-terminated + trained.
    pub fn queried(&self) -> usize {
        self.samples.len()
    }

    /// Function evaluations: samples whose objective was actually run
    /// (early-terminated or trained).
    pub fn evaluations(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| s.kind != SampleKind::Rejected)
            .count()
    }

    /// Evaluated samples that violated the budgets by *measurement* (the
    /// paper's Figure 4 center metric). Failed samples carry no
    /// measurements and are not counted.
    pub fn measured_violations(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| {
                matches!(s.kind, SampleKind::EarlyTerminated | SampleKind::Trained) && !s.feasible
            })
            .count()
    }

    /// The best feasible design, if any run sample was feasible with an
    /// observed error.
    pub fn best_feasible(&self) -> Option<Best> {
        let mut best: Option<Best> = None;
        for s in &self.samples {
            let (Some(error), true) = (s.error, s.feasible) else {
                continue;
            };
            if best.as_ref().is_none_or(|b| error < b.error) {
                best = Some(Best {
                    error,
                    power_w: s.power_w,
                    memory_bytes: s.memory_bytes,
                    timestamp_s: s.timestamp_s,
                    config: s.config.clone(),
                });
            }
        }
        best
    }

    /// Best feasible error as a function of evaluations: one point per
    /// evaluated sample `(evaluation index, best error so far)`. Feeds the
    /// paper's Figure 4 (left).
    pub fn best_error_by_evaluation(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut best = f64::INFINITY;
        let mut evals = 0;
        for s in &self.samples {
            if s.kind == SampleKind::Rejected {
                continue;
            }
            evals += 1;
            if let (Some(e), true) = (s.error, s.feasible) {
                if e < best {
                    best = e;
                }
            }
            if best.is_finite() {
                out.push((evals, best));
            }
        }
        out
    }

    /// Best feasible error as a function of virtual time `(seconds, best
    /// error so far)`. Feeds the paper's Figure 6.
    pub fn best_error_by_time(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut best = f64::INFINITY;
        for s in &self.samples {
            if let (Some(e), true) = (s.error, s.feasible) {
                if e < best {
                    best = e;
                    out.push((s.timestamp_s, best));
                }
            }
        }
        out
    }

    /// Virtual time (seconds) at which the run had processed `n` queried
    /// samples, or `None` if it never did (feeds Table 3).
    pub fn time_to_reach_queried(&self, n: usize) -> Option<f64> {
        if n == 0 {
            return Some(0.0);
        }
        self.samples.get(n - 1).map(|s| s.timestamp_s)
    }

    /// Virtual time (seconds) at which a feasible design with error ≤
    /// `target` was first found, or `None` (feeds Table 5).
    pub fn time_to_reach_error(&self, target: f64) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.feasible && s.error.is_some_and(|e| e <= target))
            .map(|s| s.timestamp_s)
    }

    /// Worst live model RMSPE at the end of the run, if the drift monitor
    /// was active and produced estimates.
    pub fn final_drift_rmspe(&self) -> Option<f64> {
        self.samples.iter().rev().find_map(|s| s.drift_rmspe)
    }

    /// Number of samples whose commit recalibrated the hardware models.
    pub fn recalibration_count(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| {
                s.drift_events
                    .contains(&crate::drift::DriftEvent::Recalibrated)
            })
            .count()
    }

    /// Total numerical degradation-ladder events across the run.
    pub fn degradation_count(&self) -> usize {
        self.samples.iter().map(|s| s.degradations.len()).sum()
    }

    /// Total speculative (hedged) duplicate leases issued across the run.
    pub fn hedged_count(&self) -> usize {
        self.samples.iter().map(|s| s.hedged as usize).sum()
    }

    /// Total expired/shed lease reclamations across the run.
    pub fn reclaimed_count(&self) -> usize {
        self.samples.iter().map(|s| s.reclaimed as usize).sum()
    }

    /// Writes the trace as CSV (one row per queried sample) for external
    /// analysis/plotting. Columns: `index,timestamp_s,kind,error,power_w,
    /// memory_bytes,latency_s,feasible,retries,failure,config...` (the
    /// config's unit-cube coordinates, one column per dimension). When any
    /// sample carries self-healing data, three extra columns
    /// `drift_rmspe,drift_events,degradations` appear before the config
    /// coordinates (event lists joined with `+`); default runs keep the
    /// historical column set. When any sample carries lease telemetry
    /// (hedged duplicates or reclaimed leases), two further columns
    /// `hedged,reclaimed` appear before the config coordinates.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer. Pass `&mut writer` to keep
    /// using the writer afterwards.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        let dim = self.samples.first().map(|s| s.config.dim()).unwrap_or(0);
        let has_drift = self.samples.iter().any(|s| {
            s.drift_rmspe.is_some() || !s.drift_events.is_empty() || !s.degradations.is_empty()
        });
        write!(
            w,
            "index,timestamp_s,kind,error,power_w,memory_bytes,latency_s,feasible,retries,failure"
        )?;
        if has_drift {
            write!(w, ",drift_rmspe,drift_events,degradations")?;
        }
        let has_lease_ops = self.samples.iter().any(|s| s.hedged > 0 || s.reclaimed > 0);
        if has_lease_ops {
            write!(w, ",hedged,reclaimed")?;
        }
        for d in 0..dim {
            write!(w, ",u{d}")?;
        }
        writeln!(w)?;
        for s in &self.samples {
            let kind = match s.kind {
                SampleKind::Rejected => "rejected",
                SampleKind::EarlyTerminated => "early_terminated",
                SampleKind::Trained => "trained",
                SampleKind::Failed => "failed",
            };
            write!(
                w,
                "{},{},{},{},{},{},{},{},{},{}",
                s.index,
                s.timestamp_s,
                kind,
                s.error.map(|e| e.to_string()).unwrap_or_default(),
                s.power_w,
                s.memory_bytes.map(|m| m.to_string()).unwrap_or_default(),
                s.latency_s.map(|l| l.to_string()).unwrap_or_default(),
                s.feasible,
                s.retries,
                s.failure.map(|c| c.wire_name()).unwrap_or_default()
            )?;
            if has_drift {
                let events: Vec<&str> = s.drift_events.iter().map(|e| e.wire_name()).collect();
                let degradations: Vec<String> =
                    s.degradations.iter().map(|d| d.wire_name()).collect();
                write!(
                    w,
                    ",{},{},{}",
                    s.drift_rmspe.map(|r| r.to_string()).unwrap_or_default(),
                    events.join("+"),
                    degradations.join("+")
                )?;
            }
            if has_lease_ops {
                write!(w, ",{},{}", s.hedged, s.reclaimed)?;
            }
            for u in s.config.unit() {
                write!(w, ",{u}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }
}

/// Everything one optimization run needs.
pub struct RunSetup<'a> {
    /// The search space.
    pub space: &'a SearchSpace,
    /// The expensive objective. Shared (`&dyn`) because the executor may
    /// evaluate several candidates on concurrent threads; implementations
    /// are `Sync` and deterministic in `(decoded, eval_seed)`.
    pub objective: &'a dyn Objective,
    /// The target platform (measures power/memory of evaluated samples).
    pub gpu: &'a mut Gpu,
    /// Hardware budgets used to judge feasibility.
    pub budgets: Budgets,
    /// Fitted constraint oracle; `Some` in HyperPower mode.
    pub oracle: Option<&'a ConstraintOracle>,
    /// Early-termination policy; `Some` in HyperPower mode.
    pub early_termination: Option<EarlyTermination>,
    /// Virtual-time cost model.
    pub cost: TrainingCostModel,
    /// Search method.
    pub method: Method,
    /// Enhancement mode.
    pub mode: Mode,
    /// Stop criterion.
    pub budget: Budget,
    /// Run seed (searcher proposals, objective noise, sensor noise order).
    pub seed: u64,
    /// Optional custom proposal strategy. When `Some`, it replaces the
    /// searcher `method`/`mode` would normally build — used by the
    /// acquisition and grid-search ablations; `method`/`mode` then only
    /// label the trace.
    pub searcher_override: Option<Box<dyn Searcher>>,
}

// Manual impl: `objective` and `searcher_override` are trait objects, so
// only their presence is reported.
impl std::fmt::Debug for RunSetup<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSetup")
            .field("budgets", &self.budgets)
            .field("oracle", &self.oracle.is_some())
            .field("early_termination", &self.early_termination)
            .field("cost", &self.cost)
            .field("method", &self.method)
            .field("mode", &self.mode)
            .field("budget", &self.budget)
            .field("seed", &self.seed)
            .field("searcher_override", &self.searcher_override.is_some())
            .finish_non_exhaustive()
    }
}

/// Safety valve: a HyperPower-mode run whose models reject this many
/// candidates *in a row* concludes the predicted-feasible region is
/// (effectively) empty and stops proposing.
pub(crate) const MAX_CONSECUTIVE_REJECTIONS: usize = 20_000;

/// Runs one optimization to completion and returns its [`Trace`].
///
/// The loop itself lives in [`crate::executor`]; this entry point runs it
/// with [`ExecutorOptions::from_env`] — one simulated GPU (the paper's
/// sequential schedule) and the thread count from `HYPERPOWER_WORKERS`.
/// The trace is identical for every worker count.
///
/// # Errors
///
/// Propagates space-decoding, GP-fitting and objective errors.
pub fn run_optimization(setup: RunSetup<'_>) -> Result<Trace> {
    run_optimization_with(setup, &ExecutorOptions::from_env())
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sample(
        index: usize,
        t: f64,
        kind: SampleKind,
        error: Option<f64>,
        feasible: bool,
    ) -> Sample {
        Sample {
            index,
            timestamp_s: t,
            kind,
            error,
            power_w: 80.0,
            memory_bytes: None,
            latency_s: error.map(|_| 0.001),
            feasible,
            retries: 0,
            faults: Vec::new(),
            failure: None,
            drift_events: Vec::new(),
            degradations: Vec::new(),
            drift_rmspe: None,
            hedged: 0,
            reclaimed: 0,
            config: Config::new(vec![0.5]).unwrap(),
        }
    }

    fn toy_trace() -> Trace {
        Trace {
            method: Method::Rand,
            mode: Mode::HyperPower,
            budgets: Budgets::power(crate::Watts(90.0)),
            samples: vec![
                sample(0, 1.0, SampleKind::Rejected, None, false),
                sample(1, 100.0, SampleKind::Trained, Some(0.5), true),
                sample(2, 200.0, SampleKind::Trained, Some(0.3), false),
                sample(3, 300.0, SampleKind::EarlyTerminated, Some(0.9), true),
                sample(4, 400.0, SampleKind::Trained, Some(0.2), true),
            ],
            total_time_s: 400.0,
        }
    }

    #[test]
    fn counting_metrics() {
        let t = toy_trace();
        assert_eq!(t.queried(), 5);
        assert_eq!(t.evaluations(), 4);
        assert_eq!(t.measured_violations(), 1);
    }

    #[test]
    fn failed_samples_consume_evaluations_but_not_measured_violations() {
        let mut t = toy_trace();
        let mut s = sample(5, 500.0, SampleKind::Failed, None, false);
        s.retries = 2;
        s.faults = vec![crate::recovery::TrialFailure::Crash; 3];
        s.failure = Some(crate::recovery::TrialFailure::Crash);
        t.samples.push(s);
        // A failed trial spent its evaluation budget…
        assert_eq!(t.evaluations(), 5);
        // …but carries no measurements, so it is not a *measured* violation.
        assert_eq!(t.measured_violations(), 1);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let last = text.lines().last().unwrap();
        assert!(last.contains("failed"));
        assert!(last.contains(",2,crash"));
    }

    #[test]
    fn best_feasible_ignores_infeasible_and_rejected() {
        let t = toy_trace();
        let best = t.best_feasible().unwrap();
        // 0.3 was infeasible; best feasible is 0.2.
        assert_eq!(best.error, 0.2);
        assert_eq!(best.timestamp_s, 400.0);
    }

    #[test]
    fn best_error_curves() {
        let t = toy_trace();
        let by_eval = t.best_error_by_evaluation();
        // Evaluations: idx1 (0.5 feasible), idx2 (infeasible), idx3 (0.9), idx4 (0.2).
        assert_eq!(by_eval, vec![(1, 0.5), (2, 0.5), (3, 0.5), (4, 0.2)]);
        let by_time = t.best_error_by_time();
        assert_eq!(by_time, vec![(100.0, 0.5), (400.0, 0.2)]);
    }

    #[test]
    fn time_metrics() {
        let t = toy_trace();
        assert_eq!(t.time_to_reach_queried(0), Some(0.0));
        assert_eq!(t.time_to_reach_queried(2), Some(100.0));
        assert_eq!(t.time_to_reach_queried(99), None);
        assert_eq!(t.time_to_reach_error(0.5), Some(100.0));
        assert_eq!(t.time_to_reach_error(0.25), Some(400.0));
        assert_eq!(t.time_to_reach_error(0.1), None);
    }

    #[test]
    fn csv_export_lists_all_samples() {
        let t = toy_trace();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + t.queried());
        assert!(lines[0].starts_with("index,timestamp_s,kind"));
        assert!(lines[0].ends_with(",u0"));
        assert!(lines[1].contains("rejected"));
        assert!(lines[2].contains("trained"));
        assert!(lines[4].contains("early_terminated"));
        // Rejected samples have an empty error field.
        assert!(lines[1].contains(",,"));
    }

    #[test]
    fn csv_gains_drift_columns_only_when_present() {
        use crate::drift::{DegradationEvent, DriftEvent, DriftTarget};
        let mut t = toy_trace();
        // Default traces keep the historical column set.
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let clean = String::from_utf8(buf).unwrap();
        assert!(!clean.contains("drift_rmspe"));
        // A recalibrating run grows the three drift columns.
        t.samples[2].drift_rmspe = Some(0.25);
        t.samples[2].drift_events = vec![
            DriftEvent::DriftDetected(DriftTarget::Power),
            DriftEvent::Recalibrated,
        ];
        t.samples[4].degradations = vec![DegradationEvent::RandWalkFallback];
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains(",drift_rmspe,drift_events,degradations,u0"));
        assert!(lines[3].contains(",0.25,drift:power+recalibrated,,"));
        assert!(lines[5].contains(",,,rand-walk-fallback,"));
        assert_eq!(t.final_drift_rmspe(), Some(0.25));
        assert_eq!(t.recalibration_count(), 1);
        assert_eq!(t.degradation_count(), 1);
    }

    #[test]
    fn empty_trace_has_no_best() {
        let t = Trace {
            method: Method::HwIeci,
            mode: Mode::Default,
            budgets: Budgets::default(),
            samples: vec![],
            total_time_s: 0.0,
        };
        assert!(t.best_feasible().is_none());
        assert!(t.best_error_by_time().is_empty());
        assert_eq!(t.evaluations(), 0);
    }
}
